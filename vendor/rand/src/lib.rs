//! Vendored, self-contained reimplementation of the subset of the `rand`
//! crate API that this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, dependency-free stand-in. It is **not** a drop-in replacement for
//! the real `rand` crate: only the traits and helpers exercised by the Krum
//! reproduction are provided, and the generated streams differ from upstream
//! `rand`. Everything is deterministic given a seeded generator, which is the
//! property the reproduction actually relies on.

#![forbid(unsafe_code)]

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled from the "standard" distribution of an RNG.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        standard_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
#[inline]
pub(crate) fn standard_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range requires start < end");
        self.start + (self.end - self.start) * standard_f64(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range requires start <= end");
        lo + (hi - lo) * standard_f64(rng)
    }
}

/// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
#[inline]
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range requires a non-empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range requires start <= end");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $ty
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32, u8);

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        standard_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 seed expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers (`SliceRandom`, index sampling).
pub mod seq {
    use super::{uniform_below, Rng};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{uniform_below, Rng};

        /// Result of [`sample`]: a set of distinct indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consumes the set into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Returns `true` when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher–Yates shuffle.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + uniform_below(rng, (length - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

/// Commonly used re-exports.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Weak LCG, fine for API tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: usize = rng.gen_range(0..17);
            assert!(y < 17);
            let z: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&z));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = Counter(11);
        let idx = seq::index::sample(&mut rng, 30, 12).into_vec();
        assert_eq!(idx.len(), 12);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
        assert!(idx.iter().all(|&i| i < 30));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = Counter(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
