//! Vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small serialization framework with the same *surface* the code uses
//! (`Serialize`/`Deserialize` traits, derive macros, `serde_json` round
//! trips) but a much simpler design: values serialize into an owned
//! [`Value`] tree and deserialize back out of one. This is not upstream
//! serde; only the subset the Krum reproduction needs is provided.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the JSON data model plus integer width).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (preserves insertion order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Short description of the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced while deserializing a [`Value`] into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Error for a value of the wrong kind.
    pub fn invalid_type(expected: &str, found: &str) -> Self {
        Self::custom(format!("invalid type: expected {expected}, found {found}"))
    }

    /// Error for an unknown enum variant.
    pub fn unknown_variant(enum_name: &str, variant: &str) -> Self {
        Self::custom(format!("unknown variant `{variant}` for enum {enum_name}"))
    }

    /// Error for a missing struct field.
    pub fn missing_field(field: &str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value does not match the expected shape.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::invalid_type("bool", other.kind())),
        }
    }
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }

        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw: u128 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u128,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u128::MAX as f64 => {
                        *f as u128
                    }
                    other => return Err(DeError::invalid_type("unsigned integer", other.kind())),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i128;
                if v >= 0 {
                    Value::UInt(v as u128)
                } else {
                    Value::Int(v)
                }
            }
        }

        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw: i128 = match value {
                    Value::UInt(u) if *u <= i128::MAX as u128 => *u as i128,
                    Value::Int(i) => *i,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < i128::MAX as f64 => *f as i128,
                    other => return Err(DeError::invalid_type("integer", other.kind())),
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // JSON cannot represent NaN/±inf; mirror serde_json's `null`.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            // Non-finite floats serialize as null; recover NaN so structs
            // containing them still round-trip structurally.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::invalid_type("float", other.kind())),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_type("string", other.kind())),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::invalid_type(
                "single-character string",
                other.kind(),
            )),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::invalid_type("array", other.kind())),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected an array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                const IDX: &[usize] = &[$($idx),+];
                let arr = __private::array_of_len(value, IDX.len())?;
                Ok(($($name::deserialize(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Helpers used by the generated derive code. Not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    /// Looks up a named field in an object value.
    pub fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, DeError> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::missing_field(name)),
            other => Err(DeError::invalid_type("object", other.kind())),
        }
    }

    /// Requires `value` to be an array of exactly `len` elements.
    pub fn array_of_len(value: &Value, len: usize) -> Result<&[Value], DeError> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(DeError::custom(format!(
                "expected an array of length {len}, found {}",
                items.len()
            ))),
            other => Err(DeError::invalid_type("array", other.kind())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-5i32).serialize()).unwrap(), -5);
        assert_eq!(f64::deserialize(&1.25f64.serialize()).unwrap(), 1.25);
        assert!(f64::deserialize(&f64::NAN.serialize()).unwrap().is_nan());
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<f64>::deserialize(&Some(2.0).serialize()).unwrap(),
            Some(2.0)
        );
        assert_eq!(
            Option::<f64>::deserialize(&None::<f64>.serialize()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
        let arr: [f64; 3] = [1.0, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::deserialize(&arr.serialize()).unwrap(), arr);
        let pair = (3usize, 0.5f64);
        assert_eq!(
            <(usize, f64)>::deserialize(&pair.serialize()).unwrap(),
            pair
        );
    }

    #[test]
    fn numeric_cross_coercion() {
        // An integral float deserializes into integer types and vice versa.
        assert_eq!(u32::deserialize(&Value::Float(7.0)).unwrap(), 7);
        assert_eq!(f64::deserialize(&Value::UInt(7)).unwrap(), 7.0);
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::deserialize(&Value::UInt(1)).is_err());
        assert!(String::deserialize(&Value::Null).is_err());
        assert!(Vec::<u8>::deserialize(&Value::Str("x".into())).is_err());
        let err = __private::field(&Value::Object(vec![]), "missing").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }
}
