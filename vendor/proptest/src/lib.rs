//! Vendored property-testing shim with a proptest-compatible surface.
//!
//! Supports the subset this workspace's tests use: range strategies over
//! numeric types, `prop::collection::vec`, tuple strategies, `prop_map`,
//! the `proptest!` macro with `#![proptest_config(...)]`, and
//! `prop_assert!`/`prop_assert_eq!`. Generation is seeded deterministically
//! per test (seed derived from the test name) so failures are reproducible;
//! there is no shrinking — the failing case's inputs surface through the
//! assertion panic message instead.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Runner configuration: how many cases each property runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $ty {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// The `prop` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand_chacha::ChaCha8Rng;

        /// Strategy producing `Vec`s of a fixed length.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: usize,
        }

        /// Generates vectors of exactly `len` elements of `element`.
        pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                (0..self.len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne};
    pub use crate::{proptest, ProptestConfig, Strategy};
}

/// Deterministic per-test seed derived from the test path (FNV-1a).
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[doc(hidden)]
pub fn runner_rng(name: &str, case: u32) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed_for(name) ^ ((case as u64) << 32))
}

/// Asserts a condition inside a property (panics with the case number).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config ($config) $($rest)* }
    };
    (@config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                for __case in 0..config.cases {
                    let mut __rng =
                        $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)), __case);
                    $( let $pat = ($strategy).generate(&mut __rng); )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0.0f64..1.0, 5),
                               (a, b) in (0u64..10, 0u64..10)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!(a < 10 && b < 10);
        }

        #[test]
        fn prop_map_transforms(len in (1usize..4).prop_map(|n| n * 2)) {
            prop_assert!(len % 2 == 0 && len < 8);
            prop_assert_ne!(len, 7);
        }
    }

    #[test]
    fn determinism_per_name() {
        use crate::Strategy;
        let mut a = crate::runner_rng("x::y", 3);
        let mut b = crate::runner_rng("x::y", 3);
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
