//! A tiny, text-based parser for `struct`/`enum` items, shared by the
//! workspace's vendored derive macros (`serde_derive`, `thiserror_impl`).
//!
//! Proc-macro crates cannot share code through the `proc_macro` API (its types
//! only exist inside proc-macro crates), so the derives stringify their input
//! (`TokenStream::to_string`) and hand the text to this crate. The parser
//! understands exactly the shapes the workspace uses: non-generic structs and
//! enums with optional attributes on the item, its variants and its fields.
//! It is **not** a general Rust parser.

#![forbid(unsafe_code)]

pub mod lex;

/// An attribute `#[name]`, `#[name(...)]` or `#[name = ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// The attribute path (first identifier), e.g. `error`, `from`, `doc`.
    pub name: String,
    /// Raw text inside the parentheses for `#[name(...)]`, or after `=` for
    /// `#[name = ...]`; empty for bare `#[name]`.
    pub body: String,
}

/// One field of a struct or enum variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name for named fields, `None` for tuple fields.
    pub name: Option<String>,
    /// Raw source text of the field type.
    pub ty: String,
    /// Attributes attached to the field.
    pub attrs: Vec<Attr>,
}

/// Field layout of a struct or variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fields {
    /// No fields (`struct S;` or a unit variant).
    Unit,
    /// Named fields in braces.
    Named(Vec<Field>),
    /// Positional fields in parentheses.
    Tuple(Vec<Field>),
}

impl Fields {
    /// Number of fields.
    pub fn len(&self) -> usize {
        match self {
            Fields::Unit => 0,
            Fields::Named(f) | Fields::Tuple(f) => f.len(),
        }
    }

    /// Returns `true` for a unit layout or an empty field list.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One variant of an enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Variant payload.
    pub fields: Fields,
    /// Attributes attached to the variant.
    pub attrs: Vec<Attr>,
}

/// Payload of a parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A struct with the given fields.
    Struct(Fields),
    /// An enum with the given variants.
    Enum(Vec<Variant>),
}

/// A parsed `struct` or `enum` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item name.
    pub name: String,
    /// Struct fields or enum variants.
    pub kind: ItemKind,
    /// Attributes attached to the item itself.
    pub attrs: Vec<Attr>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                // Doc comments survive `TokenStream::to_string`; skip them
                // like the whitespace they lexically are for our purposes.
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'*') => {
                    self.pos += 2;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (self.peek(), self.src.get(self.pos + 1)) {
                            (Some(b'*'), Some(b'/')) => {
                                depth -= 1;
                                self.pos += 2;
                            }
                            (Some(b'/'), Some(b'*')) => {
                                depth += 1;
                                self.pos += 2;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => panic!("mini_parse: unterminated block comment"),
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8, ctx: &str) {
        if !self.eat(c) {
            panic!(
                "mini_parse: expected `{}` {ctx} at byte {} of `{}`",
                c as char,
                self.pos,
                String::from_utf8_lossy(self.src)
            );
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {}
            _ => return None,
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    /// Skips a string literal whose opening quote was already consumed.
    fn skip_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                b'"' => return,
                _ => {}
            }
        }
        panic!("mini_parse: unterminated string literal");
    }

    /// Skips a `'`-introduced token: a lifetime or a char literal. The `'`
    /// was already consumed.
    fn skip_tick(&mut self) {
        // Lifetime: 'ident not followed by a closing quote.
        let mut probe = self.pos;
        let mut saw_ident = false;
        while let Some(&c) = self.src.get(probe) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                saw_ident = true;
                probe += 1;
            } else {
                break;
            }
        }
        if saw_ident && self.src.get(probe) != Some(&b'\'') {
            self.pos = probe; // lifetime
            return;
        }
        // Char literal: consume until unescaped closing quote.
        while let Some(c) = self.bump() {
            match c {
                b'\\' => {
                    self.bump();
                }
                b'\'' => return,
                _ => {}
            }
        }
        panic!("mini_parse: unterminated char literal");
    }

    /// Captures raw text until `stop` at bracket/angle depth zero (the `stop`
    /// byte itself is not consumed). `closers` lists bytes that also end the
    /// capture at depth zero without being consumed (e.g. a closing delimiter
    /// the caller will handle).
    fn capture_until(&mut self, stop: u8, closers: &[u8]) -> String {
        let start = self.pos;
        let mut depth: i32 = 0; // (), [], {}
        let mut angle: i32 = 0; // <>
        while let Some(c) = self.peek() {
            if depth == 0 && angle == 0 && (c == stop || closers.contains(&c)) {
                break;
            }
            self.pos += 1;
            match c {
                b'(' | b'[' | b'{' => depth += 1,
                b')' | b']' | b'}' => depth -= 1,
                b'<' => angle += 1,
                // `->` does not close an angle bracket.
                b'>' if self.src.get(self.pos.wrapping_sub(2)) != Some(&b'-') => angle -= 1,
                b'"' => self.skip_string(),
                b'\'' => self.skip_tick(),
                _ => {}
            }
            if depth < 0 {
                // Hit the caller's closing delimiter.
                self.pos -= 1;
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos])
            .trim()
            .to_string()
    }

    fn attrs(&mut self) -> Vec<Attr> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() != Some(b'#') {
                return attrs;
            }
            self.pos += 1;
            // `#!` inner attributes do not occur in derive input items.
            self.expect(b'[', "to open an attribute");
            self.skip_ws();
            let name = self.ident().expect("attribute path");
            // Consume any path continuation (`::segment`).
            loop {
                self.skip_ws();
                if self.peek() == Some(b':') && self.src.get(self.pos + 1) == Some(&b':') {
                    self.pos += 2;
                    let _ = self.ident();
                } else {
                    break;
                }
            }
            self.skip_ws();
            let body = match self.peek() {
                Some(b'(') => {
                    self.pos += 1;
                    let body = self.capture_until(b')', &[]);
                    self.expect(b')', "to close the attribute arguments");
                    body
                }
                Some(b'=') => {
                    self.pos += 1;
                    self.capture_until(b']', &[])
                }
                _ => String::new(),
            };
            self.expect(b']', "to close the attribute");
            attrs.push(Attr { name, body });
        }
    }

    fn skip_visibility(&mut self) {
        self.skip_ws();
        let save = self.pos;
        if let Some(ident) = self.ident() {
            if ident == "pub" {
                self.skip_ws();
                if self.peek() == Some(b'(') {
                    self.pos += 1;
                    let _ = self.capture_until(b')', &[]);
                    self.expect(b')', "to close the visibility scope");
                }
                return;
            }
        }
        self.pos = save;
    }

    fn named_fields(&mut self) -> Vec<Field> {
        // Cursor is positioned just after `{`.
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return fields;
            }
            let attrs = self.attrs();
            self.skip_visibility();
            let name = self.ident().expect("field name");
            self.expect(b':', "after a field name");
            let ty = self.capture_until(b',', b"}");
            let _ = self.eat(b',');
            fields.push(Field {
                name: Some(name),
                ty,
                attrs,
            });
        }
    }

    fn tuple_fields(&mut self) -> Vec<Field> {
        // Cursor is positioned just after `(`.
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b')') {
                self.pos += 1;
                return fields;
            }
            let attrs = self.attrs();
            self.skip_visibility();
            let ty = self.capture_until(b',', b")");
            let _ = self.eat(b',');
            fields.push(Field {
                name: None,
                ty,
                attrs,
            });
        }
    }

    fn variants(&mut self) -> Vec<Variant> {
        // Cursor is positioned just after `{`.
        let mut variants = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return variants;
            }
            let attrs = self.attrs();
            let name = self.ident().expect("variant name");
            self.skip_ws();
            let fields = match self.peek() {
                Some(b'(') => {
                    self.pos += 1;
                    Fields::Tuple(self.tuple_fields())
                }
                Some(b'{') => {
                    self.pos += 1;
                    Fields::Named(self.named_fields())
                }
                _ => Fields::Unit,
            };
            // Discriminants (`= expr`) are not supported on purpose.
            let _ = self.eat(b',');
            variants.push(Variant {
                name,
                fields,
                attrs,
            });
        }
    }
}

/// Parses the stringified token stream of a `struct` or `enum` item.
///
/// # Panics
///
/// Panics (with a descriptive message, surfacing as a compile error inside
/// the proc macro) when the item is generic, is a union, or otherwise falls
/// outside the supported grammar.
pub fn parse_item(src: &str) -> Item {
    let mut cur = Cursor::new(src);
    let attrs = cur.attrs();
    cur.skip_visibility();
    let keyword = cur.ident().expect("`struct` or `enum` keyword");
    if keyword != "struct" && keyword != "enum" {
        panic!("mini_parse: unsupported item kind `{keyword}`");
    }
    let name = cur.ident().expect("item name");
    cur.skip_ws();
    if cur.peek() == Some(b'<') {
        panic!("mini_parse: generic items are not supported (deriving on `{name}`)");
    }
    let kind = if keyword == "struct" {
        match cur.bump() {
            Some(b';') => ItemKind::Struct(Fields::Unit),
            Some(b'{') => ItemKind::Struct(Fields::Named(cur.named_fields())),
            Some(b'(') => {
                let fields = cur.tuple_fields();
                let _ = cur.eat(b';');
                ItemKind::Struct(Fields::Tuple(fields))
            }
            other => panic!("mini_parse: unexpected token {other:?} after struct name"),
        }
    } else {
        cur.expect(b'{', "to open the enum body");
        ItemKind::Enum(cur.variants())
    };
    Item { name, kind, attrs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_named_struct_with_attrs() {
        let item = parse_item(
            r#"#[doc = " docs "] pub struct RoundRecord { #[doc = "x"] pub round : usize, pub loss : Option < f64 >, pub nanos : u128, }"#,
        );
        assert_eq!(item.name, "RoundRecord");
        match item.kind {
            ItemKind::Struct(Fields::Named(fields)) => {
                assert_eq!(fields.len(), 3);
                assert_eq!(fields[0].name.as_deref(), Some("round"));
                assert_eq!(fields[1].ty.replace(' ', ""), "Option<f64>");
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parses_unit_and_tuple_structs() {
        let unit = parse_item("pub struct Average ;");
        assert_eq!(unit.kind, ItemKind::Struct(Fields::Unit));
        let tuple = parse_item("pub struct Wrapper (pub Vec < f64 >, usize) ;");
        match tuple.kind {
            ItemKind::Struct(Fields::Tuple(fields)) => assert_eq!(fields.len(), 2),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parses_enum_with_mixed_variants() {
        let item = parse_item(
            r#"pub enum E {
                #[error("plain {x}, `{y:?}`")] A { x : usize, y : String },
                #[error("wrapped: {0}")] B (#[from] std :: io :: Error),
                #[error("unit, with ')' inside")] C,
            }"#,
        );
        let ItemKind::Enum(variants) = item.kind else {
            panic!("expected an enum");
        };
        assert_eq!(variants.len(), 3);
        assert_eq!(variants[0].name, "A");
        assert_eq!(variants[0].attrs[0].name, "error");
        assert!(variants[0].attrs[0].body.contains("{y:?}"));
        assert_eq!(variants[1].fields.len(), 1);
        match &variants[1].fields {
            Fields::Tuple(fs) => {
                assert_eq!(fs[0].attrs[0].name, "from");
                assert!(fs[0].ty.contains("io"));
            }
            other => panic!("wrong fields: {other:?}"),
        }
        assert_eq!(variants[2].fields, Fields::Unit);
        assert!(variants[2].attrs[0].body.contains("')'"));
    }

    #[test]
    fn angle_depth_keeps_commas_inside_generics() {
        let item = parse_item("struct S { map : Vec < (usize, f64) >, tail : u8 }");
        let ItemKind::Struct(Fields::Named(fields)) = item.kind else {
            panic!("expected a struct");
        };
        assert_eq!(fields.len(), 2);
        assert!(fields[0].ty.contains("(usize, f64)"));
    }

    #[test]
    fn static_lifetime_in_type() {
        let item = parse_item("struct S { context : & 'static str }");
        let ItemKind::Struct(Fields::Named(fields)) = item.kind else {
            panic!("expected a struct");
        };
        assert!(fields[0].ty.contains("static"));
    }
}
