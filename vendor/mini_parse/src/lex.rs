//! A span-tracking lexer for Rust source text.
//!
//! The item parser in the crate root serves the vendored derive macros and
//! only sees stringified `struct`/`enum` items. The workspace's static
//! analyzer (`krum-audit`) needs something different: a faithful token
//! stream over *whole source files* — comments preserved, string/char
//! literals delimited correctly so that identifiers inside them are never
//! mistaken for code, and every token carrying its line/column so findings
//! can point at the offending site.
//!
//! This lexer is deliberately small but honest about Rust's lexical
//! grammar where it matters for scanning real files:
//!
//! - nested block comments, line comments (doc comments included);
//! - string, raw-string (`r#"…"#`, any number of `#`s), byte-string and
//!   char literals, with escapes;
//! - the `'a` lifetime vs `'x'` char-literal ambiguity;
//! - raw identifiers (`r#type`);
//! - numeric literals including `1_000`, `0xFF`, `2.5e-3` and the
//!   `1..=n` range edge case (the dot is only folded into a number when a
//!   digit follows).
//!
//! It does **not** interpret the token stream (no keywords, no operator
//! gluing): punctuation is emitted one byte at a time, which is exactly
//! what a pattern-matching analyzer wants.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A lifetime such as `'a` (the tick is part of the token text).
    Lifetime,
    /// A char literal `'x'` or byte literal `b'x'`, quotes included.
    Char,
    /// A string or byte-string literal, quotes included.
    Str,
    /// A raw (byte-)string literal `r#"…"#`, delimiters included.
    RawStr,
    /// A numeric literal, suffix included (`1_000u64`, `2.5e-3`).
    Number,
    /// A `//` comment, terminating newline excluded. Doc comments too.
    LineComment,
    /// A `/* … */` comment (possibly nested), delimiters included.
    BlockComment,
    /// A single punctuation byte (`.`, `!`, `[`, `{`, `#`, …).
    Punct,
}

/// One token of source text with its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokenKind,
    /// The exact source slice, delimiters included.
    pub text: &'a str,
    /// Byte offset of the token start.
    pub offset: usize,
    /// 1-based line of the token start.
    pub line: u32,
    /// 1-based byte column of the token start.
    pub col: u32,
}

impl Token<'_> {
    /// `true` for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// `true` when the token is the single punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first().copied() == Some(c as u8)
    }

    /// `true` when the token is an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// A lexical error: malformed or unterminated literal/comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending byte.
    pub line: u32,
    /// 1-based byte column of the offending byte.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// `true` for bytes that can continue an identifier. Non-ASCII bytes are
/// treated as identifier material so UTF-8 identifiers (rare, but legal
/// Rust) lex as single tokens instead of erroring.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Consumes one byte, keeping line/column bookkeeping exact.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes the body of a `"`-delimited (byte-)string whose opening
    /// quote was already consumed.
    fn string_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some(b'\\') => {
                    self.bump();
                }
                Some(b'"') => return Ok(()),
                Some(_) => {}
                None => return Err(self.error("unterminated string literal")),
            }
        }
    }

    /// Consumes a raw string `r##"…"##` starting at the first `#` or `"`
    /// (the `r`/`br` prefix was already consumed).
    fn raw_string_body(&mut self) -> Result<(), LexError> {
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.bump() != Some(b'"') {
            return Err(self.error("malformed raw string literal"));
        }
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some(b'#') {
                        seen += 1;
                        self.bump();
                    }
                    if seen == hashes {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.error("unterminated raw string literal")),
            }
        }
    }

    /// Consumes a char literal whose opening `'` was already consumed.
    fn char_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                Some(b'\\') => {
                    self.bump();
                }
                Some(b'\'') => return Ok(()),
                Some(b'\n') | None => return Err(self.error("unterminated char literal")),
                Some(_) => {}
            }
        }
    }

    /// Consumes a numeric literal starting at a digit (already peeked, not
    /// consumed). Handles `0x`/`0o`/`0b` bases, `_` separators, a single
    /// fractional dot (only when a digit follows, so `1..n` stays a range),
    /// exponents and alphanumeric suffixes.
    fn number_body(&mut self) {
        self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump(); // the dot
            self.take_while(|b| b.is_ascii_digit() || b == b'_');
            // Exponent after the fraction (`2.5e-3`). An exponent directly
            // on the integer part (`1e9`) was swallowed by the first
            // alphanumeric run above.
            if matches!(self.peek(), Some(b'e' | b'E'))
                && (self.peek_at(1).is_some_and(|b| b.is_ascii_digit())
                    || (matches!(self.peek_at(1), Some(b'+' | b'-'))
                        && self.peek_at(2).is_some_and(|b| b.is_ascii_digit())))
            {
                self.bump(); // e / E
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
            }
        } else if matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(), Some(b'+' | b'-'))
            && self.peek_at(1).is_some_and(|b| b.is_ascii_digit())
        {
            // A signed exponent directly on the integer part (`1e-3`): the
            // first alphanumeric run stopped at the sign. This is only ever
            // reached from a digit start, so `e`/`E` here is an exponent
            // marker, not an identifier tail.
            self.bump(); // sign
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
    }
}

/// Tokenizes `src`, returning the full token stream (comments included,
/// whitespace dropped).
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated string/char/comment constructs —
/// i.e. on text that `rustc` itself would reject.
pub fn tokenize(src: &str) -> Result<Vec<Token<'_>>, LexError> {
    let mut lx = Lexer::new(src);
    let mut tokens = Vec::new();
    while let Some(b) = lx.peek() {
        if b.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (offset, line, col) = (lx.pos, lx.line, lx.col);
        let kind = match b {
            b'/' if lx.peek_at(1) == Some(b'/') => {
                lx.take_while(|b| b != b'\n');
                TokenKind::LineComment
            }
            b'/' if lx.peek_at(1) == Some(b'*') => {
                lx.bump();
                lx.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(), lx.peek_at(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump();
                            lx.bump();
                        }
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump();
                            lx.bump();
                        }
                        (Some(_), _) => {
                            lx.bump();
                        }
                        (None, _) => return Err(lx.error("unterminated block comment")),
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.string_body()?;
                TokenKind::Str
            }
            b'r' if lx.peek_at(1) == Some(b'#') && lx.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#type`.
                lx.bump();
                lx.bump();
                lx.take_while(is_ident_continue);
                TokenKind::Ident
            }
            b'r' if matches!(lx.peek_at(1), Some(b'"' | b'#')) => {
                lx.bump();
                lx.raw_string_body()?;
                TokenKind::RawStr
            }
            b'b' if lx.peek_at(1) == Some(b'"') => {
                lx.bump();
                lx.bump();
                lx.string_body()?;
                TokenKind::Str
            }
            b'b' if lx.peek_at(1) == Some(b'\'') => {
                lx.bump();
                lx.bump();
                lx.char_body()?;
                TokenKind::Char
            }
            b'b' if lx.peek_at(1) == Some(b'r') && matches!(lx.peek_at(2), Some(b'"' | b'#')) => {
                lx.bump();
                lx.bump();
                lx.raw_string_body()?;
                TokenKind::RawStr
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) or char literal (`'x'`,
                // `'\n'`). A tick followed by an identifier run that is
                // *not* closed by another tick is a lifetime.
                let mut probe = lx.pos + 1;
                let mut saw_ident = false;
                while lx.bytes.get(probe).copied().is_some_and(is_ident_continue) {
                    saw_ident = true;
                    probe += 1;
                }
                if saw_ident && lx.bytes.get(probe) != Some(&b'\'') {
                    lx.bump(); // the tick
                    lx.take_while(is_ident_continue);
                    TokenKind::Lifetime
                } else {
                    lx.bump();
                    lx.char_body()?;
                    TokenKind::Char
                }
            }
            _ if b.is_ascii_digit() => {
                lx.number_body();
                TokenKind::Number
            }
            _ if is_ident_start(b) => {
                lx.take_while(is_ident_continue);
                TokenKind::Ident
            }
            _ => {
                lx.bump();
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            text: &lx.src[offset..lx.pos],
            offset,
            line,
            col,
        });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts_with_positions() {
        let tokens = tokenize("let x = a.unwrap();").unwrap();
        let texts: Vec<&str> = tokens.iter().map(|t| t.text).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[0].col, 1);
        assert_eq!(tokens[5].col, 11); // `unwrap` starts at byte column 11
    }

    #[test]
    fn strings_hide_identifiers() {
        let tokens = kinds(r#"call("an unwrap() inside a string")"#);
        assert!(tokens
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(tokens.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let tokens = kinds(r###"let s = r#"quote " inside"# ;"###);
        assert!(tokens
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("quote")));
        let tokens = kinds("let b = br\"bytes\";");
        assert!(tokens.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn raw_identifier_is_ident() {
        let tokens = kinds("let r#type = 1;");
        assert!(tokens
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn lifetime_vs_char() {
        let tokens = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            tokens
                .iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            tokens.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn comments_are_tokens() {
        let tokens = kinds("// line\n/* block /* nested */ */ code");
        assert_eq!(tokens[0].0, TokenKind::LineComment);
        assert_eq!(tokens[1].0, TokenKind::BlockComment);
        assert!(tokens[1].1.contains("nested"));
        assert_eq!(tokens[2], (TokenKind::Ident, "code".to_string()));
    }

    #[test]
    fn numbers_and_ranges() {
        let tokens = kinds("for i in 1..=10 { x += 2.5e-3 + 0xFF + 1_000u64; }");
        let numbers: Vec<&str> = tokens
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(numbers, ["1", "10", "2.5e-3", "0xFF", "1_000u64"]);
    }

    #[test]
    fn float_method_call_keeps_dot_out() {
        let tokens = kinds("let y = 2.0.sqrt();");
        assert!(tokens
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "2.0"));
        assert!(tokens
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "sqrt"));
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(tokenize("let s = \"open").is_err());
        assert!(tokenize("/* never closed").is_err());
        // A bare `'x` at end of input is lexically a lifetime, not an
        // unterminated char — an opened escape is the unambiguous error.
        assert!(tokenize("let c = '\\").is_err());
        assert!(tokenize("let s = r#\"open\"").is_err());
    }

    #[test]
    fn line_tracking_across_newlines() {
        let tokens = tokenize("a\nb\n  c").unwrap();
        assert_eq!((tokens[1].line, tokens[1].col), (2, 1));
        assert_eq!((tokens[2].line, tokens[2].col), (3, 3));
    }
}
