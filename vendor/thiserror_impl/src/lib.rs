//! Vendored `#[derive(Error)]` macro (the subset of `thiserror` this
//! workspace uses): `#[error("format …")]` display strings with named and
//! positional interpolation, `#[error(transparent)]`, and `#[from]` fields
//! (which also wire up `std::error::Error::source`).

use mini_parse::{Attr, Field, Fields, ItemKind};
use proc_macro::TokenStream;

#[proc_macro_derive(Error, attributes(error, from, source))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let item = mini_parse::parse_item(&input.to_string());
    let name = &item.name;

    let mut display_arms = Vec::new();
    let mut source_arms = Vec::new();
    let mut from_impls = Vec::new();

    match &item.kind {
        ItemKind::Struct(fields) => {
            let spec = error_attr(&item.attrs).unwrap_or_else(|| {
                panic!("thiserror: struct `{name}` is missing an #[error(...)] attribute")
            });
            let (pattern, write) = display_for(name, name, fields, &spec);
            display_arms.push(format!("{pattern} => {{ {write} }}"));
            if let Some((idx, field)) = source_field(fields) {
                let bind = binding_name(fields, idx);
                source_arms.push(format!(
                    "{} => ::std::option::Option::Some({bind} as &(dyn ::std::error::Error + 'static)),",
                    pattern_for(name, name, fields)
                ));
                if has_attr(&field.attrs, "from") {
                    from_impls.push(from_impl(name, name, fields, &field.ty));
                }
            }
        }
        ItemKind::Enum(variants) => {
            for variant in variants {
                let spec = error_attr(&variant.attrs).unwrap_or_else(|| {
                    panic!(
                        "thiserror: variant `{name}::{}` is missing an #[error(...)] attribute",
                        variant.name
                    )
                });
                let path = format!("{name}::{}", variant.name);
                let (pattern, write) = display_for(name, &path, &variant.fields, &spec);
                display_arms.push(format!("{pattern} => {{ {write} }}"));
                if let Some((idx, field)) = source_field(&variant.fields) {
                    let bind = binding_name(&variant.fields, idx);
                    source_arms.push(format!(
                        "{} => ::std::option::Option::Some({bind} as &(dyn ::std::error::Error + 'static)),",
                        pattern_for(name, &path, &variant.fields)
                    ));
                    if has_attr(&field.attrs, "from") {
                        from_impls.push(from_impl(name, &path, &variant.fields, &field.ty));
                    }
                }
            }
        }
    }

    let source_body = if source_arms.is_empty() {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "#[allow(unused_variables)]\nmatch self {{\n{}\n_ => ::std::option::Option::None,\n}}",
            source_arms.join("\n")
        )
    };

    let out = format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::std::fmt::Display for {name} {{\n\
             #[allow(unused_variables, clippy::all)]\n\
             fn fmt(&self, __f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
                 match self {{\n{display}\n}}\n\
             }}\n\
         }}\n\
         #[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::std::error::Error for {name} {{\n\
             fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
                 {source_body}\n\
             }}\n\
         }}\n\
         {froms}",
        display = display_arms.join("\n"),
        froms = from_impls.join("\n"),
    );
    out.parse().expect("thiserror_impl generated invalid Rust")
}

/// The `#[error(...)]` attribute body, if present: either `transparent` or a
/// string literal (with optional trailing arguments, which are passed along).
fn error_attr(attrs: &[Attr]) -> Option<String> {
    attrs
        .iter()
        .find(|a| a.name == "error")
        .map(|a| a.body.trim().to_string())
}

fn has_attr(attrs: &[Attr], name: &str) -> bool {
    attrs.iter().any(|a| a.name == name)
}

/// Index and field of the `#[from]`/`#[source]` field, if any.
fn source_field(fields: &Fields) -> Option<(usize, &Field)> {
    let list = match fields {
        Fields::Unit => return None,
        Fields::Named(fs) | Fields::Tuple(fs) => fs,
    };
    list.iter()
        .enumerate()
        .find(|(_, f)| has_attr(&f.attrs, "from") || has_attr(&f.attrs, "source"))
}

/// Name the binding of field `idx` uses inside a destructuring pattern.
fn binding_name(fields: &Fields, idx: usize) -> String {
    match fields {
        Fields::Unit => unreachable!("unit layouts have no fields"),
        Fields::Named(fs) => fs[idx].name.clone().expect("named field"),
        Fields::Tuple(_) => format!("__{idx}"),
    }
}

/// A destructuring pattern binding every field of the shape.
fn pattern_for(_name: &str, path: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Named(fs) => {
            let binds: Vec<String> = fs
                .iter()
                .map(|f| f.name.clone().expect("named field"))
                .collect();
            format!("{path} {{ {} }}", binds.join(", "))
        }
        Fields::Tuple(fs) => {
            let binds: Vec<String> = (0..fs.len()).map(|i| format!("__{i}")).collect();
            format!("{path}({})", binds.join(", "))
        }
    }
}

/// Builds the match arm pattern and the `write!` (or delegation) expression
/// for one variant/struct.
fn display_for(name: &str, path: &str, fields: &Fields, spec: &str) -> (String, String) {
    let pattern = pattern_for(name, path, fields);
    if spec == "transparent" {
        let bind = match fields {
            Fields::Tuple(fs) if fs.len() == 1 => "__0".to_string(),
            Fields::Named(fs) if fs.len() == 1 => fs[0].name.clone().expect("named field"),
            _ => panic!("thiserror: #[error(transparent)] requires exactly one field"),
        };
        return (pattern, format!("::std::fmt::Display::fmt({bind}, __f)"));
    }
    // `spec` is the raw attribute body: a format string literal, possibly
    // followed by explicit arguments. Positional placeholders `{0}`, `{1}` …
    // refer to tuple fields, so bind them as trailing arguments.
    let mut args = String::new();
    if let Fields::Tuple(fs) = fields {
        let highest = highest_positional(spec, fs.len());
        for i in 0..highest {
            args.push_str(&format!(", __{i}"));
        }
    }
    (pattern, format!("::std::write!(__f, {spec}{args})"))
}

/// Number of leading positional arguments the format string requires
/// (`{0}`/`{1:?}`-style placeholders), capped at the field count.
fn highest_positional(spec: &str, fields: usize) -> usize {
    let bytes = spec.as_bytes();
    let mut highest = 0usize;
    let mut i = 0;
    // Only scan the first literal in the spec (up to its closing quote).
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            let mut digits = String::new();
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                digits.push(bytes[j] as char);
                j += 1;
            }
            if !digits.is_empty() && (bytes.get(j) == Some(&b'}') || bytes.get(j) == Some(&b':')) {
                if let Ok(idx) = digits.parse::<usize>() {
                    highest = highest.max(idx + 1);
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    highest.min(fields)
}

/// Generates `impl From<FieldType> for Enum` for a `#[from]` field.
fn from_impl(name: &str, path: &str, fields: &Fields, ty: &str) -> String {
    let construct = match fields {
        Fields::Tuple(fs) if fs.len() == 1 => format!("{path}(__value)"),
        Fields::Named(fs) if fs.len() == 1 => {
            format!(
                "{path} {{ {}: __value }}",
                fs[0].name.clone().expect("named field")
            )
        }
        _ => panic!("thiserror: #[from] requires the variant to have exactly one field"),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::std::convert::From<{ty}> for {name} {{\n\
             fn from(__value: {ty}) -> Self {{\n\
                 {construct}\n\
             }}\n\
         }}"
    )
}
