//! Vendored micro-benchmark harness exposing the subset of the Criterion API
//! this workspace's benches use: `Criterion`, benchmark groups,
//! `bench_with_input`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurements are real wall-clock timings: each sample times a batch of
//! iterations sized so one sample costs roughly
//! `measurement_time / sample_size`, after a warm-up phase. Results are
//! printed in a criterion-like format; when the `CRITERION_SUMMARY`
//! environment variable names a file, one JSON line per benchmark
//! (`{"id": …, "mean_ns": …, "median_ns": …, …}`) is appended to it so
//! drivers can persist machine-readable baselines.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = self.clone();
        run_benchmark(&config, &id.into(), None, &mut f);
        self
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples.max(2));
        self
    }

    /// Declares the throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.criterion.measurement_time = duration;
        self
    }

    /// Benchmarks `f`, passing it `input` on every invocation.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut config = self.criterion.clone();
        if let Some(samples) = self.sample_size {
            config.sample_size = samples;
        }
        let full_id = format!("{}/{}", self.name, id);
        run_benchmark(&config, &full_id, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut config = self.criterion.clone();
        if let Some(samples) = self.sample_size {
            config.sample_size = samples;
        }
        let full_id = format!("{}/{}", self.name, id);
        run_benchmark(&config, &full_id, self.throughput, &mut f);
        self
    }

    /// Finishes the group (output is emitted eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    warm_up: Duration,
    measurement_time: Duration,
    /// Mean nanoseconds per iteration of each sample.
    sample_nanos: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize, warm_up: Duration, measurement_time: Duration) -> Self {
        Self {
            iters_per_sample: 0,
            samples,
            warm_up,
            measurement_time,
            sample_nanos: Vec::new(),
        }
    }
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall-clock nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, measuring the cost
        // of one iteration to size the batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Pick a batch size so one sample takes its share of the budget.
        if self.iters_per_sample == 0 {
            let sample_budget_ns =
                (self.target_total().as_nanos() as f64 / self.samples as f64).max(1.0);
            self.iters_per_sample = ((sample_budget_ns / per_iter.max(1.0)) as u64).max(1);
        }
        self.sample_nanos.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.sample_nanos.push(nanos / self.iters_per_sample as f64);
        }
    }

    fn target_total(&self) -> Duration {
        self.measurement_time
    }
}

fn run_benchmark(
    config: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::new(
        config.sample_size,
        config.warm_up_time,
        config.measurement_time,
    );
    f(&mut bencher);
    if bencher.sample_nanos.is_empty() {
        println!("{id}: no measurement recorded");
        return;
    }
    let mut sorted = bencher.sample_nanos.clone();
    sorted.sort_by(f64::total_cmp);
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    print!(
        "{id:<50} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        let rate = count / (mean * 1e-9);
        print!("  thrpt: {rate:.3e} {unit}");
    }
    println!();
    if let Ok(path) = std::env::var("CRITERION_SUMMARY") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\":\"{id}\",\"mean_ns\":{mean:.1},\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{},\"iters_per_sample\":{}}}\n",
                sorted.len(),
                bencher.iters_per_sample
            );
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| file.write_all(line.as_bytes()));
            if let Err(e) = result {
                eprintln!("criterion: failed to append summary to {path}: {e}");
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions; both the simple and the
/// `name/config/targets` forms are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(5)
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = quick();
        c.bench_function("noop-ish", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
        });
    }

    #[test]
    fn groups_and_ids_render() {
        let mut c = quick();
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let input = vec![1u64; 64];
        group.bench_with_input(BenchmarkId::from_parameter(64), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum", 64), &input, |b, v| {
            b.iter(|| v.iter().sum::<u64>());
        });
        group.finish();
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
