//! Vendored minimal `rayon` shim.
//!
//! Provides the small part of rayon's parallel-iterator API this workspace
//! uses (`par_iter` / `into_par_iter` / `map` / `for_each` / `collect` /
//! `sum`), executed on real OS threads via `std::thread::scope`. Work is
//! distributed round-robin across `current_num_threads()` workers, which
//! balances the linearly-skewed loads of triangular loops; on single-core
//! machines everything degrades gracefully to serial execution with no
//! thread overhead.

#![forbid(unsafe_code)]

use std::sync::Mutex;

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items`, preserving order, using round-robin striping over
/// scoped threads. Falls back to serial execution for small inputs or
/// single-threaded machines.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let slots = &slots;
            let results = &results;
            scope.spawn(move || {
                let mut i = t;
                while i < n {
                    let item = slots[i]
                        .lock()
                        .expect("parallel slot poisoned")
                        .take()
                        .expect("each slot is consumed exactly once");
                    let out = f(item);
                    *results[i].lock().expect("parallel result poisoned") = Some(out);
                    i += threads;
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("parallel result poisoned")
                .expect("each result is written exactly once")
        })
        .collect()
}

/// A parallel iterator: a source that can execute a mapping over all items
/// on the thread pool.
pub trait ParallelIterator: Sized {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Consumes the iterator, applying `g` to every item in parallel and
    /// returning the results in order. (Internal driver; the public
    /// combinators are implemented on top of it.)
    fn execute<R, G>(self, g: G) -> Vec<R>
    where
        R: Send,
        G: Fn(Self::Item) -> R + Sync + Send;

    /// Maps every item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item (in parallel) for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        let _ = self.execute(move |item| {
            f(item);
        });
    }

    /// Collects the items in order into any `FromIterator` collection
    /// (including `Result<Vec<_>, E>`).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.execute(|item| item).into_iter().collect()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.execute(|item| item).into_iter().sum()
    }

    /// Reduces the items with `op`, starting each chunk from `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.execute(|item| item).into_iter().fold(identity(), op)
    }
}

/// Lazily mapped parallel iterator.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn execute<R2, G>(self, g: G) -> Vec<R2>
    where
        R2: Send,
        G: Fn(R) -> R2 + Sync + Send,
    {
        let f = self.f;
        self.base.execute(move |item| g(f(item)))
    }
}

/// Parallel iterator over an owned vector of items.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn execute<R, G>(self, g: G) -> Vec<R>
    where
        R: Send,
        G: Fn(T) -> R + Sync + Send,
    {
        par_map_vec(self.items, &g)
    }
}

/// Conversion into a [`ParallelIterator`].
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        IntoParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = IntoParIter<usize>;

    fn into_par_iter(self) -> Self::Iter {
        IntoParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over references.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = IntoParIter<&'data T>;

    fn par_iter(&'data self) -> Self::Iter {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = IntoParIter<&'data T>;

    fn par_iter(&'data self) -> Self::Iter {
        IntoParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_iter_mut()` on borrowed collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type (a mutable reference).
    type Item: Send;
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Returns a parallel iterator over mutable references.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = IntoParIter<&'data mut T>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        IntoParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = IntoParIter<&'data mut T>;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        IntoParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let ok: Result<Vec<usize>, String> = vec![1usize, 2, 3].into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
        let err: Result<Vec<usize>, String> = (0..10)
            .into_par_iter()
            .map(|i| {
                if i == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1.0f64, 2.0, 3.0];
        let sum: f64 = data.par_iter().map(|x| x * x).sum();
        assert!((sum - 14.0).abs() < 1e-12);
        assert_eq!(data.len(), 3); // still usable
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        let mut data = vec![1, 2, 3, 4];
        data.par_iter_mut().for_each(|x| *x *= 10);
        assert_eq!(data, vec![10, 20, 30, 40]);
    }

    #[test]
    fn chained_maps_fuse() {
        let out: Vec<i64> = (0..20)
            .into_par_iter()
            .map(|i| i as i64)
            .map(|i| i - 5)
            .collect();
        assert_eq!(out[0], -5);
        assert_eq!(out[19], 14);
    }
}
