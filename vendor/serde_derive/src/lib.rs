//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! These target the workspace's vendored, `Value`-based `serde` crate (see
//! `vendor/serde`), not upstream serde's `Serializer`/`Deserializer` model.
//! Supported shapes: non-generic structs (unit, named, tuple) and enums with
//! unit, newtype, tuple and struct variants, using serde's externally-tagged
//! representation.

use mini_parse::{Fields, ItemKind, Variant};
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = mini_parse::parse_item(&input.to_string());
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => serialize_struct_body(fields),
        ItemKind::Enum(variants) => serialize_enum_body(name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = mini_parse::parse_item(&input.to_string());
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => deserialize_struct_body(name, fields),
        ItemKind::Enum(variants) => deserialize_enum_body(name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("serde_derive generated invalid Rust")
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let pairs: Vec<String> = fs
                .iter()
                .map(|f| {
                    let n = f.name.as_ref().expect("named field");
                    format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize(&self.{n}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Fields::Tuple(fs) if fs.len() == 1 => "::serde::Serialize::serialize(&self.0)".to_string(),
        Fields::Tuple(fs) => {
            let items: Vec<String> = (0..fs.len())
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                ),
                Fields::Tuple(fs) if fs.len() == 1 => format!(
                    "{name}::{vn}(__0) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vn}\"), ::serde::Serialize::serialize(__0))]),"
                ),
                Fields::Tuple(fs) => {
                    let binds: Vec<String> = (0..fs.len()).map(|i| format!("__{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize({b})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Value::Array(::std::vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let binds: Vec<String> = fs
                        .iter()
                        .map(|f| f.name.clone().expect("named field"))
                        .collect();
                    let pairs: Vec<String> = binds
                        .iter()
                        .map(|b| {
                            format!(
                                "(::std::string::String::from(\"{b}\"), ::serde::Serialize::serialize({b}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Value::Object(::std::vec![{}]))]),",
                        binds.join(", "),
                        pairs.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .map(|f| {
                    let n = f.name.as_ref().expect("named field");
                    format!(
                        "{n}: ::serde::Deserialize::deserialize(::serde::__private::field(__v, \"{n}\")?)?,"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{\n{}\n}})",
                inits.join("\n")
            )
        }
        Fields::Tuple(fs) if fs.len() == 1 => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Fields::Tuple(fs) => {
            let n = fs.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?,"))
                .collect();
            format!(
                "let __arr = ::serde::__private::array_of_len(__v, {n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(" ")
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
        })
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Tuple(fs) if fs.len() == 1 => format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::deserialize(__inner)?)),"
                ),
                Fields::Tuple(fs) => {
                    let n = fs.len();
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&__arr[{i}])?,"))
                        .collect();
                    format!(
                        "\"{vn}\" => {{\n\
                         let __arr = ::serde::__private::array_of_len(__inner, {n})?;\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n}},",
                        items.join(" ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            let fname = f.name.as_ref().expect("named field");
                            format!(
                                "{fname}: ::serde::Deserialize::deserialize(::serde::__private::field(__inner, \"{fname}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{\n{}\n}}),",
                        inits.join("\n")
                    )
                }
                Fields::Unit => unreachable!("filtered above"),
            }
        })
        .collect();
    format!(
        "match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit}\n\
         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
         }},\n\
         ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
         let (__key, __inner) = &__pairs[0];\n\
         let _ = __inner;\n\
         match __key.as_str() {{\n\
         {payload}\n\
         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::DeError::invalid_type(\"{name} variant\", __other.kind())),\n\
         }}",
        unit = unit_arms.join("\n"),
        payload = payload_arms.join("\n"),
    )
}
