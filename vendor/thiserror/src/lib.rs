//! Vendored `thiserror` facade: re-exports the workspace's `#[derive(Error)]`
//! macro (see `vendor/thiserror_impl`). Only the derive is provided — the
//! real crate's auxiliary items are not used by this workspace.

#![forbid(unsafe_code)]

pub use thiserror_impl::Error;

#[cfg(test)]
mod tests {
    use super::Error;

    #[derive(Debug, Error)]
    #[error("flat error {code}: {label:?}")]
    struct FlatWithAttr {
        code: usize,
        label: String,
    }

    #[derive(Debug, Error)]
    enum Multi {
        #[error("nothing to do")]
        Unit,
        #[error("count {found} != {expected}")]
        Counts { expected: usize, found: usize },
        #[error("inner: {0}")]
        Wrapped(#[from] FlatWithAttr),
        #[error(transparent)]
        Passthrough(#[from] std::io::Error),
    }

    #[test]
    fn display_interpolates_named_and_positional() {
        let e = FlatWithAttr {
            code: 7,
            label: "bad".into(),
        };
        assert_eq!(e.to_string(), "flat error 7: \"bad\"");
        assert_eq!(Multi::Unit.to_string(), "nothing to do");
        assert_eq!(
            Multi::Counts {
                expected: 3,
                found: 5
            }
            .to_string(),
            "count 5 != 3"
        );
        let wrapped: Multi = FlatWithAttr {
            code: 1,
            label: "x".into(),
        }
        .into();
        assert_eq!(wrapped.to_string(), "inner: flat error 1: \"x\"");
    }

    #[test]
    fn transparent_and_source() {
        use std::error::Error as _;
        let io = std::io::Error::other("disk on fire");
        let e: Multi = io.into();
        assert_eq!(e.to_string(), "disk on fire");
        assert!(e.source().is_some());
        assert!(Multi::Unit.source().is_none());
    }
}
