//! Vendored probability distributions (the subset of `rand_distr` this
//! workspace uses): [`Normal`], [`Uniform`] and [`Bernoulli`] behind the
//! [`Distribution`] trait.

#![forbid(unsafe_code)]

use rand::Rng;

/// Types that can produce samples of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error raised when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistrError(&'static str);

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for DistrError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
///
/// Sampling uses the Box–Muller transform, drawing two uniforms per sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T = f64> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistrError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(DistrError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Self { mean, std_dev })
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: z = sqrt(-2 ln u1) * cos(2π u2), u1 ∈ (0, 1].
        let u1: f64 = 1.0 - rng.gen_range(0.0..1.0); // (0, 1]
        let u2: f64 = rng.gen_range(0.0..1.0);
        let radius = (-2.0 * u1.ln()).sqrt();
        let angle = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * radius * angle.cos()
    }
}

/// The continuous uniform distribution on `[low, high)` (or `[low, high]`
/// for [`Uniform::new_inclusive`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    span: f64,
    inclusive: bool,
}

impl Uniform {
    /// Uniform on the half-open interval `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or either bound is not finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(
            low < high && low.is_finite() && high.is_finite(),
            "Uniform::new requires finite low < high"
        );
        Self {
            low,
            span: high - low,
            inclusive: false,
        }
    }

    /// Uniform on the closed interval `[low, high]`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high` or either bound is not finite.
    pub fn new_inclusive(low: f64, high: f64) -> Self {
        assert!(
            low <= high && low.is_finite() && high.is_finite(),
            "Uniform::new_inclusive requires finite low <= high"
        );
        Self {
            low,
            span: high - low,
            inclusive: true,
        }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit: f64 = rng.gen_range(0.0..1.0);
        if self.inclusive {
            // Stretch [0, 1) over [low, high] with 53-bit resolution; the
            // endpoint has the same probability as every other grid point.
            let grid = (1u64 << 53) as f64;
            self.low + self.span * ((unit * grid).floor() / (grid - 1.0)).min(1.0)
        } else {
            self.low + self.span * unit
        }
    }
}

/// The Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Result<Self, DistrError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistrError("Bernoulli requires p in [0, 1]"));
        }
        Ok(Self { p })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_range(0.0..1.0) < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SplitMix {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn normal_moments_are_right() {
        let normal = Normal::new(2.0, 3.0).unwrap();
        assert_eq!(normal.mean(), 2.0);
        assert_eq!(normal.std_dev(), 3.0);
        let mut rng = SplitMix::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(f64::INFINITY, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn uniform_bounds() {
        let u = Uniform::new(-1.0, 2.0);
        let mut rng = SplitMix::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((-1.0..2.0).contains(&x));
        }
        let ui = Uniform::new_inclusive(-0.5, 0.5);
        for _ in 0..10_000 {
            let x = ui.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let b = Bernoulli::new(0.3).unwrap();
        assert!(Bernoulli::new(1.5).is_err());
        let mut rng = SplitMix::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| b.sample(&mut rng)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }
}
