//! Vendored JSON serialization over the workspace's value-based `serde`.
//!
//! Provides `to_string`, `to_string_pretty` and `from_str` with the same
//! observable behaviour the workspace relies on: exact round-trips for finite
//! floats (shortest decimal representation), `null` for non-finite floats,
//! and serde's externally-tagged enum encoding (produced by the vendored
//! derive macros).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value as a compact JSON string.
///
/// # Errors
///
/// Infallible for the value model in use; the `Result` mirrors the upstream
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value model in use; the `Result` mirrors the upstream
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's `Display` for f64 prints the shortest decimal string that parses
    // back to the same bits, which gives exact round-trips. Integral floats
    // print without a fractional part ("3"), which the parser reads as an
    // integer; numeric coercion on deserialize restores the float.
    out.push_str(&f.to_string());
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing characters.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        src: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.src.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 256;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.src.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.src
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                c as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, found `{}` at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, found `{}` at byte {}",
                                other as char, self.pos
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .src
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .src
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our emitter;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let bytes = self
                        .src
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(bytes)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.src.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.src.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if text.starts_with('-') {
                // Magnitudes beyond i128 fall through to the f64 path.
                if let Ok(i) = text.parse::<i128>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a \"b\"\n").unwrap(), r#""a \"b\"\n""#);
        let back: f64 = from_str("1.5").unwrap();
        assert_eq!(back, 1.5);
        let back: f64 = from_str("-2.25e2").unwrap();
        assert_eq!(back, -225.0);
        let back: u128 = from_str("340282366920938463463374607431768211455").unwrap();
        assert_eq!(back, u128::MAX);
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
        let back: i128 = from_str("-170141183460469231731687303715884105728").unwrap();
        assert_eq!(back, i128::MIN);
        // Magnitudes beyond i128 degrade to f64 instead of wrapping/panicking.
        let back: f64 = from_str("-200000000000000000000000000000000000000").unwrap();
        assert_eq!(back, -2e38);
        let back: String = from_str(r#""tab\tline""#).unwrap();
        assert_eq!(back, "tab\tline");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1.0f64, 2.5], vec![-3.0]];
        let json = to_string(&v).unwrap();
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(v, back);
        let opt: Vec<Option<f64>> = vec![Some(1.0), None];
        let json = to_string(&opt).unwrap();
        assert_eq!(json, "[1,null]");
        let back: Vec<Option<f64>> = from_str(&json).unwrap();
        assert_eq!(opt, back);
    }

    #[test]
    fn pretty_uses_colon_space() {
        let value = Value::Object(vec![
            ("aggregator".to_string(), Value::Str("krum".to_string())),
            ("rounds".to_string(), Value::Array(vec![Value::UInt(1)])),
        ]);
        let pretty = {
            let mut out = String::new();
            super::write_value(&mut out, &value, Some(2), 0);
            out
        };
        assert!(pretty.contains("\"aggregator\": \"krum\""));
        assert!(pretty.contains("\n  "));
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            1e-308,
            123456789.12345679,
            -0.0,
            2.0f64.powi(60),
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "round trip failed for {x}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.5 garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<bool>("falsy").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }
}
