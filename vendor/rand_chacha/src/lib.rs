//! Vendored ChaCha-based RNG.
//!
//! Implements the ChaCha stream cipher core (8 rounds) as a random number
//! generator compatible with the workspace's vendored `rand` traits. The
//! stream is deterministic for a given seed, which is the property the
//! reproduction relies on; it is not bit-compatible with upstream
//! `rand_chacha`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

const ROUNDS: usize = 8;
// "expand 32-byte k"
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64) | ((self.state[13] as u64) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Words 12..16 (counter and nonce) start at zero.
        Self {
            state,
            block: [0u32; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniformity_smoke_test() {
        // Mean of many uniform draws should approach 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bytes_are_filled() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
