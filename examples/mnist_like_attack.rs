//! Train an MLP classifier on the MNIST-like synthetic digit task with a
//! third of the workers Byzantine — the scenario of the full paper's
//! evaluation (Figure 4 there), on the synthetic stand-in dataset.
//!
//! The workload (MLP + digit generator + shards + held-out accuracy probe)
//! is one `EstimatorSpec`; each (attack, rule) cell is one declarative
//! scenario over it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mnist_like_attack
//! ```

use krum::aggregation::RuleSpec;
use krum::attacks::AttackSpec;
use krum::dist::LearningRateSchedule;
use krum::models::{DataSpec, EstimatorSpec, ModelSpec};
use krum::scenario::ScenarioBuilder;
use krum::tensor::InitStrategy;

const SIDE: usize = 12; // 12×12 synthetic "digits"
const HIDDEN: usize = 32;
const WORKERS: usize = 15;
const BYZANTINE: usize = 5;
const ROUNDS: usize = 150;

fn workload() -> EstimatorSpec {
    EstimatorSpec::Synthetic {
        model: ModelSpec::Mlp {
            inputs: SIDE * SIDE,
            hidden: vec![HIDDEN],
            classes: 10,
        },
        data: DataSpec::SyntheticDigits {
            samples: 3_000,
            noise: 0.25,
        },
        batch: 32,
        holdout: 0.2,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = workload();
    println!(
        "synthetic digits: 3000 samples (20% held out), d = {} model parameters",
        spec.dim()?
    );

    let attacks: Vec<(&str, AttackSpec)> = vec![
        ("no attack", AttackSpec::None),
        ("gaussian", AttackSpec::GaussianNoise { std: 100.0 }),
        ("omniscient", AttackSpec::OmniscientNegative { scale: 2.0 }),
    ];
    let rules: Vec<(&str, RuleSpec)> = vec![
        ("average", RuleSpec::Average),
        ("krum", RuleSpec::Krum),
        ("multi-krum", RuleSpec::MultiKrum { m: None }),
    ];

    println!(
        "{:<12} {:<12} {:>12} {:>12} {:>10}",
        "attack", "aggregator", "final loss", "accuracy", "byz-pick%"
    );
    for (attack_name, attack) in &attacks {
        for (rule_name, rule) in &rules {
            let report = ScenarioBuilder::new(WORKERS, BYZANTINE)
                .rule(*rule)
                .attack(*attack)
                .estimator(workload())
                .schedule(LearningRateSchedule::InverseTime {
                    gamma: 0.5,
                    tau: 100.0,
                })
                .rounds(ROUNDS)
                .eval_every(25)
                .seed(1234)
                .init_sample(InitStrategy::XavierUniform, 7)
                .run()?;
            let summary = report.summary();
            println!(
                "{attack_name:<12} {rule_name:<12} {:>12.4} {:>11.1}% {:>9.1}%",
                summary.final_loss.unwrap_or(f64::NAN),
                100.0 * summary.final_accuracy.unwrap_or(f64::NAN),
                100.0 * report.history.selection_stats().byzantine_rate(),
            );
        }
    }
    println!();
    println!(
        "Expected shape (full paper, Fig. 4): with 33% Byzantine workers, averaging stalls or \
         diverges under both attacks while Krum and Multi-Krum stay close to the attack-free run."
    );
    Ok(())
}
