//! Train an MLP classifier on the MNIST-like synthetic digit task with a
//! third of the workers Byzantine — the scenario of the full paper's
//! evaluation (Figure 4 there), on the synthetic stand-in dataset.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mnist_like_attack
//! ```

use krum::aggregation::{Aggregator, Average, Krum, MultiKrum};
use krum::attacks::{Attack, GaussianNoise, NoAttack, OmniscientNegative};
use krum::data::{generators, partition, BatchSampler};
use krum::dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum::models::{accuracy, BatchGradientEstimator, GradientEstimator, Mlp, MlpBuilder, Model};
use krum::tensor::{InitStrategy, Vector};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const SIDE: usize = 12; // 12×12 synthetic "digits" → d = 144·32 + … parameters
const HIDDEN: usize = 32;
const WORKERS: usize = 15;
const BYZANTINE: usize = 5;
const ROUNDS: usize = 150;

fn build_mlp() -> Mlp {
    MlpBuilder::new(SIDE * SIDE, 10)
        .hidden_layer(HIDDEN)
        .build()
        .expect("valid architecture")
}

fn worker_estimators(
    train: &krum::data::Dataset,
    honest: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<Box<dyn GradientEstimator>> {
    let shards = partition::iid_shards(train, honest, rng).expect("enough samples per worker");
    shards
        .into_iter()
        .map(|shard| {
            let sampler = BatchSampler::new(shard, 32).expect("non-empty shard");
            Box::new(BatchGradientEstimator::new(build_mlp(), sampler).expect("valid estimator"))
                as Box<dyn GradientEstimator>
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(2017);
    let dataset = generators::synthetic_digits(3_000, SIDE, 0.25, &mut rng)?;
    let (train, test) = dataset.shuffled(&mut rng).split(0.8)?;
    let test = Arc::new(test);
    println!(
        "synthetic digits: {} train / {} test samples, d = {} model parameters",
        train.len(),
        test.len(),
        build_mlp().dim()
    );

    let cluster = ClusterSpec::new(WORKERS, BYZANTINE)?;
    let mlp = build_mlp();
    let mut init_rng = ChaCha8Rng::seed_from_u64(7);
    let initial = mlp.init_parameters(InitStrategy::XavierUniform, &mut init_rng);

    let scenarios: Vec<(&str, Box<dyn Attack>)> = vec![
        ("no attack", Box::new(NoAttack::new())),
        ("gaussian", Box::new(GaussianNoise::new(100.0)?)),
        ("omniscient", Box::new(OmniscientNegative::new(2.0)?)),
    ];

    println!(
        "{:<12} {:<12} {:>12} {:>12} {:>10}",
        "attack", "aggregator", "final loss", "accuracy", "byz-pick%"
    );
    for (attack_name, attack) in scenarios {
        let aggregators: Vec<(&str, Box<dyn Aggregator>)> = vec![
            ("average", Box::new(Average::new())),
            ("krum", Box::new(Krum::new(WORKERS, BYZANTINE)?)),
            (
                "multi-krum",
                Box::new(MultiKrum::new(WORKERS, BYZANTINE, WORKERS - BYZANTINE)?),
            ),
        ];
        for (agg_name, aggregator) in aggregators {
            let mut shard_rng = ChaCha8Rng::seed_from_u64(99);
            let estimators = worker_estimators(&train, cluster.honest(), &mut shard_rng);
            let config = TrainingConfig {
                rounds: ROUNDS,
                schedule: LearningRateSchedule::InverseTime {
                    gamma: 0.5,
                    tau: 100.0,
                },
                seed: 1234,
                eval_every: 25,
                known_optimum: None,
            };
            let attack_clone: Box<dyn Attack> = clone_attack(attack_name)?;
            let test_for_probe = Arc::clone(&test);
            let probe_mlp = build_mlp();
            let mut trainer =
                SyncTrainer::new(cluster, aggregator, attack_clone, estimators, config)?
                    .with_accuracy_probe(move |params: &Vector| {
                        accuracy(&probe_mlp, params, &test_for_probe).ok().flatten()
                    });
            let (_, history) = trainer.run(initial.clone())?;
            let summary = history.summary();
            println!(
                "{attack_name:<12} {agg_name:<12} {:>12.4} {:>11.1}% {:>9.1}%",
                summary.final_loss.unwrap_or(f64::NAN),
                100.0 * summary.final_accuracy.unwrap_or(f64::NAN),
                100.0 * history.selection_stats().byzantine_rate(),
            );
        }
        let _ = attack; // each run used its own clone
    }
    println!();
    println!(
        "Expected shape (full paper, Fig. 4): with 33% Byzantine workers, averaging stalls or \
         diverges under both attacks while Krum and Multi-Krum stay close to the attack-free run."
    );
    Ok(())
}

/// Rebuild an attack by name so each (attack, aggregator) cell gets a fresh,
/// identically configured adversary.
fn clone_attack(name: &str) -> Result<Box<dyn Attack>, Box<dyn std::error::Error>> {
    Ok(match name {
        "no attack" => Box::new(NoAttack::new()),
        "gaussian" => Box::new(GaussianNoise::new(100.0)?),
        "omniscient" => Box::new(OmniscientNegative::new(2.0)?),
        other => return Err(format!("unknown attack {other}").into()),
    })
}
