//! Compare every aggregation rule against every attack on a convex task
//! (logistic regression on synthetic data) and print the final-loss matrix.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example attack_comparison
//! ```

use krum::aggregation::{
    Aggregator, Average, ClosestToBarycenter, CoordinateWiseMedian, GeometricMedian, Krum,
    MultiKrum, TrimmedMean,
};
use krum::attacks::{
    Attack, Collusion, ConstantTarget, GaussianNoise, LittleIsEnough, NoAttack, OmniscientNegative,
    SignFlip,
};
use krum::data::{generators, partition, BatchSampler};
use krum::dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum::models::{BatchGradientEstimator, GradientEstimator, LogisticRegression};
use krum::tensor::Vector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const WORKERS: usize = 13;
const BYZANTINE: usize = 3;
const FEATURES: usize = 20;
const ROUNDS: usize = 150;

fn estimators(train: &krum::data::Dataset, honest: usize) -> Vec<Box<dyn GradientEstimator>> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    partition::iid_shards(train, honest, &mut rng)
        .expect("enough samples")
        .into_iter()
        .map(|shard| {
            let sampler = BatchSampler::new(shard, 16).expect("non-empty shard");
            Box::new(
                BatchGradientEstimator::new(LogisticRegression::new(FEATURES), sampler)
                    .expect("valid estimator"),
            ) as Box<dyn GradientEstimator>
        })
        .collect()
}

fn aggregators() -> Vec<(&'static str, Box<dyn Aggregator>)> {
    vec![
        ("average", Box::new(Average::new())),
        ("krum", Box::new(Krum::new(WORKERS, BYZANTINE).unwrap())),
        (
            "multi-krum",
            Box::new(MultiKrum::new(WORKERS, BYZANTINE, WORKERS - BYZANTINE).unwrap()),
        ),
        ("median", Box::new(CoordinateWiseMedian::new())),
        ("trimmed", Box::new(TrimmedMean::new(BYZANTINE))),
        ("geo-median", Box::new(GeometricMedian::new())),
        ("closest-bary", Box::new(ClosestToBarycenter::new())),
    ]
}

fn attacks(dim: usize) -> Vec<(&'static str, Box<dyn Attack>)> {
    vec![
        ("none", Box::new(NoAttack::new())),
        ("gaussian", Box::new(GaussianNoise::new(50.0).unwrap())),
        ("sign-flip", Box::new(SignFlip::new(5.0).unwrap())),
        (
            "omniscient",
            Box::new(OmniscientNegative::new(3.0).unwrap()),
        ),
        ("collusion", Box::new(Collusion::new(500.0).unwrap())),
        (
            "const-target",
            Box::new(ConstantTarget::new(Vector::filled(dim, 10.0))),
        ),
        ("lie", Box::new(LittleIsEnough::new(2.0).unwrap())),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let (dataset, _, _) = generators::logistic_regression(4_000, FEATURES, &mut rng)?;
    let (train, _test) = dataset.split(0.85)?;
    let cluster = ClusterSpec::new(WORKERS, BYZANTINE)?;
    let model_dim = FEATURES + 1;

    // Header.
    print!("{:<14}", "final loss");
    for (agg_name, _) in aggregators() {
        print!("{agg_name:>13}");
    }
    println!();

    for (attack_name, _) in attacks(model_dim) {
        print!("{attack_name:<14}");
        for (_, aggregator) in aggregators() {
            let attack = attacks(model_dim)
                .into_iter()
                .find(|(name, _)| *name == attack_name)
                .map(|(_, a)| a)
                .expect("attack exists");
            let config = TrainingConfig {
                rounds: ROUNDS,
                schedule: LearningRateSchedule::InverseTime {
                    gamma: 0.5,
                    tau: 60.0,
                },
                seed: 11,
                eval_every: ROUNDS, // only evaluate at the end (and round 0)
                known_optimum: None,
            };
            let mut trainer = SyncTrainer::new(
                cluster,
                aggregator,
                attack,
                estimators(&train, cluster.honest()),
                config,
            )?;
            let (_, history) = trainer.run(Vector::zeros(model_dim))?;
            let loss = history.summary().final_loss.unwrap_or(f64::NAN);
            if loss.is_finite() && loss < 100.0 {
                print!("{loss:>13.4}");
            } else {
                print!("{:>13}", "diverged");
            }
        }
        println!();
    }
    println!();
    println!("Reading the matrix:");
    println!(" * `average` is fine with no attack but is broken by every adversarial column —");
    println!("   a single Byzantine worker controls it (Lemma 3.1).");
    println!(" * `closest-bary` survives simple attacks but loses to `collusion` (Figure 2).");
    println!(" * `krum` / `multi-krum` keep the loss low under every attack with f = 3 < (n-2)/2.");
    Ok(())
}
