//! Compare every aggregation rule against every attack on a convex task
//! (logistic regression on synthetic data) and print the final-loss matrix.
//!
//! The whole matrix is driven by the typed registries: each cell is one
//! declarative scenario built from a (RuleSpec, AttackSpec) pair over the
//! same synthetic-logistic workload spec — no hand-wired trainers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example attack_comparison
//! ```

use krum::aggregation::RuleSpec;
use krum::attacks::AttackSpec;
use krum::dist::LearningRateSchedule;
use krum::models::{DataSpec, EstimatorSpec, ModelSpec};
use krum::scenario::ScenarioBuilder;

const WORKERS: usize = 13;
const BYZANTINE: usize = 3;
const FEATURES: usize = 20;
const ROUNDS: usize = 150;

fn workload() -> EstimatorSpec {
    EstimatorSpec::Synthetic {
        model: ModelSpec::Logistic { features: FEATURES },
        data: DataSpec::LogisticRegression { samples: 4_000 },
        batch: 16,
        holdout: 0.15,
    }
}

fn rules() -> Vec<(&'static str, RuleSpec)> {
    vec![
        ("average", RuleSpec::Average),
        ("krum", RuleSpec::Krum),
        ("multi-krum", RuleSpec::MultiKrum { m: None }),
        ("median", RuleSpec::Median),
        ("trimmed", RuleSpec::TrimmedMean { trim: None }),
        ("geo-median", RuleSpec::GeometricMedian),
        ("closest-bary", RuleSpec::ClosestToBarycenter),
    ]
}

fn attacks() -> Vec<(&'static str, AttackSpec)> {
    vec![
        ("none", AttackSpec::None),
        ("gaussian", AttackSpec::GaussianNoise { std: 50.0 }),
        ("sign-flip", AttackSpec::SignFlip { scale: 5.0 }),
        ("omniscient", AttackSpec::OmniscientNegative { scale: 3.0 }),
        ("collusion", AttackSpec::Collusion { magnitude: 500.0 }),
        ("const-target", AttackSpec::ConstantTarget { fill: 10.0 }),
        ("lie", AttackSpec::LittleIsEnough { z: 2.0 }),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Header.
    print!("{:<14}", "final loss");
    for (rule_name, _) in rules() {
        print!("{rule_name:>13}");
    }
    println!();

    for (attack_name, attack) in attacks() {
        print!("{attack_name:<14}");
        for (_, rule) in rules() {
            let report = ScenarioBuilder::new(WORKERS, BYZANTINE)
                .rule(rule)
                .attack(attack)
                .estimator(workload())
                .schedule(LearningRateSchedule::InverseTime {
                    gamma: 0.5,
                    tau: 60.0,
                })
                .rounds(ROUNDS)
                .eval_every(ROUNDS) // only evaluate at the edges
                .seed(11)
                .run()?;
            let loss = report.summary().final_loss.unwrap_or(f64::NAN);
            if loss.is_finite() && loss < 100.0 {
                print!("{loss:>13.4}");
            } else {
                print!("{:>13}", "diverged");
            }
        }
        println!();
    }
    println!();
    println!("Reading the matrix:");
    println!(" * `average` is fine with no attack but is broken by every adversarial column —");
    println!("   a single Byzantine worker controls it (Lemma 3.1).");
    println!(" * `closest-bary` survives simple attacks but loses to `collusion` (Figure 2).");
    println!(" * `krum` / `multi-krum` keep the loss low under every attack with f = 3 < (n-2)/2.");
    Ok(())
}
