//! Quickstart: aggregate worker proposals with Krum and run a tiny
//! Byzantine-tolerant SGD session.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use krum::aggregation::{Aggregator, Average, Krum};
use krum::attacks::SignFlip;
use krum::dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum::models::{GaussianEstimator, GradientEstimator, QuadraticCost};
use krum::tensor::Vector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. One-shot aggregation: 7 workers, 2 Byzantine.
    // ------------------------------------------------------------------
    let honest = vec![
        Vector::from(vec![1.0, 0.0, 0.1]),
        Vector::from(vec![0.9, 0.1, 0.0]),
        Vector::from(vec![1.1, -0.1, 0.0]),
        Vector::from(vec![1.0, 0.1, -0.1]),
        Vector::from(vec![0.95, 0.0, 0.05]),
    ];
    let mut proposals = honest.clone();
    proposals.push(Vector::from(vec![-100.0, 50.0, 80.0])); // Byzantine
    proposals.push(Vector::from(vec![77.0, -3.0, 12.0])); // Byzantine

    let krum = Krum::new(7, 2)?;
    let average = Average::new();
    let krum_choice = krum.aggregate(&proposals)?;
    let avg_choice = average.aggregate(&proposals)?;
    println!("== One-shot aggregation (n = 7, f = 2) ==");
    println!("honest gradients point towards ~[1, 0, 0]");
    println!("krum    -> {krum_choice}");
    println!("average -> {avg_choice}   <-- dragged away by the two outliers");
    println!();

    // ------------------------------------------------------------------
    // 2. A small distributed SGD run on a quadratic cost, under attack.
    // ------------------------------------------------------------------
    let dim = 20;
    let cluster = ClusterSpec::new(15, 4)?;
    let config = TrainingConfig {
        rounds: 200,
        schedule: LearningRateSchedule::InverseTime {
            gamma: 0.2,
            tau: 50.0,
        },
        seed: 42,
        eval_every: 20,
        known_optimum: Some(Vector::zeros(dim)),
    };
    let estimators = |count: usize| -> Vec<Box<dyn GradientEstimator>> {
        (0..count)
            .map(|_| {
                Box::new(
                    GaussianEstimator::new(QuadraticCost::isotropic(Vector::zeros(dim), 0.0), 0.2)
                        .expect("valid sigma"),
                ) as Box<dyn GradientEstimator>
            })
            .collect()
    };

    println!("== Distributed SGD, n = 15 workers, f = 4 Byzantine (sign-flip attack) ==");
    for (label, aggregator) in [
        ("krum", Box::new(Krum::new(15, 4)?) as Box<dyn Aggregator>),
        ("average", Box::new(Average::new()) as Box<dyn Aggregator>),
    ] {
        let mut trainer = SyncTrainer::new(
            cluster,
            aggregator,
            Box::new(SignFlip::new(5.0)?),
            estimators(cluster.honest()),
            config.clone(),
        )?;
        let (final_params, history) = trainer.run(Vector::filled(dim, 3.0))?;
        let summary = history.summary();
        println!(
            "{label:>8}: final ‖x − x*‖ = {:8.4}   loss {:10.4} -> {:10.4}   byzantine selected {:.1}%",
            final_params.norm(),
            summary.initial_loss.unwrap_or(f64::NAN),
            summary.final_loss.unwrap_or(f64::NAN),
            100.0 * history.selection_stats().byzantine_rate(),
        );
    }
    println!();
    println!("Krum converges to the optimum; plain averaging is pushed away by the attackers.");
    Ok(())
}
