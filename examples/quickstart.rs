//! Quickstart: aggregate worker proposals with Krum, then describe a full
//! Byzantine-tolerant SGD experiment as one declarative scenario and run it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use krum::aggregation::{Aggregator, Average, Krum, RuleSpec};
use krum::attacks::AttackSpec;
use krum::dist::LearningRateSchedule;
use krum::models::EstimatorSpec;
use krum::scenario::ScenarioBuilder;
use krum::tensor::Vector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. One-shot aggregation: 7 workers, 2 Byzantine.
    // ------------------------------------------------------------------
    let honest = vec![
        Vector::from(vec![1.0, 0.0, 0.1]),
        Vector::from(vec![0.9, 0.1, 0.0]),
        Vector::from(vec![1.1, -0.1, 0.0]),
        Vector::from(vec![1.0, 0.1, -0.1]),
        Vector::from(vec![0.95, 0.0, 0.05]),
    ];
    let mut proposals = honest.clone();
    proposals.push(Vector::from(vec![-100.0, 50.0, 80.0])); // Byzantine
    proposals.push(Vector::from(vec![77.0, -3.0, 12.0])); // Byzantine

    let krum = Krum::new(7, 2)?;
    let average = Average::new();
    let krum_choice = krum.aggregate(&proposals)?;
    let avg_choice = average.aggregate(&proposals)?;
    println!("== One-shot aggregation (n = 7, f = 2) ==");
    println!("honest gradients point towards ~[1, 0, 0]");
    println!("krum    -> {krum_choice}");
    println!("average -> {avg_choice}   <-- dragged away by the two outliers");
    println!();

    // ------------------------------------------------------------------
    // 2. A full experiment as one declarative scenario: n = 15 workers,
    //    f = 4 Byzantine running a sign-flip attack on a quadratic cost.
    //    The same spec could be serialised to JSON and run with
    //    `krum run spec.json` — identical trajectory either way.
    // ------------------------------------------------------------------
    let dim = 20;
    println!("== Distributed SGD, n = 15 workers, f = 4 Byzantine (sign-flip attack) ==");
    for rule in [RuleSpec::Krum, RuleSpec::Average] {
        let report = ScenarioBuilder::new(15, 4)
            .rule(rule)
            .attack(AttackSpec::SignFlip { scale: 5.0 })
            .estimator(EstimatorSpec::GaussianQuadratic { dim, sigma: 0.2 })
            .schedule(LearningRateSchedule::InverseTime {
                gamma: 0.2,
                tau: 50.0,
            })
            .rounds(200)
            .eval_every(20)
            .seed(42)
            .init_fill(3.0)
            .run()?;
        let summary = report.summary();
        println!(
            "{:>8}: final ‖x − x*‖ = {:8.4}   loss {:10.4} -> {:10.4}   byzantine selected {:.1}%",
            rule.to_string(),
            report.final_params.norm(),
            summary.initial_loss.unwrap_or(f64::NAN),
            summary.final_loss.unwrap_or(f64::NAN),
            100.0 * report.history.selection_stats().byzantine_rate(),
        );
    }
    println!();
    println!("Krum converges to the optimum; plain averaging is pushed away by the attackers.");
    Ok(())
}
