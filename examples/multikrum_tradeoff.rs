//! Sweep the Multi-Krum parameter `m` to show the robustness/variance
//! trade-off between pure Krum (`m = 1`) and plain averaging (`m = n`),
//! mirroring the Multi-Krum figure of the full version of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multikrum_tradeoff
//! ```

use krum::aggregation::{Aggregator, Average, MultiKrum};
use krum::attacks::{GaussianNoise, NoAttack};
use krum::dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum::models::{GaussianEstimator, GradientEstimator, QuadraticCost};
use krum::tensor::Vector;

const WORKERS: usize = 20;
const BYZANTINE: usize = 6;
const DIM: usize = 50;
const ROUNDS: usize = 250;
const SIGMA: f64 = 1.0;

fn estimators(count: usize) -> Vec<Box<dyn GradientEstimator>> {
    (0..count)
        .map(|_| {
            Box::new(
                GaussianEstimator::new(QuadraticCost::isotropic(Vector::zeros(DIM), 0.0), SIGMA)
                    .expect("valid sigma"),
            ) as Box<dyn GradientEstimator>
        })
        .collect()
}

fn run(aggregator: Box<dyn Aggregator>, attacked: bool) -> (f64, f64) {
    let cluster = ClusterSpec::new(WORKERS, BYZANTINE).expect("valid cluster");
    let config = TrainingConfig {
        rounds: ROUNDS,
        schedule: LearningRateSchedule::InverseTime {
            gamma: 0.1,
            tau: 80.0,
        },
        seed: 77,
        eval_every: 25,
        known_optimum: Some(Vector::zeros(DIM)),
    };
    let attack: Box<dyn krum::attacks::Attack> = if attacked {
        Box::new(GaussianNoise::new(200.0).expect("valid std"))
    } else {
        Box::new(NoAttack::new())
    };
    let mut trainer = SyncTrainer::new(
        cluster,
        aggregator,
        attack,
        estimators(cluster.honest()),
        config,
    )
    .expect("valid trainer");
    let (final_params, history) = trainer.run(Vector::filled(DIM, 5.0)).expect("run succeeds");
    (
        final_params.norm(),
        history.summary().final_loss.unwrap_or(f64::NAN),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Multi-Krum trade-off: n = {WORKERS}, f = {BYZANTINE}, d = {DIM}, σ = {SIGMA}, {ROUNDS} rounds"
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "aggregator", "‖x − x*‖ (attack)", "‖x − x*‖ (clean)"
    );
    let mut ms: Vec<usize> = vec![1, 2, 5, 10, WORKERS - BYZANTINE];
    ms.dedup();
    for m in ms {
        let attacked = run(Box::new(MultiKrum::new(WORKERS, BYZANTINE, m)?), true);
        let clean = run(Box::new(MultiKrum::new(WORKERS, BYZANTINE, m)?), false);
        println!(
            "{:<22} {:>18.4} {:>18.4}",
            format!("multi-krum m={m}"),
            attacked.0,
            clean.0
        );
    }
    let attacked = run(Box::new(Average::new()), true);
    let clean = run(Box::new(Average::new()), false);
    println!("{:<22} {:>18.4} {:>18.4}", "average", attacked.0, clean.0);
    println!();
    println!("Larger m averages more proposals: better variance reduction on clean rounds,");
    println!("still robust as long as m ≤ n − f; plain averaging is destroyed by the attack.");
    Ok(())
}
