//! Sweep the Multi-Krum parameter `m` to show the robustness/variance
//! trade-off between pure Krum (`m = 1`) and plain averaging (`m = n`),
//! mirroring the Multi-Krum figure of the full version of the paper.
//!
//! Each grid cell is one declarative scenario; only the rule spec and the
//! attack spec change between cells.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multikrum_tradeoff
//! ```

use krum::aggregation::RuleSpec;
use krum::attacks::AttackSpec;
use krum::dist::LearningRateSchedule;
use krum::models::EstimatorSpec;
use krum::scenario::ScenarioBuilder;

const WORKERS: usize = 20;
const BYZANTINE: usize = 6;
const DIM: usize = 50;
const ROUNDS: usize = 250;
const SIGMA: f64 = 1.0;

fn run(rule: RuleSpec, attacked: bool) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let attack = if attacked {
        AttackSpec::GaussianNoise { std: 200.0 }
    } else {
        AttackSpec::None
    };
    let report = ScenarioBuilder::new(WORKERS, BYZANTINE)
        .rule(rule)
        .attack(attack)
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: SIGMA,
        })
        .schedule(LearningRateSchedule::InverseTime {
            gamma: 0.1,
            tau: 80.0,
        })
        .rounds(ROUNDS)
        .eval_every(25)
        .seed(77)
        .init_fill(5.0)
        .run()?;
    Ok((
        report.final_params.norm(),
        report.summary().final_loss.unwrap_or(f64::NAN),
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Multi-Krum trade-off: n = {WORKERS}, f = {BYZANTINE}, d = {DIM}, σ = {SIGMA}, {ROUNDS} rounds"
    );
    println!(
        "{:<22} {:>18} {:>18}",
        "aggregator", "‖x − x*‖ (attack)", "‖x − x*‖ (clean)"
    );
    let mut ms: Vec<usize> = vec![1, 2, 5, 10, WORKERS - BYZANTINE];
    ms.dedup();
    let mut rules: Vec<RuleSpec> = ms
        .into_iter()
        .map(|m| RuleSpec::MultiKrum { m: Some(m) })
        .collect();
    rules.push(RuleSpec::Average);
    for rule in rules {
        let attacked = run(rule, true)?;
        let clean = run(rule, false)?;
        println!(
            "{:<22} {:>18.4} {:>18.4}",
            rule.to_string(),
            attacked.0,
            clean.0
        );
    }
    println!();
    println!("Larger m averages more proposals: better variance reduction on clean rounds,");
    println!("still robust as long as m ≤ n − f; plain averaging is destroyed by the attack.");
    Ok(())
}
