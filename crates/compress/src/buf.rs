//! Bounds-checked little-endian byte and bit readers/writers shared by the
//! codecs. Everything is explicit-width LE, matching the krum-wire
//! conventions, and every read validates against the remaining bytes
//! before touching them — a corrupt payload is a [`CodecError`], never a
//! panic or an unbounded allocation.

use crate::CodecError;

/// Little-endian byte writer.
pub(crate) struct Writer {
    out: Vec<u8>,
}

impl Writer {
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            out: Vec::with_capacity(capacity),
        }
    }

    pub fn put_u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// Bounds-checked little-endian byte reader.
pub(crate) struct Reader<'b> {
    bytes: &'b [u8],
    offset: usize,
}

impl<'b> Reader<'b> {
    pub fn new(bytes: &'b [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    fn take(&mut self, len: usize) -> Result<&'b [u8], CodecError> {
        if self.remaining() < len {
            return Err(CodecError::Truncated {
                needed: len - self.remaining(),
                offset: self.offset,
            });
        }
        let slice = &self.bytes[self.offset..self.offset + len];
        self.offset += len;
        Ok(slice)
    }

    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        let b = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ])))
    }

    pub fn raw(&mut self, len: usize) -> Result<&'b [u8], CodecError> {
        self.take(len)
    }

    /// Rejects trailing bytes — a canonical payload is consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() > 0 {
            return Err(CodecError::malformed(format!(
                "{} trailing byte(s) after the payload content",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Little-endian bit-stream writer for packed mantissas: values are
/// appended least-significant-bit first, flushed byte by byte.
pub(crate) struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            out: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `bits` bits of `value` (`bits <= 32`).
    pub fn push(&mut self, value: u32, bits: u32) {
        debug_assert!(bits <= 32 && (bits == 32 || u64::from(value) < (1u64 << bits)));
        self.acc |= u64::from(value) << self.nbits;
        self.nbits += bits;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flushes the partial trailing byte (zero-padded) and returns the
    /// packed buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

/// Little-endian bit-stream reader over a fixed byte slice.
pub(crate) struct BitReader<'b> {
    bytes: &'b [u8],
    byte: usize,
    acc: u64,
    nbits: u32,
}

impl<'b> BitReader<'b> {
    pub fn new(bytes: &'b [u8]) -> Self {
        Self {
            bytes,
            byte: 0,
            acc: 0,
            nbits: 0,
        }
    }

    /// Reads `bits` bits (`bits <= 32`); the caller sized the slice, so
    /// running dry is a malformed-payload error.
    pub fn pull(&mut self, bits: u32) -> Result<u32, CodecError> {
        while self.nbits < bits {
            let Some(&b) = self.bytes.get(self.byte) else {
                return Err(CodecError::malformed(
                    "bit-packed mantissa block ran out of bytes",
                ));
            };
            self.acc |= u64::from(b) << self.nbits;
            self.nbits += 8;
            self.byte += 1;
        }
        let value = (self.acc & ((1u64 << bits) - 1)) as u32;
        self.acc >>= bits;
        self.nbits -= bits;
        Ok(value)
    }
}

/// The number of bytes `count` packed `bits`-wide values occupy.
pub(crate) fn packed_len(count: usize, bits: u32) -> usize {
    (count * bits as usize).div_ceil(8)
}
