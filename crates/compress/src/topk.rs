//! Top-k sparsification: keep the `k` largest-magnitude coordinates as
//! `(index, value)` pairs, zero the rest.
//!
//! Payload layout (little-endian):
//!
//! ```text
//! [u32 dim][u32 k_eff][(u32 index, f64 value) × k_eff]
//! ```
//!
//! with `k_eff = min(k, dim)` and indices strictly increasing — a single
//! canonical byte encoding per input, so encode is a pure function of the
//! vector and idempotence reduces to "the kept coordinates keep
//! themselves".
//!
//! Selection is deterministic across runs, platforms, and thread counts:
//! coordinates are ranked by `|v|` under [`f64::total_cmp`] with the lower
//! index winning ties. `total_cmp` orders NaN (whose `abs()` has a
//! positive sign bit) above `+∞`, so non-finite coordinates are
//! preferentially *kept* — a NaN-poisoned proposal still looks poisoned
//! after sparsification, preserving the repo's non-finite-attacker
//! guarantee.
//!
//! Parameters are **not** sparsified: dropping `dim − k` coordinates of a
//! dense parameter vector would destroy the model, so `encode_params`
//! ships raw `f64` bits and `transform_params` is the identity.

use crate::buf::{Reader, Writer};
use crate::{CodecError, GradientCodec};

/// Top-k sparsification (see the module docs for format and ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopK {
    k: usize,
}

impl TopK {
    /// Creates the codec; `k >= 1` (validated by
    /// [`CompressionSpec::validate`](crate::CompressionSpec::validate),
    /// which also checks `k <= dim` against the scenario).
    pub fn new(k: usize) -> Self {
        debug_assert!(k >= 1);
        Self { k }
    }

    /// The indices of the `min(k, dim)` largest-magnitude coordinates, in
    /// increasing index order (the canonical payload order).
    fn select(&self, x: &[f64]) -> Vec<u32> {
        let mut indices: Vec<u32> = (0..x.len() as u32).collect();
        indices.sort_by(|&a, &b| {
            x[b as usize]
                .abs()
                .total_cmp(&x[a as usize].abs())
                .then(a.cmp(&b))
        });
        indices.truncate(self.k.min(x.len()));
        indices.sort_unstable();
        indices
    }
}

impl GradientCodec for TopK {
    fn name(&self) -> String {
        format!("topk:k={}", self.k)
    }

    fn encode(&self, x: &[f64], _reference: &[f64]) -> Vec<u8> {
        let kept = self.select(x);
        let mut out = Writer::with_capacity(8 + kept.len() * 12);
        out.put_u32(x.len() as u32);
        out.put_u32(kept.len() as u32);
        for idx in kept {
            out.put_u32(idx);
            out.put_f64(x[idx as usize]);
        }
        out.finish()
    }

    fn decode(&self, bytes: &[u8], _reference: &[f64], dim: usize) -> Result<Vec<f64>, CodecError> {
        let mut reader = Reader::new(bytes);
        let got = reader.u32()? as usize;
        if got != dim {
            return Err(CodecError::DimensionMismatch { got, expected: dim });
        }
        let k_eff = reader.u32()? as usize;
        if k_eff != self.k.min(dim) {
            return Err(CodecError::malformed(format!(
                "payload keeps {k_eff} coordinates, codec expects {}",
                self.k.min(dim)
            )));
        }
        let mut out = vec![0.0; dim];
        let mut previous: Option<u32> = None;
        for _ in 0..k_eff {
            let idx = reader.u32()?;
            if idx as usize >= dim {
                return Err(CodecError::malformed(format!(
                    "kept index {idx} out of bounds for dimension {dim}"
                )));
            }
            if let Some(p) = previous.filter(|&p| idx <= p) {
                return Err(CodecError::malformed(format!(
                    "kept indices must be strictly increasing, saw {idx} after {p}"
                )));
            }
            previous = Some(idx);
            out[idx as usize] = reader.f64()?;
        }
        reader.finish()?;
        Ok(out)
    }

    fn encode_params(&self, x: &[f64]) -> Vec<u8> {
        // Params ride raw: sparsifying a dense parameter vector would
        // zero most of the model.
        let mut out = Writer::with_capacity(8 * x.len());
        for &v in x {
            out.put_f64(v);
        }
        out.finish()
    }

    fn decode_params(&self, bytes: &[u8], dim: usize) -> Result<Vec<f64>, CodecError> {
        if bytes.len() != 8 * dim {
            return Err(CodecError::malformed(format!(
                "raw params payload is {} bytes, dimension {dim} requires {}",
                bytes.len(),
                8 * dim
            )));
        }
        let mut reader = Reader::new(bytes);
        let mut out = Vec::with_capacity(dim);
        for _ in 0..dim {
            out.push(reader.f64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_largest_magnitudes() {
        let codec = TopK::new(3);
        let x = vec![0.1, -5.0, 0.0, 2.0, -0.3, 4.0];
        let decoded = codec.decode(&codec.encode(&x, &[]), &[], 6).unwrap();
        assert_eq!(decoded, vec![0.0, -5.0, 0.0, 2.0, 0.0, 4.0]);
    }

    /// Satellite: tie-breaking is deterministic — equal magnitudes keep
    /// the lowest indices, identically across repeated runs and across
    /// spawned threads.
    #[test]
    fn ties_break_by_lowest_index_across_runs_and_threads() {
        let codec = TopK::new(4);
        let x = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let baseline = codec.encode(&x, &[]);
        let expected = codec.decode(&baseline, &[], 8).unwrap();
        assert_eq!(expected, vec![1.0, -1.0, 1.0, -1.0, 0.0, 0.0, 0.0, 0.0]);
        for _ in 0..10 {
            assert_eq!(codec.encode(&x, &[]), baseline);
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let x = x.clone();
                std::thread::spawn(move || TopK::new(4).encode(&x, &[]))
            })
            .collect();
        for handle in handles {
            assert_eq!(
                handle.join().unwrap(),
                baseline,
                "thread-dependent selection"
            );
        }
    }

    /// NaN and ±∞ rank above every finite magnitude under `total_cmp`,
    /// so poisoned coordinates survive sparsification.
    #[test]
    fn nonfinite_coordinates_are_preferentially_kept() {
        let codec = TopK::new(2);
        let x = vec![1.0e300, f64::NAN, -1.0e300, f64::INFINITY, 5.0];
        let decoded = codec.decode(&codec.encode(&x, &[]), &[], 5).unwrap();
        assert!(decoded[1].is_nan());
        assert_eq!(decoded[3], f64::INFINITY);
        assert_eq!((decoded[0], decoded[2], decoded[4]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn k_larger_than_dim_keeps_everything() {
        let codec = TopK::new(100);
        let x = vec![3.0, -0.0, 0.5];
        let bytes = codec.encode(&x, &[]);
        let decoded = codec.decode(&bytes, &[], 3).unwrap();
        assert_eq!(
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn malformed_payloads_are_structured_errors() {
        let codec = TopK::new(2);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let good = codec.encode(&x, &[]);
        // Out-of-bounds index.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(
            codec.decode(&bad, &[], 4),
            Err(CodecError::Malformed(_))
        ));
        // Non-increasing indices (duplicate).
        let mut dup = good.clone();
        let first = dup[8..12].to_vec();
        dup[20..24].copy_from_slice(&first);
        assert!(matches!(
            codec.decode(&dup, &[], 4),
            Err(CodecError::Malformed(_))
        ));
        // Wrong kept-count.
        let mut short = good.clone();
        short[4..8].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            codec.decode(&short, &[], 4),
            Err(CodecError::Malformed(_))
        ));
        // Truncation and trailing garbage.
        assert!(matches!(
            codec.decode(&good[..good.len() - 3], &[], 4),
            Err(CodecError::Truncated { .. })
        ));
        let mut long = good;
        long.push(7);
        assert!(matches!(
            codec.decode(&long, &[], 4),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn params_ride_raw_and_unchanged() {
        let codec = TopK::new(1);
        let x = vec![0.5, -0.25, 1.0e-300, f64::NAN];
        let bytes = codec.encode_params(&x);
        assert_eq!(bytes.len(), 32);
        let decoded = codec.decode_params(&bytes, 4).unwrap();
        assert_eq!(
            decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(matches!(
            codec.decode_params(&bytes, 5),
            Err(CodecError::Malformed(_))
        ));
    }
}
