//! Deterministic gradient codecs for the krum wire protocol.
//!
//! Three composable codecs shrink the vectors that dominate the serving
//! cost (broadcasts, proposals, the omniscient-adversary observation
//! relay):
//!
//! * [`Bfp`] — block floating point: one shared exponent per block of
//!   coordinates plus narrow bit-packed mantissas, deterministic
//!   round-to-nearest-even;
//! * [`TopK`] — sparsification: the `k` largest-magnitude coordinates as
//!   `(index, value)` pairs, with a deterministic total order so ties
//!   break the same way on every machine and thread count;
//! * [`DeltaVsBroadcast`] — proposals encoded as deltas against the
//!   round's broadcast parameters, composing with either of the above.
//!
//! The repo's standing invariant — bit-identical trajectories per seed
//! across engines and the wire — shapes the whole API. A codec is not a
//! transport detail here: quantization happens **before** aggregation, on
//! both the in-process and the remote path, via the *canonical transform*
//! `transform(x) = decode(encode(x))`. The trait defines the transforms
//! literally as an encode/decode round-trip, so the transform an engine
//! applies in memory and the bytes a server decodes off a socket cannot
//! disagree. Idempotence (`q(dq(q(x))) == q(x)`, pinned by tests) makes
//! the transform safe to apply at every hop: a v2 peer's already-quantized
//! payload passes through unchanged, a v1 peer's raw payload gets
//! quantized exactly once.
//!
//! Parameters follow a per-codec policy: BFP quantizes them (the broadcast
//! ships the compact encoding and the trajectory lives in quantized
//! space); top-k leaves them untouched (sparsifying a dense parameter
//! vector would destroy the model, so params ride raw under `topk`);
//! delta delegates to its inner codec.

mod bfp;
mod buf;
mod delta;
mod spec;
mod topk;

pub use bfp::Bfp;
pub use delta::DeltaVsBroadcast;
pub use spec::{CompressionSpec, CODEC_GRAMMAR, CODEC_NAMES};
pub use topk::TopK;

use thiserror::Error;

/// A structured codec failure: payloads off the wire decode to this (never
/// a panic, never an out-of-bounds allocation), and spec strings that do
/// not parse report what was wrong.
#[derive(Debug, Error, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the declared content did.
    #[error("codec payload truncated: needed {needed} more bytes at offset {offset}")]
    Truncated {
        /// How many bytes the next read needed.
        needed: usize,
        /// Offset at which the payload ran dry.
        offset: usize,
    },
    /// The payload declares a different dimension than the context expects.
    #[error("codec payload declares dimension {got}, expected {expected}")]
    DimensionMismatch {
        /// Dimension named by the payload.
        got: usize,
        /// Dimension the decoder was told to expect.
        expected: usize,
    },
    /// The payload is structurally invalid (corrupt exponent, out-of-range
    /// index, trailing bytes, …).
    #[error("malformed codec payload: {0}")]
    Malformed(String),
    /// A codec spec string failed to parse or validate.
    #[error("invalid codec spec: {0}")]
    InvalidSpec(String),
}

impl CodecError {
    pub(crate) fn malformed(message: impl Into<String>) -> Self {
        Self::Malformed(message.into())
    }

    pub(crate) fn invalid(message: impl Into<String>) -> Self {
        Self::InvalidSpec(message.into())
    }
}

/// One gradient codec: encode/decode for proposals (with an optional
/// reference vector — the round's broadcast params — for delta coding) and
/// for the parameter broadcast itself.
///
/// The `transform*` methods are the determinism keystone and are
/// deliberately **not** overridable per codec: they are defined as the
/// encode → decode round-trip, so an in-memory quantization and a
/// wire-level one are the same computation by construction.
pub trait GradientCodec: Send + Sync + std::fmt::Debug {
    /// The codec's canonical spec string (`bfp:block=64,bits=12`).
    fn name(&self) -> String;

    /// Encodes one proposal. `reference` is the round's broadcast params
    /// for delta coding; an empty slice means "no reference" and every
    /// codec must accept it (delta degrades to its inner codec).
    fn encode(&self, x: &[f64], reference: &[f64]) -> Vec<u8>;

    /// Decodes one proposal payload of dimension `dim`, against the same
    /// `reference` the encoder used.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated, malformed or
    /// wrong-dimension payloads — never panics, never allocates beyond
    /// what the validated header admits.
    fn decode(&self, bytes: &[u8], reference: &[f64], dim: usize) -> Result<Vec<f64>, CodecError>;

    /// Encodes the parameter vector (no reference exists for params).
    fn encode_params(&self, x: &[f64]) -> Vec<u8>;

    /// Decodes a parameter payload of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] for truncated, malformed or
    /// wrong-dimension payloads.
    fn decode_params(&self, bytes: &[u8], dim: usize) -> Result<Vec<f64>, CodecError>;

    /// The canonical quantize → dequantize transform for proposals:
    /// exactly `decode(encode(x, reference), reference)`, in place.
    /// Idempotent: applying it to an already-transformed vector is a
    /// no-op, so it is safe at every hop of a mixed v1/v2 fleet.
    fn transform(&self, x: &mut [f64], reference: &[f64]) {
        let bytes = self.encode(x, reference);
        // Infallible by the trait contract — a codec decodes its own
        // encoding; a violation is a codec bug worth crashing loudly on.
        #[allow(clippy::expect_used)]
        let decoded = self
            .decode(&bytes, reference, x.len())
            .expect("a codec must decode its own encoding");
        x.copy_from_slice(&decoded);
    }

    /// The canonical transform for the parameter vector, in place.
    fn transform_params(&self, x: &mut [f64]) {
        let bytes = self.encode_params(x);
        // Infallible by the trait contract, as in `transform` above.
        #[allow(clippy::expect_used)]
        let decoded = self
            .decode_params(&bytes, x.len())
            .expect("a codec must decode its own params encoding");
        x.copy_from_slice(&decoded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A vector exercising every awkward float class the codecs must
    /// carry: zeros, subnormals, mixed magnitudes, negative zero, and the
    /// non-finite values the NaN-poisoning guarantee depends on.
    pub(crate) fn awkward(dim: usize, nonfinite: bool) -> Vec<f64> {
        (0..dim)
            .map(|i| match i % 11 {
                0 => 0.0,
                1 => -0.0,
                2 => 1.5e-310, // subnormal
                3 => -3.25,
                4 => 1.0e12,
                5 => -1.0e-12,
                6 if nonfinite => f64::NAN,
                7 if nonfinite => f64::INFINITY,
                8 if nonfinite => f64::NEG_INFINITY,
                other => (other as f64 - 5.0) * 0.37,
            })
            .collect()
    }

    fn codecs() -> Vec<Box<dyn GradientCodec>> {
        vec![
            CompressionSpec::Bfp {
                block: 64,
                bits: 12,
            }
            .build(),
            CompressionSpec::Bfp { block: 16, bits: 4 }.build(),
            CompressionSpec::TopK { k: 10 }.build(),
            CompressionSpec::DeltaBfp {
                block: 64,
                bits: 12,
            }
            .build(),
            CompressionSpec::DeltaTopK { k: 10 }.build(),
        ]
    }

    /// Satellite: quantize → dequantize idempotence for every codec —
    /// `q(dq(q(x))) == q(x)` bit-for-bit, with and without a reference,
    /// for params and proposals alike.
    #[test]
    fn transforms_are_idempotent_for_every_codec() {
        let reference: Vec<f64> = (0..100).map(|i| (i as f64) * 0.01 - 0.5).collect();
        for codec in codecs() {
            for nonfinite in [false, true] {
                let x = awkward(100, nonfinite);
                let mut once = x.clone();
                codec.transform(&mut once, &reference);
                let mut twice = once.clone();
                codec.transform(&mut twice, &reference);
                assert_eq!(
                    once.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    twice.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{}: transform must be idempotent (nonfinite={nonfinite})",
                    codec.name()
                );

                let mut p_once = x.clone();
                codec.transform_params(&mut p_once);
                let mut p_twice = p_once.clone();
                codec.transform_params(&mut p_twice);
                assert_eq!(
                    p_once.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    p_twice.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "{}: params transform must be idempotent",
                    codec.name()
                );
            }
        }
    }

    /// Encode → decode equals the in-memory transform, bit for bit —
    /// the wire and the engine cannot disagree.
    #[test]
    fn decode_of_encode_matches_transform() {
        let reference: Vec<f64> = (0..77).map(|i| (i as f64).sin()).collect();
        for codec in codecs() {
            let x = awkward(77, true);
            let bytes = codec.encode(&x, &reference);
            let decoded = codec.decode(&bytes, &reference, 77).unwrap();
            let mut transformed = x.clone();
            codec.transform(&mut transformed, &reference);
            assert_eq!(
                decoded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                transformed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}: decode(encode(x)) must equal transform(x)",
                codec.name()
            );
        }
    }

    /// Decoding garbage never panics: truncations of a valid payload and
    /// random byte soup all come back as structured errors (or, for
    /// prefixes that happen to parse, as values — never a crash).
    #[test]
    fn decoding_garbage_is_structured() {
        let reference: Vec<f64> = vec![0.25; 33];
        for codec in codecs() {
            let x = awkward(33, true);
            let bytes = codec.encode(&x, &reference);
            for cut in 0..bytes.len() {
                let _ = codec.decode(&bytes[..cut], &reference, 33);
            }
            let soup: Vec<u8> = (0..257u32)
                .map(|i| (i.wrapping_mul(97) % 251) as u8)
                .collect();
            let _ = codec.decode(&soup, &reference, 33);
            let _ = codec.decode_params(&soup, 33);
            // The declared dimension is cross-checked.
            assert!(matches!(
                codec.decode(&bytes, &reference, 34),
                Err(CodecError::DimensionMismatch {
                    got: 33,
                    expected: 34
                })
            ));
        }
    }
}
