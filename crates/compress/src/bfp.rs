//! Block floating point: one shared exponent per block, narrow bit-packed
//! mantissas, deterministic round-to-nearest-even.
//!
//! Payload layout (little-endian):
//!
//! ```text
//! [u32 dim]
//! per block of up to `block` coordinates:
//!   [i16 exponent]
//!   exponent == RAW_ESCAPE → [len × f64 raw bits]   (non-finite block)
//!   otherwise              → [ceil(len·bits/8) bytes packed mantissas]
//! ```
//!
//! Each finite block stores `q_i = clamp(rne(v_i / 2^e), ±(2^(bits−1)−1))`
//! as the biased `bits`-wide value `q_i + 2^(bits−1)`, where the shared
//! exponent `e = floor(log₂ max|v|) − (bits − 2)` keeps `|v|/2^e` below
//! `2^(bits−1)`. Scales are exact powers of two, divisions and the final
//! `q · 2^e` are exact float operations, and rounding is
//! round-to-nearest-even computed in integer space — so quantization is
//! bit-deterministic across platforms and worst-case error is bounded by
//! `2^e < max|v| · 2^−(bits−2)` (pinned by a test against this bound).
//!
//! A block containing any non-finite value escapes to raw `f64` bits
//! (sentinel exponent), so NaN poisoning survives compression and the
//! repo's non-finite-attacker guarantee holds across the wire.

use crate::buf::{packed_len, BitReader, BitWriter, Reader, Writer};
use crate::{CodecError, GradientCodec};

/// Sentinel exponent marking a raw-escape block (non-finite values ride
/// as uncompressed `f64` bits).
const RAW_ESCAPE: i16 = i16::MIN;

/// Exponents a well-formed payload may carry: every finite `f64` has
/// `floor(log₂|v|)` in `[-1074, 1023]`, and the encoder never exceeds it.
const EXP_MIN: i32 = -1074;
const EXP_MAX: i32 = 1023;

/// `2^e` computed exactly from the bit pattern, for `e ∈ [-1074, 1023]`
/// (subnormal scales included).
fn exp2i(e: i32) -> f64 {
    debug_assert!((EXP_MIN..=EXP_MAX).contains(&e));
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// `floor(log₂ x)` for finite `x > 0`, exact, from the bit pattern.
fn floor_log2(x: f64) -> i32 {
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    if exp == 0 {
        // Subnormal: x = mantissa · 2^-1074 with mantissa in [1, 2^52).
        let mantissa = bits & ((1u64 << 52) - 1);
        63 - mantissa.leading_zeros() as i32 - 1074
    } else {
        exp - 1023
    }
}

/// Round-to-nearest, ties to even, computed without relying on the
/// platform's rounding-mode-sensitive intrinsics. `|x| < 2^16` here, so
/// the integer detour is exact.
fn round_ties_even(x: f64) -> f64 {
    let floor = x.floor();
    let frac = x - floor;
    if frac > 0.5 || (frac == 0.5 && (floor as i64) % 2 != 0) {
        floor + 1.0
    } else {
        floor
    }
}

/// Block floating point with `block`-coordinate blocks and `bits`-wide
/// mantissas (see the module docs for the exact format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfp {
    block: usize,
    bits: u32,
}

impl Bfp {
    /// Creates the codec; parameters must satisfy
    /// [`CompressionSpec::validate`](crate::CompressionSpec::validate)
    /// (`block >= 1`, `2 <= bits <= 15`).
    pub fn new(block: usize, bits: u32) -> Self {
        debug_assert!(block >= 1 && (2..=15).contains(&bits));
        Self { block, bits }
    }

    /// Worst-case absolute quantization error of one finite block with
    /// max magnitude `m`: the shared scale `2^e < m · 2^−(bits−2)` bounds
    /// both the rounding error (`≤ 2^(e−1)`) and the clamp error
    /// (`< 2^e`).
    pub fn error_bound(&self, block_max: f64) -> f64 {
        block_max * exp2i(-(self.bits as i32 - 2))
    }

    fn encode_block(&self, out: &mut Writer, block: &[f64]) {
        if block.iter().any(|v| !v.is_finite()) {
            out.put_u16(RAW_ESCAPE as u16);
            for &v in block {
                out.put_f64(v);
            }
            return;
        }
        let m = block.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        let e = if m == 0.0 {
            0
        } else {
            (floor_log2(m) - (self.bits as i32 - 2)).max(EXP_MIN)
        };
        let scale = exp2i(e);
        let qmax = (1i64 << (self.bits - 1)) - 1;
        let bias = 1i64 << (self.bits - 1);
        out.put_u16(e as i16 as u16);
        let mut packer = BitWriter::with_capacity(packed_len(block.len(), self.bits));
        for &v in block {
            let q = (round_ties_even(v / scale) as i64).clamp(-qmax, qmax);
            packer.push((q + bias) as u32, self.bits);
        }
        out.put_raw(&packer.finish());
    }

    fn decode_block(
        &self,
        reader: &mut Reader<'_>,
        out: &mut Vec<f64>,
        len: usize,
    ) -> Result<(), CodecError> {
        let e = reader.u16()? as i16;
        if e == RAW_ESCAPE {
            for _ in 0..len {
                out.push(reader.f64()?);
            }
            return Ok(());
        }
        let e = i32::from(e);
        if !(EXP_MIN..=EXP_MAX).contains(&e) {
            return Err(CodecError::malformed(format!(
                "block exponent {e} outside [{EXP_MIN}, {EXP_MAX}]"
            )));
        }
        let scale = exp2i(e);
        let bias = 1i64 << (self.bits - 1);
        let packed = reader.raw(packed_len(len, self.bits))?;
        let mut bits = BitReader::new(packed);
        for _ in 0..len {
            let q = i64::from(bits.pull(self.bits)?) - bias;
            out.push(q as f64 * scale);
        }
        Ok(())
    }
}

impl GradientCodec for Bfp {
    fn name(&self) -> String {
        format!("bfp:block={},bits={}", self.block, self.bits)
    }

    fn encode(&self, x: &[f64], _reference: &[f64]) -> Vec<u8> {
        let blocks = x.len().div_ceil(self.block.max(1)).max(1);
        let mut out = Writer::with_capacity(4 + blocks * (2 + packed_len(self.block, self.bits)));
        out.put_u32(x.len() as u32);
        for block in x.chunks(self.block) {
            self.encode_block(&mut out, block);
        }
        out.finish()
    }

    fn decode(&self, bytes: &[u8], _reference: &[f64], dim: usize) -> Result<Vec<f64>, CodecError> {
        let mut reader = Reader::new(bytes);
        let got = reader.u32()? as usize;
        if got != dim {
            return Err(CodecError::DimensionMismatch { got, expected: dim });
        }
        let mut out = Vec::with_capacity(dim);
        let mut remaining = dim;
        while remaining > 0 {
            let len = remaining.min(self.block);
            self.decode_block(&mut reader, &mut out, len)?;
            remaining -= len;
        }
        reader.finish()?;
        Ok(out)
    }

    fn encode_params(&self, x: &[f64]) -> Vec<u8> {
        self.encode(x, &[])
    }

    fn decode_params(&self, bytes: &[u8], dim: usize) -> Result<Vec<f64>, CodecError> {
        self.decode(bytes, &[], dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_helpers_are_exact() {
        // `2.0f64.powi` underflows to zero on deep subnormals, so pin the
        // defining properties directly instead of comparing against std.
        assert_eq!(exp2i(-1074), f64::MIN_POSITIVE * 2.0f64.powi(-52));
        assert_eq!(exp2i(-1074).to_bits(), 1); // smallest positive subnormal
        assert_eq!(exp2i(-1022), f64::MIN_POSITIVE);
        for e in [-1022, -52, -1, 0, 1, 52, 1023] {
            assert_eq!(exp2i(e), 2.0f64.powi(e), "exp2i({e})");
        }
        for e in [-1074, -1073, -1024, -1023, -1022, -1, 0, 1, 1023] {
            assert_eq!(floor_log2(exp2i(e)), e, "floor_log2(2^{e})");
            if e > -1074 {
                // 1.5·2^-1074 is not representable (it rounds up), so the
                // mid-block probe starts one exponent higher.
                assert_eq!(floor_log2(exp2i(e) * 1.5), e, "floor_log2(1.5·2^{e})");
            }
        }
        assert_eq!(floor_log2(1.0e300), 996);
        assert_eq!(floor_log2(1.5e-310), -1030);
    }

    #[test]
    fn rounding_is_ties_to_even() {
        assert_eq!(round_ties_even(2.5), 2.0);
        assert_eq!(round_ties_even(3.5), 4.0);
        assert_eq!(round_ties_even(-2.5), -2.0);
        assert_eq!(round_ties_even(-3.5), -4.0);
        assert_eq!(round_ties_even(2.4), 2.0);
        assert_eq!(round_ties_even(2.6), 3.0);
        assert_eq!(round_ties_even(-0.5), 0.0);
        assert_eq!(round_ties_even(0.0), 0.0);
    }

    /// Satellite: the worst-case quantization error of every finite block
    /// stays under the analytical bound `max|block| · 2^−(bits−2)`.
    #[test]
    fn quantization_error_stays_under_the_analytical_bound() {
        for bits in [2, 4, 8, 12, 15] {
            let codec = Bfp::new(32, bits);
            // A deterministic pseudo-random vector spanning magnitudes.
            let mut state = 0x9E37_79B9u64;
            let x: Vec<f64> = (0..512)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let unit = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                    unit * 10f64.powi((i % 13) - 6)
                })
                .collect();
            let bytes = codec.encode(&x, &[]);
            let decoded = codec.decode(&bytes, &[], x.len()).unwrap();
            for (block, decoded_block) in x.chunks(32).zip(decoded.chunks(32)) {
                let m = block.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
                let bound = codec.error_bound(m);
                for (v, d) in block.iter().zip(decoded_block) {
                    let err = (v - d).abs();
                    assert!(
                        err <= bound,
                        "bits={bits}: |{v} - {d}| = {err} exceeds bound {bound} (block max {m})"
                    );
                }
            }
        }
    }

    /// Non-finite blocks escape to raw bits: NaN/±∞ survive the codec
    /// exactly, so poisoning detection works across the wire.
    #[test]
    fn nonfinite_blocks_ride_raw() {
        let codec = Bfp::new(8, 12);
        let mut x = vec![1.0; 24];
        x[3] = f64::NAN;
        x[17] = f64::NEG_INFINITY;
        let decoded = codec.decode(&codec.encode(&x, &[]), &[], 24).unwrap();
        assert!(decoded[3].is_nan());
        assert_eq!(decoded[17], f64::NEG_INFINITY);
        // The finite block in the middle (8..16) is still quantized, and
        // the escaped blocks are exact.
        for i in [0, 1, 2, 4, 5, 6, 7, 16, 18, 23] {
            assert_eq!(decoded[i].to_bits(), x[i].to_bits(), "raw block index {i}");
        }
    }

    /// The headline size claim the wire-reduction target rests on:
    /// d=1000 at block=64, bits=12 packs >5× smaller than raw f64.
    #[test]
    fn packed_size_beats_raw_by_over_5x_at_reference_settings() {
        let codec = Bfp::new(64, 12);
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).cos()).collect();
        let bytes = codec.encode(&x, &[]);
        let raw = 4 + 8 * x.len();
        assert!(
            (bytes.len() as f64) * 5.0 < raw as f64,
            "expected >5× reduction, got {} vs {raw} raw bytes",
            bytes.len()
        );
    }

    #[test]
    fn corrupt_exponent_and_truncation_are_structured_errors() {
        let codec = Bfp::new(16, 12);
        let x = vec![0.5; 40];
        let bytes = codec.encode(&x, &[]);
        // Corrupt the first block exponent to an out-of-range value.
        let mut corrupt = bytes.clone();
        corrupt[4] = 0xFF;
        corrupt[5] = 0x7F; // +32767, far outside [-1074, 1023]
        assert!(matches!(
            codec.decode(&corrupt, &[], 40),
            Err(CodecError::Malformed(_))
        ));
        assert!(matches!(
            codec.decode(&bytes[..bytes.len() - 1], &[], 40),
            Err(CodecError::Truncated { .. })
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            codec.decode(&trailing, &[], 40),
            Err(CodecError::Malformed(_))
        ));
    }

    /// Zero blocks and subnormal magnitudes quantize without panicking or
    /// dividing by zero, and all-zero input round-trips to exact zeros.
    #[test]
    fn degenerate_magnitudes_are_handled() {
        let codec = Bfp::new(8, 4);
        let zeros = vec![0.0; 20];
        let decoded = codec.decode(&codec.encode(&zeros, &[]), &[], 20).unwrap();
        assert!(decoded.iter().all(|v| *v == 0.0));
        let tiny = vec![5.0e-324; 8]; // the smallest positive subnormal
        let decoded = codec.decode(&codec.encode(&tiny, &[]), &[], 8).unwrap();
        assert!(decoded.iter().all(|v| v.is_finite()));
    }
}
