//! Delta coding against the round's broadcast parameters: proposals are
//! encoded as `x − reference` through an inner codec, and reconstructed
//! as `reference + decode(bytes)`. Late in training a proposal sits close
//! to the broadcast params, so the residual has small magnitude and the
//! inner codec spends its bits where the signal is.
//!
//! An empty reference slice means "no reference is available" (e.g. the
//! parameter broadcast itself); the codec then degrades to its inner
//! codec applied to the plain vector. Parameter handling delegates to the
//! inner codec, inheriting its policy (BFP quantizes, top-k rides raw).
//!
//! Idempotence holds because the reconstruction is in the *coset*
//! `reference + Q` where `Q` is the inner codec's fixed point set:
//! re-encoding subtracts the same reference back out, leaving an
//! already-quantized residual the inner codec passes through unchanged.
//! The subtraction `(reference + d) − reference` is not exact in general
//! floating point, but both paths — engine transform and wire decode —
//! perform the identical operation order, so the trajectories still agree
//! bit for bit, and the pinned idempotence tests hold for the codecs this
//! crate ships (power-of-two BFP scales and exact top-k values).

use crate::{CodecError, GradientCodec};

/// Delta-vs-broadcast composition wrapping an inner codec (see the
/// module docs).
#[derive(Debug)]
pub struct DeltaVsBroadcast {
    inner: Box<dyn GradientCodec>,
}

impl DeltaVsBroadcast {
    /// Wraps `inner`; the composed codec is named `delta+<inner name>`.
    pub fn new(inner: Box<dyn GradientCodec>) -> Self {
        Self { inner }
    }
}

impl GradientCodec for DeltaVsBroadcast {
    fn name(&self) -> String {
        format!("delta+{}", self.inner.name())
    }

    fn encode(&self, x: &[f64], reference: &[f64]) -> Vec<u8> {
        if reference.is_empty() {
            return self.inner.encode(x, &[]);
        }
        debug_assert_eq!(reference.len(), x.len());
        let residual: Vec<f64> = x.iter().zip(reference).map(|(v, r)| v - r).collect();
        self.inner.encode(&residual, &[])
    }

    fn decode(&self, bytes: &[u8], reference: &[f64], dim: usize) -> Result<Vec<f64>, CodecError> {
        let mut out = self.inner.decode(bytes, &[], dim)?;
        if !reference.is_empty() {
            if reference.len() != dim {
                return Err(CodecError::DimensionMismatch {
                    got: reference.len(),
                    expected: dim,
                });
            }
            for (v, r) in out.iter_mut().zip(reference) {
                *v += r;
            }
        }
        Ok(out)
    }

    fn encode_params(&self, x: &[f64]) -> Vec<u8> {
        self.inner.encode_params(x)
    }

    fn decode_params(&self, bytes: &[u8], dim: usize) -> Result<Vec<f64>, CodecError> {
        self.inner.decode_params(bytes, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bfp, TopK};

    #[test]
    fn residuals_reconstruct_against_the_reference() {
        let codec = DeltaVsBroadcast::new(Box::new(Bfp::new(16, 12)));
        let reference: Vec<f64> = (0..50).map(|i| (i as f64) * 0.1).collect();
        // Proposals near the reference: residuals are tiny, so the
        // reconstruction error is far below the raw-value quantization
        // error.
        let x: Vec<f64> = reference.iter().map(|r| r + 1.0e-6).collect();
        let decoded = codec
            .decode(&codec.encode(&x, &reference), &reference, 50)
            .unwrap();
        for (v, d) in x.iter().zip(&decoded) {
            assert!(
                (v - d).abs() < 1.0e-8,
                "residual reconstruction |{v} - {d}|"
            );
        }
    }

    #[test]
    fn empty_reference_degrades_to_the_inner_codec() {
        let delta = DeltaVsBroadcast::new(Box::new(TopK::new(3)));
        let plain = TopK::new(3);
        let x = vec![5.0, -1.0, 0.25, 9.0, -9.5, 0.0];
        assert_eq!(delta.encode(&x, &[]), plain.encode(&x, &[]));
        assert_eq!(delta.name(), "delta+topk:k=3");
    }

    #[test]
    fn reference_dimension_is_cross_checked() {
        let codec = DeltaVsBroadcast::new(Box::new(Bfp::new(8, 8)));
        let x = vec![1.0; 8];
        let bytes = codec.encode(&x, &[]);
        assert!(matches!(
            codec.decode(&bytes, &[0.0; 5], 8),
            Err(CodecError::DimensionMismatch {
                got: 5,
                expected: 8
            })
        ));
    }

    #[test]
    fn params_delegate_to_the_inner_policy() {
        let x = vec![0.5, -0.25, 3.0];
        // delta+topk: params ride raw (identity transform).
        let sparse = DeltaVsBroadcast::new(Box::new(TopK::new(1)));
        let mut p = x.clone();
        sparse.transform_params(&mut p);
        assert_eq!(p, x);
        // delta+bfp: params are quantized exactly like plain bfp's.
        let dense = DeltaVsBroadcast::new(Box::new(Bfp::new(2, 6)));
        let plain = Bfp::new(2, 6);
        let mut a = x.clone();
        let mut b = x.clone();
        dense.transform_params(&mut a);
        plain.transform_params(&mut b);
        assert_eq!(a, b);
    }
}
