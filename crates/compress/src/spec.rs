//! Codec specification strings: the grammar scenarios, the CLI, and the
//! wire negotiation all share. A spec is a codec name optionally followed
//! by `:key=value` parameters:
//!
//! * `bfp:block=64,bits=12` — block floating point;
//! * `topk:k=100` — top-k sparsification;
//! * `delta+bfp:block=64,bits=12` / `delta+topk:k=100` — delta against
//!   the round's broadcast params, composed with an inner codec.
//!
//! `Display` and `FromStr` round-trip, the serde impls carry the string
//! form (so scenario JSON reads `"compression": "bfp:block=64,bits=12"`),
//! and [`CompressionSpec::build`] produces the boxed
//! [`GradientCodec`](crate::GradientCodec).

use std::fmt;
use std::str::FromStr;

use crate::{Bfp, CodecError, DeltaVsBroadcast, GradientCodec, TopK};

/// The canonical codec names, in the order `krum list` prints them.
pub const CODEC_NAMES: &[&str] = &["bfp", "topk", "delta+bfp", "delta+topk"];

/// One grammar line per codec for `krum list` and error messages.
pub const CODEC_GRAMMAR: &[(&str, &str)] = &[
    (
        "bfp:block=<1..4096>,bits=<2..15>",
        "block floating point: shared exponent per block, bit-packed mantissas",
    ),
    (
        "topk:k=<count>",
        "keep the k largest-magnitude coordinates (params ride uncompressed)",
    ),
    (
        "delta+bfp:block=<1..4096>,bits=<2..15>",
        "bfp over the residual vs the round's broadcast params",
    ),
    (
        "delta+topk:k=<count>",
        "top-k over the residual vs the round's broadcast params",
    ),
];

/// Parsed, validated form of a codec spec string (see the module docs for
/// the grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionSpec {
    /// `bfp:block=B,bits=W`.
    Bfp {
        /// Coordinates per shared-exponent block (`1..=4096`).
        block: usize,
        /// Mantissa width in bits (`2..=15`).
        bits: u32,
    },
    /// `topk:k=K`.
    TopK {
        /// Coordinates kept per vector (`>= 1`, and `<= dim` once a
        /// scenario binds the dimension).
        k: usize,
    },
    /// `delta+bfp:block=B,bits=W`.
    DeltaBfp {
        /// Coordinates per shared-exponent block (`1..=4096`).
        block: usize,
        /// Mantissa width in bits (`2..=15`).
        bits: u32,
    },
    /// `delta+topk:k=K`.
    DeltaTopK {
        /// Coordinates kept per vector.
        k: usize,
    },
}

impl CompressionSpec {
    /// The canonical codec name (the `Display` form without parameters).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Bfp { .. } => "bfp",
            Self::TopK { .. } => "topk",
            Self::DeltaBfp { .. } => "delta+bfp",
            Self::DeltaTopK { .. } => "delta+topk",
        }
    }

    /// One spec per codec with the reference parameters, in
    /// [`CODEC_NAMES`] order.
    pub fn all() -> Vec<CompressionSpec> {
        vec![
            Self::Bfp {
                block: 64,
                bits: 12,
            },
            Self::TopK { k: 100 },
            Self::DeltaBfp {
                block: 64,
                bits: 12,
            },
            Self::DeltaTopK { k: 100 },
        ]
    }

    /// Checks parameter ranges; `dim` is the scenario's model dimension
    /// when known (`None` defers the `k <= dim` check).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidSpec`] naming the offending
    /// parameter.
    pub fn validate(&self, dim: Option<usize>) -> Result<(), CodecError> {
        match *self {
            Self::Bfp { block, bits } | Self::DeltaBfp { block, bits } => {
                if !(1..=4096).contains(&block) {
                    return Err(CodecError::invalid(format!(
                        "{}: block must be in 1..=4096, got {block}",
                        self.name()
                    )));
                }
                if !(2..=15).contains(&bits) {
                    return Err(CodecError::invalid(format!(
                        "{}: bits must be in 2..=15, got {bits}",
                        self.name()
                    )));
                }
            }
            Self::TopK { k } | Self::DeltaTopK { k } => {
                if k == 0 {
                    return Err(CodecError::invalid(format!(
                        "{}: k must be at least 1",
                        self.name()
                    )));
                }
                if let Some(dim) = dim {
                    if k > dim {
                        return Err(CodecError::invalid(format!(
                            "{}: k = {k} exceeds the model dimension {dim}",
                            self.name()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the boxed codec. The spec should be [`validate`]d first;
    /// `build` itself never fails.
    ///
    /// [`validate`]: CompressionSpec::validate
    pub fn build(&self) -> Box<dyn GradientCodec> {
        match *self {
            Self::Bfp { block, bits } => Box::new(Bfp::new(block, bits)),
            Self::TopK { k } => Box::new(TopK::new(k)),
            Self::DeltaBfp { block, bits } => {
                Box::new(DeltaVsBroadcast::new(Box::new(Bfp::new(block, bits))))
            }
            Self::DeltaTopK { k } => Box::new(DeltaVsBroadcast::new(Box::new(TopK::new(k)))),
        }
    }
}

impl fmt::Display for CompressionSpec {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Bfp { block, bits } => write!(out, "bfp:block={block},bits={bits}"),
            Self::TopK { k } => write!(out, "topk:k={k}"),
            Self::DeltaBfp { block, bits } => write!(out, "delta+bfp:block={block},bits={bits}"),
            Self::DeltaTopK { k } => write!(out, "delta+topk:k={k}"),
        }
    }
}

impl FromStr for CompressionSpec {
    type Err = CodecError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let mut parts = spec.splitn(2, ':');
        let name = parts.next().unwrap_or_default().trim();
        let raw_params = parts.next().unwrap_or("");
        let params = parse_params(raw_params, name)?;
        let get = |key: &str| -> Result<usize, CodecError> {
            params
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .ok_or_else(|| {
                    CodecError::invalid(format!("codec `{name}` requires parameter `{key}`"))
                })
        };
        let reject_unknown = |allowed: &[&str]| -> Result<(), CodecError> {
            if let Some((key, _)) = params.iter().find(|(k, _)| !allowed.contains(&k.as_str())) {
                return Err(CodecError::invalid(format!(
                    "unknown parameter `{key}` for codec `{name}`"
                )));
            }
            Ok(())
        };
        let spec = match name {
            "bfp" => {
                reject_unknown(&["block", "bits"])?;
                Self::Bfp {
                    block: get("block")?,
                    bits: get("bits")? as u32,
                }
            }
            "topk" => {
                reject_unknown(&["k"])?;
                Self::TopK { k: get("k")? }
            }
            "delta+bfp" => {
                reject_unknown(&["block", "bits"])?;
                Self::DeltaBfp {
                    block: get("block")?,
                    bits: get("bits")? as u32,
                }
            }
            "delta+topk" => {
                reject_unknown(&["k"])?;
                Self::DeltaTopK { k: get("k")? }
            }
            other => {
                return Err(CodecError::invalid(format!(
                    "unknown codec `{other}`; known codecs: {}",
                    CODEC_NAMES.join(", ")
                )))
            }
        };
        spec.validate(None)?;
        Ok(spec)
    }
}

/// Parses `key=value,key=value` with integer values.
fn parse_params(raw: &str, name: &str) -> Result<Vec<(String, usize)>, CodecError> {
    let mut params = Vec::new();
    for pair in raw.split(',').filter(|p| !p.trim().is_empty()) {
        let mut kv = pair.splitn(2, '=');
        let key = kv.next().unwrap_or_default().trim();
        let value = kv.next().ok_or_else(|| {
            CodecError::invalid(format!(
                "codec `{name}`: parameter `{pair}` is not of the form key=value"
            ))
        })?;
        let value: usize = value.trim().parse().map_err(|_| {
            CodecError::invalid(format!(
                "codec `{name}`: parameter `{key}` must be a non-negative integer, got `{}`",
                value.trim()
            ))
        })?;
        params.push((key.to_string(), value));
    }
    Ok(params)
}

impl serde::Serialize for CompressionSpec {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for CompressionSpec {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Str(s) => s
                .parse()
                .map_err(|e: CodecError| serde::DeError::custom(e.to_string())),
            other => Err(serde::DeError::invalid_type(
                "compression spec string",
                other.kind(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        for spec in CompressionSpec::all() {
            let rendered = spec.to_string();
            let reparsed: CompressionSpec = rendered.parse().unwrap();
            assert_eq!(reparsed, spec, "round-trip of `{rendered}`");
            assert_eq!(spec.build().name(), rendered, "codec name matches spec");
        }
    }

    #[test]
    fn parse_accepts_the_documented_grammar() {
        assert_eq!(
            "bfp:block=64,bits=12".parse::<CompressionSpec>().unwrap(),
            CompressionSpec::Bfp {
                block: 64,
                bits: 12
            }
        );
        assert_eq!(
            "topk:k=100".parse::<CompressionSpec>().unwrap(),
            CompressionSpec::TopK { k: 100 }
        );
        assert_eq!(
            "delta+bfp:block=16,bits=4"
                .parse::<CompressionSpec>()
                .unwrap(),
            CompressionSpec::DeltaBfp { block: 16, bits: 4 }
        );
        assert_eq!(
            "delta+topk:k=5".parse::<CompressionSpec>().unwrap(),
            CompressionSpec::DeltaTopK { k: 5 }
        );
    }

    #[test]
    fn parse_rejects_bad_specs_with_structured_errors() {
        for bad in [
            "gzip",
            "bfp",
            "bfp:block=64",
            "bfp:block=0,bits=12",
            "bfp:block=64,bits=1",
            "bfp:block=64,bits=16",
            "bfp:block=9999,bits=12",
            "bfp:block=64,bits=12,extra=1",
            "topk",
            "topk:k=0",
            "topk:k=abc",
            "delta+topk:block=4",
            "delta",
            "",
        ] {
            assert!(
                matches!(
                    bad.parse::<CompressionSpec>(),
                    Err(CodecError::InvalidSpec(_))
                ),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn k_vs_dimension_is_checked_when_the_dimension_is_known() {
        let spec = CompressionSpec::TopK { k: 100 };
        assert!(spec.validate(None).is_ok());
        assert!(spec.validate(Some(1000)).is_ok());
        assert!(matches!(
            spec.validate(Some(50)),
            Err(CodecError::InvalidSpec(_))
        ));
    }

    #[test]
    fn serde_carries_the_string_form() {
        for spec in CompressionSpec::all() {
            let value = serde::Serialize::serialize(&spec);
            assert_eq!(value, serde::Value::Str(spec.to_string()));
            let back: CompressionSpec = serde::Deserialize::deserialize(&value).unwrap();
            assert_eq!(back, spec);
        }
        let err: Result<CompressionSpec, _> =
            serde::Deserialize::deserialize(&serde::Value::Str("gzip".into()));
        assert!(err.is_err());
        let err: Result<CompressionSpec, _> =
            serde::Deserialize::deserialize(&serde::Value::Float(3.0));
        assert!(err.is_err());
    }
}
