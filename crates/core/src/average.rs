//! Linear aggregation rules — the baselines of Lemma 3.1.
//!
//! The paper's first result is negative: **no** linear combination of the
//! proposals tolerates even a single Byzantine worker, because that worker can
//! solve for the proposal that forces the combination to equal any target
//! vector `U`. [`Average`] is the ubiquitous special case; [`WeightedAverage`]
//! covers the general `F_lin = Σ λ_i V_i` form so experiment E1 can demonstrate
//! the lemma for arbitrary non-zero weights.

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::aggregator::{validate_proposals, Aggregation, Aggregator};
use crate::context::AggregationContext;
use crate::error::AggregationError;

/// Plain averaging `F(V_1, …, V_n) = (1/n) Σ V_i` — the default choice
/// function of non-Byzantine distributed SGD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Average;

impl Average {
    /// Creates the averaging rule.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for Average {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        // Same accumulation order as `Vector::mean_of`: sum, then scale.
        let value = ctx.begin_mixed(dim);
        for v in proposals {
            value.axpy(1.0, v);
        }
        value.scale(1.0 / proposals.len() as f64);
        Ok(())
    }

    fn name(&self) -> String {
        "average".into()
    }
}

/// A general linear rule `F(V_1, …, V_n) = Σ λ_i V_i` with fixed non-zero
/// coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedAverage {
    weights: Vec<f64>,
}

impl WeightedAverage {
    /// Creates a linear rule with the given coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when `weights` is empty or
    /// any coefficient is zero or non-finite (Lemma 3.1 assumes non-zero
    /// scalars).
    pub fn new(weights: Vec<f64>) -> Result<Self, AggregationError> {
        if weights.is_empty() {
            return Err(AggregationError::config(
                "weighted-average",
                "weights must be non-empty",
            ));
        }
        if weights.iter().any(|w| *w == 0.0 || !w.is_finite()) {
            return Err(AggregationError::config(
                "weighted-average",
                "all weights must be non-zero and finite",
            ));
        }
        Ok(Self { weights })
    }

    /// Uniform weights `λ_i = 1/n` (identical to [`Average`]).
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when `n` is zero.
    pub fn uniform(n: usize) -> Result<Self, AggregationError> {
        if n == 0 {
            return Err(AggregationError::config(
                "weighted-average",
                "n must be >= 1",
            ));
        }
        Self::new(vec![1.0 / n as f64; n])
    }

    /// The coefficients `λ_i`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Aggregator for WeightedAverage {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        if proposals.len() != self.weights.len() {
            return Err(AggregationError::WrongWorkerCount {
                expected: self.weights.len(),
                found: proposals.len(),
            });
        }
        let value = ctx.begin_mixed(dim);
        for (v, &w) in proposals.iter().zip(&self.weights) {
            value.axpy(w, v);
        }
        Ok(())
    }

    fn name(&self) -> String {
        format!("weighted-average(n={})", self.weights.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposals() -> Vec<Vector> {
        vec![
            Vector::from(vec![1.0, 2.0]),
            Vector::from(vec![3.0, 4.0]),
            Vector::from(vec![5.0, 6.0]),
        ]
    }

    #[test]
    fn average_is_the_barycenter() {
        let avg = Average::new();
        let out = avg.aggregate(&proposals()).unwrap();
        assert_eq!(out.as_slice(), &[3.0, 4.0]);
        assert!(!avg.is_selection_rule());
        assert_eq!(avg.name(), "average");
        assert!(avg
            .aggregate_detailed(&proposals())
            .unwrap()
            .selected
            .is_empty());
    }

    #[test]
    fn average_rejects_empty_and_mismatched() {
        let avg = Average;
        assert!(avg.aggregate(&[]).is_err());
        assert!(avg
            .aggregate(&[Vector::zeros(2), Vector::zeros(3)])
            .is_err());
    }

    #[test]
    fn lemma_3_1_single_byzantine_controls_any_linear_rule() {
        // A single Byzantine worker (index n-1) can force the linear rule to
        // output an arbitrary target U by proposing
        // (U − Σ_{i<n−1} λ_i V_i) / λ_{n−1}.
        let weights = vec![0.2, 0.3, -0.1, 0.6];
        let rule = WeightedAverage::new(weights.clone()).unwrap();
        let honest = vec![
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![2.0, -1.0]),
            Vector::from(vec![0.5, 0.5]),
        ];
        let target = Vector::from(vec![-77.0, 123.0]);
        let mut partial = Vector::zeros(2);
        for (v, &w) in honest.iter().zip(&weights) {
            partial.axpy(w, v);
        }
        let byzantine = (&target - &partial).scaled(1.0 / weights[3]);
        let mut all = honest;
        all.push(byzantine);
        let out = rule.aggregate(&all).unwrap();
        assert!(
            out.distance(&target) < 1e-9,
            "attacker forced {out} != {target}"
        );
    }

    #[test]
    fn weighted_average_validation() {
        assert!(WeightedAverage::new(vec![]).is_err());
        assert!(WeightedAverage::new(vec![1.0, 0.0]).is_err());
        assert!(WeightedAverage::new(vec![1.0, f64::NAN]).is_err());
        assert!(WeightedAverage::uniform(0).is_err());
        let w = WeightedAverage::new(vec![0.5, 0.5, 1.0]).unwrap();
        assert_eq!(w.weights(), &[0.5, 0.5, 1.0]);
        assert!(w.name().contains("n=3"));
        assert!(matches!(
            w.aggregate(&proposals()[..2]),
            Err(AggregationError::WrongWorkerCount { .. })
        ));
    }

    #[test]
    fn uniform_weighted_average_equals_average() {
        let avg = Average.aggregate(&proposals()).unwrap();
        let uni = WeightedAverage::uniform(3)
            .unwrap()
            .aggregate(&proposals())
            .unwrap();
        assert!(avg.distance(&uni) < 1e-12);
    }
}
