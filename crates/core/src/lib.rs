//! # krum-core
//!
//! Aggregation (choice) functions for Byzantine-tolerant distributed SGD —
//! the contribution of *Brief Announcement: Byzantine-Tolerant Machine
//! Learning* (Blanchard, El Mhamdi, Guerraoui, Stainer, PODC 2017).
//!
//! The parameter server collects one proposal vector per worker and applies a
//! choice function `F(V_1, …, V_n)`. This crate implements:
//!
//! * [`Krum`] — the paper's rule: score each proposal by the summed squared
//!   distance to its `n − f − 2` closest neighbours and select the minimiser
//!   (ties broken towards the smallest worker id, per footnote 3);
//! * [`MultiKrum`] — the full-version extension averaging the `m` best-scored
//!   proposals;
//! * baselines the paper argues about: [`Average`] and [`WeightedAverage`]
//!   (the linear rules of Lemma 3.1), [`ClosestToBarycenter`] (the
//!   distance-based rule defeated by the Figure-2 collusion),
//!   [`MinimumDiameterSubset`] (the exponential majority-based rule of the
//!   introduction), plus the classical robust statistics
//!   [`CoordinateWiseMedian`], [`TrimmedMean`] and [`GeometricMedian`];
//! * **stateful defenses** against multi-round adaptive adversaries:
//!   [`ReputationWeighted`] (per-worker EWMA reputation weights) and
//!   [`CenteredClip`] (momentum-anchored clipping), whose cross-round
//!   memory lives in the [`AggregationContext`] as a checkpointable
//!   [`StatefulState`] (see the [`StatefulAggregator`] layer trait);
//! * the [`resilience`] module — an empirical estimator of the
//!   `(α, f)`-Byzantine-resilience condition of Definition 3.2 and the
//!   `η(n, f)` constant of Proposition 4.2.
//!
//! Every rule exposes two entry points: the allocation-per-call
//! [`Aggregator::aggregate_detailed`] / [`Aggregator::aggregate`], and the
//! workspace-backed [`Aggregator::aggregate_in`] which reuses an
//! [`AggregationContext`] so steady-state rounds perform zero heap
//! allocations (see the `context` module docs for the exact contract).
//!
//! Rules are also constructible from a typed, serde round-trippable
//! [`RuleSpec`] (or its textual form such as `"multi-krum:m=8"` via
//! [`build_aggregator`]) — the registry the scenario API and the `krum`
//! CLI drive.
//!
//! ## Example
//!
//! ```
//! use krum_core::{Aggregator, Krum};
//! use krum_tensor::Vector;
//!
//! // n = 5 workers, f = 1 Byzantine.
//! let proposals = vec![
//!     Vector::from(vec![1.0, 1.0]),
//!     Vector::from(vec![1.1, 0.9]),
//!     Vector::from(vec![0.9, 1.1]),
//!     Vector::from(vec![1.0, 0.95]),
//!     Vector::from(vec![-50.0, 80.0]), // Byzantine outlier
//! ];
//! let krum = Krum::new(5, 1).unwrap();
//! let chosen = krum.aggregate(&proposals).unwrap();
//! assert!(chosen.distance(&Vector::from(vec![1.0, 1.0])) < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
mod average;
mod context;
mod distance;
mod error;
mod hierarchical;
mod kernel;
mod krum;
mod median;
mod registry;
pub mod resilience;
mod stateful;
mod subset;

/// The pre-optimization (per-pair, sort-based) Krum reference path, exposed
/// for benchmarks comparing it against the cached-norm kernel. Enable the
/// `naive` feature to use it.
#[cfg(feature = "naive")]
pub mod naive {
    pub use crate::kernel::naive::{krum_choose, krum_scores, pairwise_squared_distances};
}

pub use aggregator::{validate_proposals, Aggregation, Aggregator};
pub use average::{Average, WeightedAverage};
pub use context::{AggregationContext, ExecutionPolicy};
pub use distance::{ClosestToBarycenter, GeometricMedian};
pub use error::AggregationError;
pub use hierarchical::{Hierarchical, StageRule};
pub use kernel::dot as ilp_dot;
pub use krum::{Krum, MultiKrum};
pub use median::{CoordinateWiseMedian, TrimmedMean};
pub use registry::{build_aggregator, RuleSpec, RULE_NAMES};
pub use resilience::{
    eta, hierarchical_bounds, krum_sin_alpha, HierarchicalBounds, ResilienceCheck,
    ResilienceEstimator,
};
pub use stateful::{CenteredClip, ReputationWeighted, StatefulAggregator, StatefulState};
pub use subset::MinimumDiameterSubset;

/// Convenience prelude for the aggregation crate.
pub mod prelude {
    pub use crate::{
        Aggregation, AggregationContext, AggregationError, Aggregator, Average, CenteredClip,
        ClosestToBarycenter, CoordinateWiseMedian, ExecutionPolicy, GeometricMedian, Hierarchical,
        Krum, MinimumDiameterSubset, MultiKrum, ReputationWeighted, RuleSpec, StageRule,
        StatefulAggregator, StatefulState, TrimmedMean, WeightedAverage,
    };
}
