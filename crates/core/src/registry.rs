//! Typed rule specifications and the registry built on them.
//!
//! Experiment drivers, configuration files and command lines refer to rules
//! either as a typed [`RuleSpec`] value (serde round-trippable, the form the
//! scenario API uses) or as its textual rendering (`"krum"`,
//! `"multi-krum:m=8"`, `"trimmed-mean:trim=2"`). [`RuleSpec`] implements
//! `Display`/`FromStr` so the two forms round-trip exactly, and
//! [`RuleSpec::build`] turns a spec plus the cluster shape `(n, f)` into a
//! boxed [`Aggregator`]. The string-level [`build_aggregator`] is a thin
//! wrapper kept for callers that start from plain text.

use std::fmt;
use std::str::FromStr;

use crate::aggregator::Aggregator;
use crate::average::{Average, WeightedAverage};
use crate::distance::{ClosestToBarycenter, GeometricMedian};
use crate::error::AggregationError;
use crate::hierarchical::{Hierarchical, StageRule};
use crate::krum::{Krum, MultiKrum};
use crate::median::{CoordinateWiseMedian, TrimmedMean};
use crate::stateful::{CenteredClip, ReputationWeighted};
use crate::subset::MinimumDiameterSubset;

/// Names of every rule the registry can build (canonical spellings).
pub const RULE_NAMES: &[&str] = &[
    "average",
    "krum",
    "multi-krum",
    "median",
    "trimmed-mean",
    "geometric-median",
    "closest-to-barycenter",
    "min-diameter-subset",
    "hierarchical",
    "reputation-weighted",
    "centered-clip",
];

/// Default EWMA step of the bare `reputation-weighted` spec.
const DEFAULT_ETA: f64 = 0.2;
/// Default clipping radius of the bare `centered-clip` spec.
const DEFAULT_TAU: f64 = 10.0;
/// Default anchor momentum of the bare `centered-clip` spec.
const DEFAULT_BETA: f64 = 0.9;

/// A typed, serialisable specification of an aggregation rule.
///
/// The spec captures the rule identity and its rule-level parameters; the
/// cluster shape `(n, f)` is supplied at [`RuleSpec::build`] time, so one
/// spec can be swept across cluster sizes. `Display` renders the canonical
/// textual form (`"multi-krum:m=3"`) and `FromStr` parses it back —
/// `spec.to_string().parse()` is the identity for every variant. Serde
/// serialises the spec as that same string, so a JSON scenario reads
/// `"rule": "trimmed-mean:trim=2"`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuleSpec {
    /// Plain averaging — the linear rule of Lemma 3.1.
    Average,
    /// Uniformly weighted averaging (also linear).
    UniformWeightedAverage,
    /// The paper's Krum rule.
    Krum,
    /// Multi-Krum averaging the `m` best-scored proposals; `None` defaults
    /// to `m = n − f` at build time.
    MultiKrum {
        /// How many best-scored proposals to average (`None` → `n − f`).
        m: Option<usize>,
    },
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise trimmed mean; `None` defaults to `trim = f` at build
    /// time.
    TrimmedMean {
        /// How many extremes to trim per coordinate side (`None` → `f`).
        trim: Option<usize>,
    },
    /// Geometric (spatial) median.
    GeometricMedian,
    /// The flawed distance-based rule defeated by the Figure-2 collusion.
    ClosestToBarycenter,
    /// The exponential minimum-diameter-subset rule of the introduction.
    MinDiameterSubset,
    /// Two-level group-sharded aggregation: an inner rule per round-robin
    /// group, an outer rule over the group winners (the `O(n²)` escape
    /// hatch — see [`Hierarchical`]).
    Hierarchical {
        /// Number of round-robin groups `g`.
        groups: usize,
        /// Rule run inside each group (default Krum).
        inner: StageRule,
        /// Rule run over the `g` group winners (default Krum).
        outer: StageRule,
    },
    /// **Stateful**: per-worker EWMA reputation weighting
    /// (see [`ReputationWeighted`]).
    ReputationWeighted {
        /// EWMA step size `η ∈ (0, 1]`.
        eta: f64,
    },
    /// **Stateful**: momentum-anchored centered clipping
    /// (see [`CenteredClip`]).
    CenteredClip {
        /// Clipping radius `τ > 0`.
        tau: f64,
        /// Anchor momentum `β ∈ [0, 1)`.
        beta: f64,
    },
}

impl RuleSpec {
    /// Builds the aggregation rule for a cluster of `n` workers with `f`
    /// Byzantine.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when the parameters are
    /// invalid for the given `(n, f)` (e.g. Krum with `2f + 2 ≥ n`).
    pub fn build(&self, n: usize, f: usize) -> Result<Box<dyn Aggregator>, AggregationError> {
        match *self {
            Self::Average => Ok(Box::new(Average::new())),
            Self::UniformWeightedAverage => Ok(Box::new(WeightedAverage::uniform(n)?)),
            Self::Krum => Ok(Box::new(Krum::new(n, f)?)),
            Self::MultiKrum { m } => {
                let m = m.unwrap_or_else(|| n.saturating_sub(f).max(1));
                Ok(Box::new(MultiKrum::new(n, f, m)?))
            }
            Self::Median => Ok(Box::new(CoordinateWiseMedian::new())),
            Self::TrimmedMean { trim } => {
                let trim = trim.unwrap_or(f);
                // TrimmedMean itself only checks feasibility once proposals
                // arrive; reject an infeasible trim here so scenario
                // validation catches it before any round runs.
                if 2 * trim >= n {
                    return Err(AggregationError::config(
                        "trimmed-mean",
                        format!("trimming needs 2·trim < n, got n = {n}, trim = {trim}"),
                    ));
                }
                Ok(Box::new(TrimmedMean::new(trim)))
            }
            Self::GeometricMedian => Ok(Box::new(GeometricMedian::new())),
            Self::ClosestToBarycenter => Ok(Box::new(ClosestToBarycenter::new())),
            Self::MinDiameterSubset => Ok(Box::new(MinimumDiameterSubset::new(n, f)?)),
            Self::Hierarchical {
                groups,
                inner,
                outer,
            } => Ok(Box::new(Hierarchical::new(n, f, groups, inner, outer)?)),
            Self::ReputationWeighted { eta } => Ok(Box::new(ReputationWeighted::new(eta)?)),
            Self::CenteredClip { tau, beta } => Ok(Box::new(CenteredClip::new(tau, beta)?)),
        }
    }

    /// Whether this rule carries cross-round state in the
    /// [`AggregationContext`](crate::AggregationContext) — the trajectory
    /// then depends on every previous round, and checkpoint/resume must
    /// persist the state ([`crate::StatefulState`]) to stay bit-identical.
    pub fn stateful(&self) -> bool {
        match self {
            Self::ReputationWeighted { .. } | Self::CenteredClip { .. } => true,
            Self::Hierarchical { inner, outer, .. } => inner.stateful() || outer.stateful(),
            _ => false,
        }
    }

    /// Whether this is a hierarchical rule with a stateful stage. Their
    /// cross-round state lives inside per-group workspaces that are not
    /// exportable, so checkpointing callers must reject this combination
    /// up front instead of resuming into a silently different trajectory.
    pub fn hierarchical_stateful(&self) -> bool {
        matches!(
            self,
            Self::Hierarchical { inner, outer, .. } if inner.stateful() || outer.stateful()
        )
    }

    /// The canonical rule name (the `Display` form without parameters).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Average => "average",
            Self::UniformWeightedAverage => "uniform-weighted-average",
            Self::Krum => "krum",
            Self::MultiKrum { .. } => "multi-krum",
            Self::Median => "median",
            Self::TrimmedMean { .. } => "trimmed-mean",
            Self::GeometricMedian => "geometric-median",
            Self::ClosestToBarycenter => "closest-to-barycenter",
            Self::MinDiameterSubset => "min-diameter-subset",
            Self::Hierarchical { .. } => "hierarchical",
            Self::ReputationWeighted { .. } => "reputation-weighted",
            Self::CenteredClip { .. } => "centered-clip",
        }
    }

    /// One spec per canonical rule name, with default parameters — the
    /// iteration order matches [`RULE_NAMES`].
    pub fn all() -> Vec<RuleSpec> {
        vec![
            Self::Average,
            Self::Krum,
            Self::MultiKrum { m: None },
            Self::Median,
            Self::TrimmedMean { trim: None },
            Self::GeometricMedian,
            Self::ClosestToBarycenter,
            Self::MinDiameterSubset,
            // Median stages so the default-parameter build succeeds on the
            // small clusters the registry tests use.
            Self::Hierarchical {
                groups: 2,
                inner: StageRule::Median,
                outer: StageRule::Median,
            },
            Self::ReputationWeighted { eta: DEFAULT_ETA },
            Self::CenteredClip {
                tau: DEFAULT_TAU,
                beta: DEFAULT_BETA,
            },
        ]
    }
}

impl fmt::Display for RuleSpec {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::MultiKrum { m: Some(m) } => write!(out, "multi-krum:m={m}"),
            Self::TrimmedMean { trim: Some(trim) } => write!(out, "trimmed-mean:trim={trim}"),
            Self::Hierarchical {
                groups,
                inner,
                outer,
            } => {
                write!(out, "hierarchical:groups={groups}")?;
                if inner != StageRule::Krum {
                    write!(out, ",inner={inner}")?;
                }
                if outer != StageRule::Krum {
                    write!(out, ",outer={outer}")?;
                }
                Ok(())
            }
            // The stateful rules always print their parameters so the
            // rendered spec is self-describing in experiment tables.
            Self::ReputationWeighted { eta } => write!(out, "reputation-weighted:eta={eta}"),
            Self::CenteredClip { tau, beta } => {
                write!(out, "centered-clip:tau={tau},beta={beta}")
            }
            _ => out.write_str(self.name()),
        }
    }
}

impl FromStr for RuleSpec {
    type Err = AggregationError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let mut parts = spec.splitn(2, ':');
        let name = parts.next().unwrap_or_default().trim();
        let raw_params = parts.next().unwrap_or("");
        // Hierarchical parameters carry rule names as values, so they cannot
        // go through the integer-valued `parse_params`.
        if name == "hierarchical" {
            return parse_hierarchical(raw_params);
        }
        // The stateful rules carry real-valued parameters, so they cannot go
        // through the integer-valued `parse_params` either.
        if name == "reputation-weighted" || name == "centered-clip" {
            return parse_stateful(name, raw_params);
        }
        let params = parse_params(raw_params, name)?;
        let get =
            |key: &str| -> Option<usize> { params.iter().find(|(k, _)| k == key).map(|(_, v)| *v) };
        let reject_unknown = |allowed: &[&str]| -> Result<(), AggregationError> {
            if let Some((key, _)) = params.iter().find(|(k, _)| !allowed.contains(&k.as_str())) {
                return Err(AggregationError::config(
                    "registry",
                    format!("unknown parameter `{key}` for rule `{name}`"),
                ));
            }
            Ok(())
        };
        match name {
            "average" => {
                reject_unknown(&[])?;
                Ok(Self::Average)
            }
            "uniform-weighted-average" => {
                reject_unknown(&[])?;
                Ok(Self::UniformWeightedAverage)
            }
            "krum" => {
                reject_unknown(&[])?;
                Ok(Self::Krum)
            }
            "multi-krum" => {
                reject_unknown(&["m"])?;
                Ok(Self::MultiKrum { m: get("m") })
            }
            "median" | "coordinate-median" => {
                reject_unknown(&[])?;
                Ok(Self::Median)
            }
            "trimmed-mean" => {
                reject_unknown(&["trim"])?;
                Ok(Self::TrimmedMean { trim: get("trim") })
            }
            "geometric-median" => {
                reject_unknown(&[])?;
                Ok(Self::GeometricMedian)
            }
            "closest-to-barycenter" => {
                reject_unknown(&[])?;
                Ok(Self::ClosestToBarycenter)
            }
            "min-diameter-subset" => {
                reject_unknown(&[])?;
                Ok(Self::MinDiameterSubset)
            }
            other => Err(AggregationError::config(
                "registry",
                format!(
                    "unknown aggregation rule `{other}`; known rules: {}",
                    RULE_NAMES.join(", ")
                ),
            )),
        }
    }
}

impl serde::Serialize for RuleSpec {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for RuleSpec {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Str(s) => s
                .parse()
                .map_err(|e: AggregationError| serde::DeError::custom(e.to_string())),
            other => Err(serde::DeError::invalid_type(
                "rule spec string",
                other.kind(),
            )),
        }
    }
}

/// Builds an aggregation rule from a specification string.
///
/// The specification is a rule name optionally followed by `:key=value`
/// parameters:
///
/// * `"average"`
/// * `"krum"` — uses the supplied `(n, f)`
/// * `"multi-krum"` (defaults to `m = n − f`) or `"multi-krum:m=4"`
/// * `"median"`
/// * `"trimmed-mean"` (defaults to `trim = f`) or `"trimmed-mean:trim=3"`
/// * `"geometric-median"`
/// * `"closest-to-barycenter"`
/// * `"min-diameter-subset"`
///
/// This is a thin wrapper over `spec.parse::<`[`RuleSpec`]`>()` followed by
/// [`RuleSpec::build`].
///
/// # Errors
///
/// Returns [`AggregationError::InvalidConfig`] for unknown rule names, unknown
/// or malformed parameters, or parameters that are invalid for the given
/// `(n, f)` (e.g. Krum with `2f + 2 ≥ n`).
///
/// # Examples
///
/// ```
/// use krum_core::{build_aggregator, Aggregator};
/// use krum_tensor::Vector;
///
/// let rule = build_aggregator("multi-krum:m=3", 9, 2)?;
/// assert_eq!(rule.name(), "multi-krum(n=9,f=2,m=3)");
/// let proposals = vec![Vector::zeros(4); 9];
/// assert_eq!(rule.aggregate(&proposals)?.dim(), 4);
/// # Ok::<(), krum_core::AggregationError>(())
/// ```
pub fn build_aggregator(
    spec: &str,
    n: usize,
    f: usize,
) -> Result<Box<dyn Aggregator>, AggregationError> {
    spec.parse::<RuleSpec>()?.build(n, f)
}

/// Parses the parameter list of a `hierarchical:...` spec. Keys: `groups`
/// (default 4), `inner` and `outer` (rule specs, default `krum`). Splitting
/// on `,` first is safe because stage rules carry at most one parameter and
/// therefore never contain a comma themselves.
fn parse_hierarchical(raw: &str) -> Result<RuleSpec, AggregationError> {
    let mut groups = 4usize;
    let mut inner = StageRule::Krum;
    let mut outer = StageRule::Krum;
    for piece in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let mut kv = piece.splitn(2, '=');
        let key = kv.next().unwrap_or_default().trim();
        let value = kv
            .next()
            .ok_or_else(|| {
                AggregationError::config(
                    "registry",
                    format!(
                        "parameter `{piece}` for rule `hierarchical` is not of the form key=value"
                    ),
                )
            })?
            .trim();
        match key {
            "groups" | "g" => {
                groups = value.parse().map_err(|_| {
                    AggregationError::config(
                        "registry",
                        "parameter `groups` of rule `hierarchical` must be a non-negative integer",
                    )
                })?;
            }
            "inner" => inner = value.parse()?,
            "outer" => outer = value.parse()?,
            other => {
                return Err(AggregationError::config(
                    "registry",
                    format!("unknown parameter `{other}` for rule `hierarchical`"),
                ));
            }
        }
    }
    Ok(RuleSpec::Hierarchical {
        groups,
        inner,
        outer,
    })
}

/// Parses the parameter list of the stateful rules, whose values are real
/// numbers: `reputation-weighted:eta=0.2`, `centered-clip:tau=10,beta=0.9`.
/// Range validation stays in the rule constructors ([`RuleSpec::build`]);
/// this only checks shape and key names.
fn parse_stateful(name: &str, raw: &str) -> Result<RuleSpec, AggregationError> {
    let mut eta = DEFAULT_ETA;
    let mut tau = DEFAULT_TAU;
    let mut beta = DEFAULT_BETA;
    let allowed: &[&str] = if name == "reputation-weighted" {
        &["eta"]
    } else {
        &["tau", "beta"]
    };
    for piece in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let mut kv = piece.splitn(2, '=');
        let key = kv.next().unwrap_or_default().trim();
        let value = kv
            .next()
            .ok_or_else(|| {
                AggregationError::config(
                    "registry",
                    format!("parameter `{piece}` for rule `{name}` is not of the form key=value"),
                )
            })?
            .trim();
        if !allowed.contains(&key) {
            return Err(AggregationError::config(
                "registry",
                format!("unknown parameter `{key}` for rule `{name}`"),
            ));
        }
        let value: f64 = value.parse().map_err(|_| {
            AggregationError::config(
                "registry",
                format!("parameter `{key}` of rule `{name}` must be a real number"),
            )
        })?;
        match key {
            "eta" => eta = value,
            "tau" => tau = value,
            _ => beta = value,
        }
    }
    Ok(if name == "reputation-weighted" {
        RuleSpec::ReputationWeighted { eta }
    } else {
        RuleSpec::CenteredClip { tau, beta }
    })
}

/// Parses `key=value,key=value` parameter lists with `usize` values.
fn parse_params(raw: &str, rule: &str) -> Result<Vec<(String, usize)>, AggregationError> {
    let mut out = Vec::new();
    for piece in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let mut kv = piece.splitn(2, '=');
        let key = kv.next().unwrap_or_default().trim();
        let value = kv.next().ok_or_else(|| {
            AggregationError::config(
                "registry",
                format!("parameter `{piece}` for rule `{rule}` is not of the form key=value"),
            )
        })?;
        let value: usize = value.trim().parse().map_err(|_| {
            AggregationError::config(
                "registry",
                format!("parameter `{key}` of rule `{rule}` must be a non-negative integer"),
            )
        })?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_tensor::Vector;

    #[test]
    fn builds_every_canonical_rule() {
        for &name in RULE_NAMES {
            // Bare hierarchical defaults to 4 Krum-in-Krum groups, which
            // needs a larger cluster than the (9, 2) the flat rules use.
            let (n, f) = if name == "hierarchical" {
                (24, 3)
            } else {
                (9, 2)
            };
            let rule = build_aggregator(name, n, f)
                .unwrap_or_else(|e| panic!("rule {name} failed to build: {e}"));
            let proposals = vec![Vector::zeros(3); n];
            assert_eq!(rule.aggregate(&proposals).unwrap().dim(), 3, "rule {name}");
        }
    }

    #[test]
    fn parameterised_specifications() {
        let rule = build_aggregator("multi-krum:m=3", 9, 2).unwrap();
        assert_eq!(rule.name(), "multi-krum(n=9,f=2,m=3)");
        let rule = build_aggregator("trimmed-mean:trim=1", 9, 2).unwrap();
        assert_eq!(rule.name(), "trimmed-mean(trim=1)");
        // Defaults: multi-krum uses m = n − f, trimmed-mean uses trim = f.
        let rule = build_aggregator("multi-krum", 9, 2).unwrap();
        assert_eq!(rule.name(), "multi-krum(n=9,f=2,m=7)");
        let rule = build_aggregator("trimmed-mean", 9, 2).unwrap();
        assert_eq!(rule.name(), "trimmed-mean(trim=2)");
    }

    #[test]
    fn rejects_unknown_rules_parameters_and_bad_values() {
        assert!(build_aggregator("zeno", 9, 2).is_err());
        assert!(build_aggregator("krum:m=3", 9, 2).is_err());
        assert!(build_aggregator("multi-krum:k=3", 9, 2).is_err());
        assert!(build_aggregator("multi-krum:m", 9, 2).is_err());
        assert!(build_aggregator("multi-krum:m=abc", 9, 2).is_err());
        // Invalid (n, f) for Krum propagates the underlying error.
        assert!(build_aggregator("krum", 6, 2).is_err());
        // Infeasible trim is rejected at build time, not mid-run.
        assert!(build_aggregator("trimmed-mean:trim=5", 9, 2).is_err());
        assert!(
            build_aggregator("trimmed-mean", 8, 4).is_err(),
            "default trim = f"
        );
        // Subset rule enforces its practical cap.
        assert!(build_aggregator("min-diameter-subset", 64, 2).is_err());
    }

    #[test]
    fn whitespace_and_aliases_are_tolerated() {
        assert!(build_aggregator("multi-krum: m = 3 ", 9, 2).is_ok());
        assert!(build_aggregator("coordinate-median", 9, 2).is_ok());
        assert!(build_aggregator("uniform-weighted-average", 9, 2).is_ok());
    }

    #[test]
    fn typed_specs_display_their_canonical_form() {
        assert_eq!(RuleSpec::Krum.to_string(), "krum");
        assert_eq!(RuleSpec::MultiKrum { m: None }.to_string(), "multi-krum");
        assert_eq!(
            RuleSpec::MultiKrum { m: Some(4) }.to_string(),
            "multi-krum:m=4"
        );
        assert_eq!(
            RuleSpec::TrimmedMean { trim: Some(2) }.to_string(),
            "trimmed-mean:trim=2"
        );
        assert_eq!(
            RuleSpec::UniformWeightedAverage.to_string(),
            "uniform-weighted-average"
        );
    }

    #[test]
    fn typed_specs_round_trip_through_strings_and_serde() {
        let specs = [
            RuleSpec::Average,
            RuleSpec::UniformWeightedAverage,
            RuleSpec::Krum,
            RuleSpec::MultiKrum { m: None },
            RuleSpec::MultiKrum { m: Some(3) },
            RuleSpec::Median,
            RuleSpec::TrimmedMean { trim: None },
            RuleSpec::TrimmedMean { trim: Some(1) },
            RuleSpec::GeometricMedian,
            RuleSpec::ClosestToBarycenter,
            RuleSpec::MinDiameterSubset,
            RuleSpec::Hierarchical {
                groups: 4,
                inner: StageRule::Krum,
                outer: StageRule::Krum,
            },
            RuleSpec::Hierarchical {
                groups: 16,
                inner: StageRule::MultiKrum { m: Some(4) },
                outer: StageRule::Median,
            },
            RuleSpec::Hierarchical {
                groups: 8,
                inner: StageRule::Median,
                outer: StageRule::TrimmedMean { trim: Some(1) },
            },
            RuleSpec::ReputationWeighted { eta: 0.2 },
            RuleSpec::ReputationWeighted { eta: 0.35 },
            RuleSpec::CenteredClip {
                tau: 10.0,
                beta: 0.9,
            },
            RuleSpec::CenteredClip {
                tau: 2.5,
                beta: 0.0,
            },
        ];
        for spec in specs {
            let parsed: RuleSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec, "Display → FromStr must round-trip");
            let json = serde_json::to_string(&spec).unwrap();
            let back: RuleSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "serde must round-trip");
        }
    }

    #[test]
    fn hierarchical_spec_parsing() {
        // Bare form defaults to 4 Krum-in-Krum groups.
        assert_eq!(
            "hierarchical".parse::<RuleSpec>().unwrap(),
            RuleSpec::Hierarchical {
                groups: 4,
                inner: StageRule::Krum,
                outer: StageRule::Krum,
            }
        );
        // Display round-trips and only prints non-default stages.
        let spec = RuleSpec::Hierarchical {
            groups: 16,
            inner: StageRule::Krum,
            outer: StageRule::MultiKrum { m: Some(4) },
        };
        assert_eq!(
            spec.to_string(),
            "hierarchical:groups=16,outer=multi-krum:m=4"
        );
        // `g` is accepted as shorthand for `groups`.
        assert_eq!(
            "hierarchical:g=8,inner=median".parse::<RuleSpec>().unwrap(),
            RuleSpec::Hierarchical {
                groups: 8,
                inner: StageRule::Median,
                outer: StageRule::Krum,
            }
        );
        // Rejections: nesting, unknown keys, malformed pieces.
        assert!("hierarchical:inner=hierarchical"
            .parse::<RuleSpec>()
            .is_err());
        assert!("hierarchical:depth=2".parse::<RuleSpec>().is_err());
        assert!("hierarchical:groups".parse::<RuleSpec>().is_err());
        assert!("hierarchical:groups=two".parse::<RuleSpec>().is_err());
        assert!("hierarchical:inner=zeno".parse::<RuleSpec>().is_err());
        // Build feasibility flows through from the stage rules.
        assert!(build_aggregator("hierarchical:groups=4", 24, 3).is_ok());
        assert!(build_aggregator("hierarchical:groups=4", 9, 2).is_err());
        assert!(build_aggregator("hierarchical:groups=2,inner=median,outer=median", 9, 2).is_ok());
    }

    #[test]
    fn stateful_specs_parse_build_and_flag() {
        // Bare forms pick the documented defaults.
        assert_eq!(
            "reputation-weighted".parse::<RuleSpec>().unwrap(),
            RuleSpec::ReputationWeighted { eta: 0.2 }
        );
        assert_eq!(
            "centered-clip".parse::<RuleSpec>().unwrap(),
            RuleSpec::CenteredClip {
                tau: 10.0,
                beta: 0.9
            }
        );
        // Real-valued parameters parse and render back.
        let spec: RuleSpec = "centered-clip:tau=1.5,beta=0.25".parse().unwrap();
        assert_eq!(spec.to_string(), "centered-clip:tau=1.5,beta=0.25");
        assert!(build_aggregator("reputation-weighted:eta=0.5", 9, 2).is_ok());
        // Shape errors are caught at parse time, range errors at build time.
        assert!("reputation-weighted:rho=1".parse::<RuleSpec>().is_err());
        assert!("reputation-weighted:eta".parse::<RuleSpec>().is_err());
        assert!("centered-clip:tau=big".parse::<RuleSpec>().is_err());
        assert!(build_aggregator("reputation-weighted:eta=0", 9, 2).is_err());
        assert!(build_aggregator("centered-clip:tau=-1", 9, 2).is_err());
        assert!(build_aggregator("centered-clip:beta=1", 9, 2).is_err());
        // The statefulness flag drives engine feedback and checkpoint
        // handling.
        assert!(RuleSpec::ReputationWeighted { eta: 0.2 }.stateful());
        assert!(RuleSpec::CenteredClip {
            tau: 1.0,
            beta: 0.5
        }
        .stateful());
        assert!(!RuleSpec::Krum.stateful());
        let hier = RuleSpec::Hierarchical {
            groups: 2,
            inner: StageRule::ReputationWeighted { eta: 0.2 },
            outer: StageRule::Median,
        };
        assert!(hier.stateful());
        assert!(hier.hierarchical_stateful());
        assert!(!RuleSpec::ReputationWeighted { eta: 0.2 }.hierarchical_stateful());
        assert!(!RuleSpec::Hierarchical {
            groups: 2,
            inner: StageRule::Median,
            outer: StageRule::Median,
        }
        .hierarchical_stateful());
    }

    #[test]
    fn typed_build_matches_string_registry() {
        let typed = RuleSpec::MultiKrum { m: Some(3) }.build(9, 2).unwrap();
        let stringly = build_aggregator("multi-krum:m=3", 9, 2).unwrap();
        assert_eq!(typed.name(), stringly.name());
        assert_eq!(RuleSpec::Krum.name(), "krum");
        assert!(RuleSpec::Krum.build(6, 2).is_err());
    }

    #[test]
    fn all_covers_every_canonical_name() {
        let all = RuleSpec::all();
        assert_eq!(all.len(), RULE_NAMES.len());
        for (spec, &name) in all.iter().zip(RULE_NAMES) {
            assert_eq!(spec.name(), name);
            assert!(spec.build(9, 2).is_ok(), "{name} must build at (9, 2)");
        }
    }
}
