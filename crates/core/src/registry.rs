//! Constructing aggregation rules from textual specifications.
//!
//! Experiment drivers, configuration files and command lines refer to rules by
//! name (`"krum"`, `"multi-krum:m=8"`, `"trimmed-mean:trim=2"`). This module
//! turns such a specification plus the cluster shape `(n, f)` into a boxed
//! [`Aggregator`], so sweeps over rules can be driven by plain strings.

use crate::aggregator::Aggregator;
use crate::average::{Average, WeightedAverage};
use crate::distance::{ClosestToBarycenter, GeometricMedian};
use crate::error::AggregationError;
use crate::krum::{Krum, MultiKrum};
use crate::median::{CoordinateWiseMedian, TrimmedMean};
use crate::subset::MinimumDiameterSubset;

/// Names of every rule the registry can build (canonical spellings).
pub const RULE_NAMES: &[&str] = &[
    "average",
    "krum",
    "multi-krum",
    "median",
    "trimmed-mean",
    "geometric-median",
    "closest-to-barycenter",
    "min-diameter-subset",
];

/// Builds an aggregation rule from a specification string.
///
/// The specification is a rule name optionally followed by `:key=value`
/// parameters:
///
/// * `"average"`
/// * `"krum"` — uses the supplied `(n, f)`
/// * `"multi-krum"` (defaults to `m = n − f`) or `"multi-krum:m=4"`
/// * `"median"`
/// * `"trimmed-mean"` (defaults to `trim = f`) or `"trimmed-mean:trim=3"`
/// * `"geometric-median"`
/// * `"closest-to-barycenter"`
/// * `"min-diameter-subset"`
///
/// # Errors
///
/// Returns [`AggregationError::InvalidConfig`] for unknown rule names, unknown
/// or malformed parameters, or parameters that are invalid for the given
/// `(n, f)` (e.g. Krum with `2f + 2 ≥ n`).
///
/// # Examples
///
/// ```
/// use krum_core::{build_aggregator, Aggregator};
/// use krum_tensor::Vector;
///
/// let rule = build_aggregator("multi-krum:m=3", 9, 2)?;
/// assert_eq!(rule.name(), "multi-krum(n=9,f=2,m=3)");
/// let proposals = vec![Vector::zeros(4); 9];
/// assert_eq!(rule.aggregate(&proposals)?.dim(), 4);
/// # Ok::<(), krum_core::AggregationError>(())
/// ```
pub fn build_aggregator(
    spec: &str,
    n: usize,
    f: usize,
) -> Result<Box<dyn Aggregator>, AggregationError> {
    let mut parts = spec.splitn(2, ':');
    let name = parts.next().unwrap_or_default().trim();
    let params = parse_params(parts.next().unwrap_or(""), name)?;
    let get =
        |key: &str| -> Option<usize> { params.iter().find(|(k, _)| k == key).map(|(_, v)| *v) };
    let reject_unknown = |allowed: &[&str]| -> Result<(), AggregationError> {
        if let Some((key, _)) = params.iter().find(|(k, _)| !allowed.contains(&k.as_str())) {
            return Err(AggregationError::config(
                "registry",
                format!("unknown parameter `{key}` for rule `{name}`"),
            ));
        }
        Ok(())
    };
    match name {
        "average" => {
            reject_unknown(&[])?;
            Ok(Box::new(Average::new()))
        }
        "uniform-weighted-average" => {
            reject_unknown(&[])?;
            Ok(Box::new(WeightedAverage::uniform(n)?))
        }
        "krum" => {
            reject_unknown(&[])?;
            Ok(Box::new(Krum::new(n, f)?))
        }
        "multi-krum" => {
            reject_unknown(&["m"])?;
            let m = get("m").unwrap_or_else(|| n.saturating_sub(f).max(1));
            Ok(Box::new(MultiKrum::new(n, f, m)?))
        }
        "median" | "coordinate-median" => {
            reject_unknown(&[])?;
            Ok(Box::new(CoordinateWiseMedian::new()))
        }
        "trimmed-mean" => {
            reject_unknown(&["trim"])?;
            Ok(Box::new(TrimmedMean::new(get("trim").unwrap_or(f))))
        }
        "geometric-median" => {
            reject_unknown(&[])?;
            Ok(Box::new(GeometricMedian::new()))
        }
        "closest-to-barycenter" => {
            reject_unknown(&[])?;
            Ok(Box::new(ClosestToBarycenter::new()))
        }
        "min-diameter-subset" => {
            reject_unknown(&[])?;
            Ok(Box::new(MinimumDiameterSubset::new(n, f)?))
        }
        other => Err(AggregationError::config(
            "registry",
            format!(
                "unknown aggregation rule `{other}`; known rules: {}",
                RULE_NAMES.join(", ")
            ),
        )),
    }
}

/// Parses `key=value,key=value` parameter lists with `usize` values.
fn parse_params(raw: &str, rule: &str) -> Result<Vec<(String, usize)>, AggregationError> {
    let mut out = Vec::new();
    for piece in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let mut kv = piece.splitn(2, '=');
        let key = kv.next().unwrap_or_default().trim();
        let value = kv.next().ok_or_else(|| {
            AggregationError::config(
                "registry",
                format!("parameter `{piece}` for rule `{rule}` is not of the form key=value"),
            )
        })?;
        let value: usize = value.trim().parse().map_err(|_| {
            AggregationError::config(
                "registry",
                format!("parameter `{key}` of rule `{rule}` must be a non-negative integer"),
            )
        })?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_tensor::Vector;

    #[test]
    fn builds_every_canonical_rule() {
        for &name in RULE_NAMES {
            let rule = build_aggregator(name, 9, 2)
                .unwrap_or_else(|e| panic!("rule {name} failed to build: {e}"));
            let proposals = vec![Vector::zeros(3); 9];
            assert_eq!(rule.aggregate(&proposals).unwrap().dim(), 3, "rule {name}");
        }
    }

    #[test]
    fn parameterised_specifications() {
        let rule = build_aggregator("multi-krum:m=3", 9, 2).unwrap();
        assert_eq!(rule.name(), "multi-krum(n=9,f=2,m=3)");
        let rule = build_aggregator("trimmed-mean:trim=1", 9, 2).unwrap();
        assert_eq!(rule.name(), "trimmed-mean(trim=1)");
        // Defaults: multi-krum uses m = n − f, trimmed-mean uses trim = f.
        let rule = build_aggregator("multi-krum", 9, 2).unwrap();
        assert_eq!(rule.name(), "multi-krum(n=9,f=2,m=7)");
        let rule = build_aggregator("trimmed-mean", 9, 2).unwrap();
        assert_eq!(rule.name(), "trimmed-mean(trim=2)");
    }

    #[test]
    fn rejects_unknown_rules_parameters_and_bad_values() {
        assert!(build_aggregator("zeno", 9, 2).is_err());
        assert!(build_aggregator("krum:m=3", 9, 2).is_err());
        assert!(build_aggregator("multi-krum:k=3", 9, 2).is_err());
        assert!(build_aggregator("multi-krum:m", 9, 2).is_err());
        assert!(build_aggregator("multi-krum:m=abc", 9, 2).is_err());
        // Invalid (n, f) for Krum propagates the underlying error.
        assert!(build_aggregator("krum", 6, 2).is_err());
        // Subset rule enforces its practical cap.
        assert!(build_aggregator("min-diameter-subset", 64, 2).is_err());
    }

    #[test]
    fn whitespace_and_aliases_are_tolerated() {
        assert!(build_aggregator("multi-krum: m = 3 ", 9, 2).is_ok());
        assert!(build_aggregator("coordinate-median", 9, 2).is_ok());
        assert!(build_aggregator("uniform-weighted-average", 9, 2).is_ok());
    }
}
