//! The pairwise-distance kernel behind Krum's `O(n²·d)` hot path.
//!
//! Lemma 4.1 prices one Krum aggregation at `O(n²·d)`: every proposal pair
//! needs a squared Euclidean distance. The kernel here makes that cost as
//! small as the hardware allows:
//!
//! * **Cached-norm (Gram) formulation** — `‖Vi − Vj‖² = ‖Vi‖² + ‖Vj‖² −
//!   2⟨Vi, Vj⟩`, clamped at zero. Norms are computed once (`O(n·d)`), and
//!   each pair costs one dot product instead of a subtract-square-sum pass.
//! * **ILP-friendly dot product** — 32 independent accumulators break the
//!   floating-point add dependency chain, letting the CPU pipeline (and
//!   auto-vectorize) the reduction across several SIMD FMA chains. This is the difference between
//!   latency-bound and throughput-bound and is worth several × on its own.
//! * **Upper triangle only, in parallel** — distances are symmetric; rows of
//!   the strict upper triangle fan out over the `rayon` pool (round-robin
//!   striping balances the linearly shrinking row lengths). On single-core
//!   machines this degrades to a clean serial loop.
//! * **Partial selection for scores** — per row, the `n − f − 2` smallest
//!   distances are found with `select_nth_unstable_by` (`O(n)`) instead of a
//!   full sort (`O(n log n)`), using one reusable scratch row.
//!
//! The pre-optimization implementation is kept under
//! [`naive`] — compiled for tests and for the `naive` feature — as the
//! equivalence oracle the property tests and the `krum_scaling` benchmark
//! compare against.
//!
//! NaN semantics match the naive path: a proposal with non-finite
//! coordinates has NaN distances, a NaN Krum score, and loses every
//! selection (see [`argmin`]). The zero-clamp uses a comparison (`d < 0.0`)
//! rather than `f64::max` precisely so NaN is preserved.

use krum_tensor::Vector;
use rayon::prelude::*;

/// Dot product with 32 independent accumulators. The width is deliberate:
/// on AVX-512 hardware LLVM folds each group of vector-width lanes into one
/// SIMD accumulator, so 32 lanes form four independent FMA chains — enough
/// to hide the 4-cycle FMA latency instead of serialising on it. On
/// narrower ISAs (AVX2/SSE2) the same code yields more, shorter chains and
/// still saturates the FP units.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    const LANES: usize = 32;
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        for lane in 0..LANES {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    // Pairwise tree reduction keeps the combine itself parallelizable.
    let mut width = LANES / 2;
    while width > 0 {
        for lane in 0..width {
            acc[lane] += acc[lane + width];
        }
        width /= 2;
    }
    let mut sum = acc[0];
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        sum += x * y;
    }
    sum
}

/// Full symmetric matrix of pairwise squared distances, flattened row-major,
/// computed with the cached-norm Gram formulation over the upper triangle.
pub(crate) fn pairwise_squared_distances(proposals: &[Vector]) -> Vec<f64> {
    let n = proposals.len();
    let norms: Vec<f64> = proposals
        .iter()
        .map(|v| dot(v.as_slice(), v.as_slice()))
        .collect();
    // Strict-upper-triangle rows, computed independently (and in parallel
    // when worthwhile: the row loop is the O(n²·d) part).
    let rows: Vec<Vec<f64>> = if n >= 8 && rayon::current_num_threads() > 1 {
        (0..n.saturating_sub(1))
            .into_par_iter()
            .map(|i| upper_row(proposals, &norms, i))
            .collect()
    } else {
        (0..n.saturating_sub(1))
            .map(|i| upper_row(proposals, &norms, i))
            .collect()
    };
    let mut out = vec![0.0; n * n];
    for (i, row) in rows.iter().enumerate() {
        for (k, &d) in row.iter().enumerate() {
            let j = i + 1 + k;
            out[i * n + j] = d;
            out[j * n + i] = d;
        }
    }
    out
}

/// Distances from proposal `i` to every proposal `j > i`.
#[inline]
fn upper_row(proposals: &[Vector], norms: &[f64], i: usize) -> Vec<f64> {
    let vi = proposals[i].as_slice();
    let ni = norms[i];
    ((i + 1)..proposals.len())
        .map(|j| {
            let d = ni + norms[j] - 2.0 * dot(vi, proposals[j].as_slice());
            // Clamp the cancellation error below zero, but let NaN through
            // (a `max(0.0)` would silently turn NaN into 0 and hand the
            // aggregation to a poisoned worker).
            if d < 0.0 {
                0.0
            } else {
                d
            }
        })
        .collect()
}

/// Krum scores from a flattened `n × n` distance matrix: for each `i`, the
/// sum of the `neighbours` smallest squared distances to other proposals.
/// Uses partial selection (`O(n)` per row) with one reusable scratch row.
pub(crate) fn scores_from_distances(distances: &[f64], n: usize, neighbours: usize) -> Vec<f64> {
    assert_eq!(n * n, distances.len(), "distance matrix must be n × n");
    assert!(
        neighbours <= n.saturating_sub(1),
        "cannot take {neighbours} neighbours out of {n} proposals"
    );
    let mut scores = Vec::with_capacity(n);
    let mut row = vec![0.0f64; n.saturating_sub(1)];
    for i in 0..n {
        let base = i * n;
        row[..i].copy_from_slice(&distances[base..base + i]);
        row[i..].copy_from_slice(&distances[base + i + 1..base + n]);
        scores.push(sum_of_smallest(&mut row, neighbours));
    }
    scores
}

/// Sum of the `k` smallest values of `values` (which is reordered).
#[inline]
fn sum_of_smallest(values: &mut [f64], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    if k < values.len() {
        let (smallest, kth, _) = values.select_nth_unstable_by(k - 1, f64::total_cmp);
        smallest.iter().sum::<f64>() + *kth
    } else {
        values.iter().sum()
    }
}

/// Row sums of the distance matrix: `Σ_j ‖Vi − Vj‖²` per proposal — the
/// closest-to-barycenter criterion, sharing the cached-norm kernel.
pub(crate) fn row_sums(distances: &[f64], n: usize) -> Vec<f64> {
    assert_eq!(n * n, distances.len(), "distance matrix must be n × n");
    distances
        .chunks_exact(n.max(1))
        .map(|row| row.iter().sum())
        .collect()
}

/// Index of the smallest score; ties break towards the smallest index and
/// NaN scores never win (a NaN-poisoned proposal must not be selected). When
/// every score is NaN, index 0 is returned.
pub(crate) fn argmin(scores: &[f64]) -> usize {
    let mut best: Option<usize> = None;
    for (i, &s) in scores.iter().enumerate() {
        if s.is_nan() {
            continue;
        }
        match best {
            Some(b) if scores[b] <= s => {}
            _ => best = Some(i),
        }
    }
    best.unwrap_or(0)
}

/// The `m` best-scored indices, ordered by `(score, index)` — Krum's
/// tie-breaking rule extended to a set. Uses partial selection, so the cost
/// is `O(n + m log m)` rather than `O(n log n)`.
pub(crate) fn smallest_indices(scores: &[f64], m: usize) -> Vec<usize> {
    let n = scores.len();
    debug_assert!(m >= 1 && m <= n);
    let mut order: Vec<usize> = (0..n).collect();
    let compare = |a: &usize, b: &usize| scores[*a].total_cmp(&scores[*b]).then(a.cmp(b));
    if m < n {
        order.select_nth_unstable_by(m - 1, compare);
        order.truncate(m);
    }
    order.sort_unstable_by(compare);
    order
}

/// The pre-optimization reference path: per-pair scalar distances and
/// sort-based neighbour selection. Kept as the equivalence oracle for the
/// property tests and the `krum_scaling` before/after benchmark (enable the
/// `naive` feature to use it from outside the crate).
#[cfg(any(test, feature = "naive"))]
pub mod naive {
    use krum_tensor::Vector;

    /// Full symmetric pairwise distance matrix via `Vector::squared_distance`.
    pub fn pairwise_squared_distances(proposals: &[Vector]) -> Vec<f64> {
        let n = proposals.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = proposals[i].squared_distance(&proposals[j]);
                d[i * n + j] = dist;
                d[j * n + i] = dist;
            }
        }
        d
    }

    /// Krum scores via a full sort of each row.
    pub fn krum_scores(proposals: &[Vector], neighbours: usize) -> Vec<f64> {
        let distances = pairwise_squared_distances(proposals);
        let n = proposals.len();
        let mut scores = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| distances[i * n + j])
                .collect();
            row.sort_by(f64::total_cmp);
            scores.push(row.iter().take(neighbours).sum());
        }
        scores
    }

    /// The full naive Krum choice: naive distances, sorted rows, linear
    /// argmin — the exact pre-optimization algorithm, for benchmarking.
    pub fn krum_choose(proposals: &[Vector], f: usize) -> usize {
        let n = proposals.len();
        let scores = krum_scores(proposals, n - f - 2);
        super::argmin(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_proposals(n: usize, dim: usize, spread: f64, seed: u64) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::gaussian(dim, 1.0, spread, &mut rng))
            .collect()
    }

    #[test]
    fn dot_matches_reference_for_all_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 1001] {
            let a = Vector::gaussian(len, 0.0, 1.0, &mut rng);
            let b = Vector::gaussian(len, 0.0, 1.0, &mut rng);
            let reference: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            let fast = dot(a.as_slice(), b.as_slice());
            assert!(
                (fast - reference).abs() <= 1e-12 * reference.abs().max(1.0),
                "len {len}: {fast} vs {reference}"
            );
        }
    }

    /// Satellite property test: the Gram kernel matches the naive per-pair
    /// path within 1e-9 relative tolerance over seeded random proposal sets.
    #[test]
    fn gram_distances_match_naive_within_tolerance() {
        for seed in 0..30 {
            let n = 5 + (seed as usize % 11);
            let dim = 1 + (seed as usize * 7) % 300;
            let spread = [0.01, 0.5, 10.0][seed as usize % 3];
            let proposals = random_proposals(n, dim, spread, seed);
            let fast = pairwise_squared_distances(&proposals);
            let slow = naive::pairwise_squared_distances(&proposals);
            for (k, (f, s)) in fast.iter().zip(&slow).enumerate() {
                let tolerance = 1e-9 * s.abs().max(1e-9);
                assert!(
                    (f - s).abs() <= tolerance,
                    "seed {seed}, entry {k}: gram {f} vs naive {s}"
                );
            }
        }
    }

    #[test]
    fn gram_distance_of_identical_vectors_is_exactly_zero_or_clamped() {
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        let proposals = vec![v.clone(), v.clone(), v];
        let d = pairwise_squared_distances(&proposals);
        assert!(
            d.iter().all(|&x| x >= 0.0),
            "distances must be clamped at 0"
        );
        assert!(d.iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn nan_proposals_keep_nan_distances() {
        let proposals = vec![
            Vector::from(vec![f64::NAN, 1.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![2.0, 2.0]),
        ];
        let d = pairwise_squared_distances(&proposals);
        assert!(d[1].is_nan(), "distance to the NaN proposal must stay NaN");
        assert!(d[3].is_nan());
        assert!(!d[5].is_nan());
    }

    #[test]
    fn partial_selection_scores_match_sorted_scores() {
        for seed in 0..20 {
            let n = 6 + (seed as usize % 9);
            let proposals = random_proposals(n, 17, 1.0, 1000 + seed);
            let distances = pairwise_squared_distances(&proposals);
            for neighbours in 1..n - 1 {
                let fast = scores_from_distances(&distances, n, neighbours);
                let slow: Vec<f64> = (0..n)
                    .map(|i| {
                        let mut row: Vec<f64> = (0..n)
                            .filter(|&j| j != i)
                            .map(|j| distances[i * n + j])
                            .collect();
                        row.sort_by(f64::total_cmp);
                        row.iter().take(neighbours).sum()
                    })
                    .collect();
                for (f, s) in fast.iter().zip(&slow) {
                    assert!(
                        (f - s).abs() <= 1e-9 * s.abs().max(1e-9),
                        "seed {seed}, k={neighbours}: {f} vs {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn argmin_skips_nan_and_breaks_ties_low() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), 1);
        assert_eq!(argmin(&[f64::NAN, 2.0, 1.0]), 2);
        assert_eq!(argmin(&[f64::NAN, f64::NAN]), 0);
        assert_eq!(argmin(&[f64::NAN, 5.0, f64::NAN, 5.0]), 1);
        assert_eq!(argmin(&[]), 0);
    }

    #[test]
    fn smallest_indices_orders_by_score_then_index() {
        let scores = [2.0, 1.0, 2.0, 0.5, f64::NAN];
        assert_eq!(smallest_indices(&scores, 1), vec![3]);
        assert_eq!(smallest_indices(&scores, 3), vec![3, 1, 0]);
        // NaN is always last.
        assert_eq!(smallest_indices(&scores, 5), vec![3, 1, 0, 2, 4]);
    }

    #[test]
    fn row_sums_match_manual() {
        let d = vec![0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 2.0, 3.0, 0.0];
        assert_eq!(row_sums(&d, 3), vec![3.0, 4.0, 5.0]);
    }
}
