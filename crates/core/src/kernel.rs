//! The pairwise-distance kernel behind Krum's `O(n²·d)` hot path.
//!
//! Lemma 4.1 prices one Krum aggregation at `O(n²·d)`: every proposal pair
//! needs a squared Euclidean distance. The kernel here makes that cost as
//! small as the hardware allows:
//!
//! * **Cached-norm (Gram) formulation** — `‖Vi − Vj‖² = ‖Vi‖² + ‖Vj‖² −
//!   2⟨Vi, Vj⟩`, clamped at zero. Norms are computed once (`O(n·d)`), and
//!   each pair costs one dot product instead of a subtract-square-sum pass.
//! * **ILP-friendly dot product** — 32 independent accumulators break the
//!   floating-point add dependency chain, letting the CPU pipeline (and
//!   auto-vectorize) the reduction across several SIMD FMA chains. This is the difference between
//!   latency-bound and throughput-bound and is worth several × on its own.
//! * **Upper triangle only, in parallel** — distances are symmetric; rows of
//!   the strict upper triangle fan out over the `rayon` pool (round-robin
//!   striping balances the linearly shrinking row lengths). On single-core
//!   machines this degrades to a clean serial loop.
//! * **Partial selection for scores** — per row, the `n − f − 2` smallest
//!   distances are found with `select_nth_unstable_by` (`O(n)`) instead of a
//!   full sort (`O(n log n)`), using one reusable scratch row.
//!
//! The pre-optimization implementation is kept under
//! [`naive`] — compiled for tests and for the `naive` feature — as the
//! equivalence oracle the property tests and the `krum_scaling` benchmark
//! compare against.
//!
//! NaN semantics match the naive path: a proposal with non-finite
//! coordinates has NaN distances, a NaN Krum score, and loses every
//! selection (see [`argmin`]). The zero-clamp uses a comparison (`d < 0.0`)
//! rather than `f64::max` precisely so NaN is preserved.

use krum_tensor::Vector;
use rayon::prelude::*;

/// Dot product with 32 independent accumulators. The width is deliberate:
/// on AVX-512 hardware LLVM folds each group of vector-width lanes into one
/// SIMD accumulator, so 32 lanes form four independent FMA chains — enough
/// to hide the 4-cycle FMA latency instead of serialising on it. On
/// narrower ISAs (AVX2/SSE2) the same code yields more, shorter chains and
/// still saturates the FP units.
///
/// Exposed as `krum_core::ilp_dot` so benchmarks can compare it against
/// explicit SIMD-style chunking on the build target. Panics in debug builds
/// when the slices differ in length (release builds read the shorter).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    const LANES: usize = 32;
    debug_assert_eq!(a.len(), b.len());
    let main = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        for lane in 0..LANES {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    // Pairwise tree reduction keeps the combine itself parallelizable.
    let mut width = LANES / 2;
    while width > 0 {
        for lane in 0..width {
            acc[lane] += acc[lane + width];
        }
        width /= 2;
    }
    let mut sum = acc[0];
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        sum += x * y;
    }
    sum
}

/// Full symmetric matrix of pairwise squared distances, flattened row-major,
/// computed with the cached-norm Gram formulation over the upper triangle.
/// Allocation-per-call wrapper around [`pairwise_squared_distances_into`].
pub(crate) fn pairwise_squared_distances(proposals: &[Vector]) -> Vec<f64> {
    let n = proposals.len();
    let parallel = crate::ExecutionPolicy::Auto.use_parallel(n);
    let mut norms = Vec::new();
    let mut out = Vec::new();
    pairwise_squared_distances_into(proposals, &mut norms, &mut out, parallel);
    out
}

/// Cached-norm pairwise distances written into a caller-owned workspace.
///
/// `norms` and `out` are resized to `n` and `n × n`; neither allocates once
/// its capacity has reached the proposal shape. The sequential path performs
/// zero heap allocations. The parallel path fans the strict-upper-triangle
/// rows out over disjoint mutable row slices of `out` (the vendored pool
/// schedules them round-robin, which balances the linearly shrinking rows),
/// then mirrors the triangle serially; the thread-pool bookkeeping itself
/// allocates, which is why the zero-allocation contract is tied to the
/// sequential policy.
pub(crate) fn pairwise_squared_distances_into(
    proposals: &[Vector],
    norms: &mut Vec<f64>,
    out: &mut Vec<f64>,
    parallel: bool,
) {
    let n = proposals.len();
    norms.clear();
    norms.extend(proposals.iter().map(|v| dot(v.as_slice(), v.as_slice())));
    out.clear();
    out.resize(n * n, 0.0);
    if parallel && n >= 2 {
        let norms_ref: &[f64] = norms;
        let rows: Vec<(usize, &mut [f64])> = out.chunks_mut(n).enumerate().collect();
        rows.into_par_iter().for_each(|(i, row)| {
            fill_upper_row(proposals, norms_ref, i, row);
        });
        // Mirror the strict upper triangle (cheap `O(n²)` serial pass).
        for i in 0..n {
            for j in (i + 1)..n {
                out[j * n + i] = out[i * n + j];
            }
        }
    } else {
        for i in 0..n {
            let ni = norms[i];
            let vi = proposals[i].as_slice();
            for j in (i + 1)..n {
                let d = clamp_distance(ni + norms[j] - 2.0 * dot(vi, proposals[j].as_slice()));
                out[i * n + j] = d;
                out[j * n + i] = d;
            }
        }
    }
}

/// Incremental cached-norm update: recomputes only the norms and distance
/// entries touched by changed proposals, leaving every other entry of the
/// previously computed matrix byte-for-byte untouched.
///
/// `norms` and `out` must hold a valid distance matrix for the *same*
/// proposal set except at the indices flagged in `changed` (the
/// generation-keyed cache in [`AggregationContext`] enforces this and falls
/// back to [`pairwise_squared_distances_into`] on any shape change).
///
/// Bit-identity with the full recomputation holds because `f64` addition and
/// multiplication are commutative at the bit level and [`dot`] accumulates
/// index-by-index, so `d(i, j)` evaluates to the same bits regardless of
/// which side triggered the recompute; unchanged pairs are simply not
/// rewritten. With `q` changed slots out of `n` the cost is
/// `q·n − q·(q+1)/2` dot products instead of `n·(n−1)/2` — the incremental
/// path is serial (the touched set is small by construction) and performs
/// zero heap allocations.
///
/// [`AggregationContext`]: crate::AggregationContext
pub(crate) fn pairwise_squared_distances_update(
    proposals: &[Vector],
    norms: &mut [f64],
    out: &mut [f64],
    changed: &[bool],
) {
    let n = proposals.len();
    debug_assert_eq!(norms.len(), n);
    debug_assert_eq!(out.len(), n * n);
    debug_assert_eq!(changed.len(), n);
    for i in 0..n {
        if changed[i] {
            let vi = proposals[i].as_slice();
            norms[i] = dot(vi, vi);
        }
    }
    for i in 0..n {
        let ni = norms[i];
        let vi = proposals[i].as_slice();
        let ci = changed[i];
        for j in (i + 1)..n {
            if ci || changed[j] {
                let d = clamp_distance(ni + norms[j] - 2.0 * dot(vi, proposals[j].as_slice()));
                out[i * n + j] = d;
                out[j * n + i] = d;
            }
        }
    }
}

/// Writes distances from proposal `i` to every proposal `j > i` into the
/// tail of `row` (the full `n`-wide row `i` of the distance matrix).
#[inline]
fn fill_upper_row(proposals: &[Vector], norms: &[f64], i: usize, row: &mut [f64]) {
    let vi = proposals[i].as_slice();
    let ni = norms[i];
    for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
        *slot = clamp_distance(ni + norms[j] - 2.0 * dot(vi, proposals[j].as_slice()));
    }
}

/// Clamps the cancellation error below zero, but lets NaN through (a
/// `max(0.0)` would silently turn NaN into 0 and hand the aggregation to a
/// poisoned worker).
#[inline]
fn clamp_distance(d: f64) -> f64 {
    if d < 0.0 {
        0.0
    } else {
        d
    }
}

/// Krum scores from a flattened `n × n` distance matrix. Allocation-per-call
/// wrapper around [`scores_from_distances_into`].
pub(crate) fn scores_from_distances(distances: &[f64], n: usize, neighbours: usize) -> Vec<f64> {
    let mut scratch = Vec::new();
    let mut scores = Vec::new();
    scores_from_distances_into(distances, n, neighbours, &mut scratch, &mut scores);
    scores
}

/// Krum scores from a flattened `n × n` distance matrix: for each `i`, the
/// sum of the `neighbours` smallest squared distances to other proposals.
/// Uses partial selection (`O(n)` per row) with the caller-owned scratch row;
/// allocation-free once `scratch`/`scores` have warmed up.
pub(crate) fn scores_from_distances_into(
    distances: &[f64],
    n: usize,
    neighbours: usize,
    scratch: &mut Vec<f64>,
    scores: &mut Vec<f64>,
) {
    assert_eq!(n * n, distances.len(), "distance matrix must be n × n");
    assert!(
        neighbours <= n.saturating_sub(1),
        "cannot take {neighbours} neighbours out of {n} proposals"
    );
    scores.clear();
    scratch.clear();
    scratch.resize(n.saturating_sub(1), 0.0);
    for i in 0..n {
        let base = i * n;
        scratch[..i].copy_from_slice(&distances[base..base + i]);
        scratch[i..].copy_from_slice(&distances[base + i + 1..base + n]);
        scores.push(sum_of_smallest(scratch, neighbours));
    }
}

/// Sum of the `k` smallest values of `values` (which is reordered).
#[inline]
fn sum_of_smallest(values: &mut [f64], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    if k < values.len() {
        let (smallest, kth, _) = values.select_nth_unstable_by(k - 1, f64::total_cmp);
        smallest.iter().sum::<f64>() + *kth
    } else {
        values.iter().sum()
    }
}

/// Row sums of the distance matrix: `Σ_j ‖Vi − Vj‖²` per proposal — the
/// closest-to-barycenter criterion, sharing the cached-norm kernel.
pub(crate) fn row_sums(distances: &[f64], n: usize) -> Vec<f64> {
    let mut out = Vec::new();
    row_sums_into(distances, n, &mut out);
    out
}

/// [`row_sums`] written into a caller-owned buffer (allocation-free once
/// warmed up).
pub(crate) fn row_sums_into(distances: &[f64], n: usize, out: &mut Vec<f64>) {
    assert_eq!(n * n, distances.len(), "distance matrix must be n × n");
    out.clear();
    out.extend(
        distances
            .chunks_exact(n.max(1))
            .map(|row| row.iter().sum::<f64>()),
    );
}

/// Index of the smallest score; ties break towards the smallest index and
/// NaN scores never win (a NaN-poisoned proposal must not be selected).
/// Returns `None` when every score is NaN (a fully poisoned round) — the
/// old `unwrap_or(0)` fallback silently handed the round to proposal 0,
/// which may itself be Byzantine, so callers must surface the degenerate
/// case as a structured error instead.
pub(crate) fn argmin(scores: &[f64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &s) in scores.iter().enumerate() {
        if s.is_nan() {
            continue;
        }
        match best {
            Some(b) if scores[b] <= s => {}
            _ => best = Some(i),
        }
    }
    best
}

/// The `m` best-scored indices, ordered by `(score, index)` — Krum's
/// tie-breaking rule extended to a set. Uses partial selection, so the cost
/// is `O(n + m log m)` rather than `O(n log n)`.
#[cfg(test)]
pub(crate) fn smallest_indices(scores: &[f64], m: usize) -> Vec<usize> {
    let mut order = Vec::new();
    smallest_indices_into(scores, m, &mut order);
    order
}

/// The `m` best-scored indices written into a caller-owned index buffer
/// (allocation-free once warmed up; truncation keeps the capacity).
pub(crate) fn smallest_indices_into(scores: &[f64], m: usize, order: &mut Vec<usize>) {
    let n = scores.len();
    debug_assert!(m >= 1 && m <= n);
    order.clear();
    order.extend(0..n);
    let compare = |a: &usize, b: &usize| scores[*a].total_cmp(&scores[*b]).then(a.cmp(b));
    if m < n {
        order.select_nth_unstable_by(m - 1, compare);
        order.truncate(m);
    }
    order.sort_unstable_by(compare);
}

/// The pre-optimization reference path: per-pair scalar distances and
/// sort-based neighbour selection. Kept as the equivalence oracle for the
/// property tests and the `krum_scaling` before/after benchmark (enable the
/// `naive` feature to use it from outside the crate).
#[cfg(any(test, feature = "naive"))]
pub mod naive {
    use krum_tensor::Vector;

    /// Full symmetric pairwise distance matrix via `Vector::squared_distance`.
    pub fn pairwise_squared_distances(proposals: &[Vector]) -> Vec<f64> {
        let n = proposals.len();
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let dist = proposals[i].squared_distance(&proposals[j]);
                d[i * n + j] = dist;
                d[j * n + i] = dist;
            }
        }
        d
    }

    /// Krum scores via a full sort of each row.
    pub fn krum_scores(proposals: &[Vector], neighbours: usize) -> Vec<f64> {
        let distances = pairwise_squared_distances(proposals);
        let n = proposals.len();
        let mut scores = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| distances[i * n + j])
                .collect();
            row.sort_by(f64::total_cmp);
            scores.push(row.iter().take(neighbours).sum());
        }
        scores
    }

    /// The full naive Krum choice: naive distances, sorted rows, linear
    /// argmin — the exact pre-optimization algorithm, for benchmarking.
    /// (The oracle runs on finite inputs; an all-NaN score vector falls back
    /// to 0 here because the optimized path errors out before comparing.)
    pub fn krum_choose(proposals: &[Vector], f: usize) -> usize {
        let n = proposals.len();
        let scores = krum_scores(proposals, n - f - 2);
        super::argmin(&scores).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_proposals(n: usize, dim: usize, spread: f64, seed: u64) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Vector::gaussian(dim, 1.0, spread, &mut rng))
            .collect()
    }

    #[test]
    fn dot_matches_reference_for_all_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 1001] {
            let a = Vector::gaussian(len, 0.0, 1.0, &mut rng);
            let b = Vector::gaussian(len, 0.0, 1.0, &mut rng);
            let reference: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            let fast = dot(a.as_slice(), b.as_slice());
            assert!(
                (fast - reference).abs() <= 1e-12 * reference.abs().max(1.0),
                "len {len}: {fast} vs {reference}"
            );
        }
    }

    /// Satellite property test: the Gram kernel matches the naive per-pair
    /// path within 1e-9 relative tolerance over seeded random proposal sets.
    #[test]
    fn gram_distances_match_naive_within_tolerance() {
        for seed in 0..30 {
            let n = 5 + (seed as usize % 11);
            let dim = 1 + (seed as usize * 7) % 300;
            let spread = [0.01, 0.5, 10.0][seed as usize % 3];
            let proposals = random_proposals(n, dim, spread, seed);
            let fast = pairwise_squared_distances(&proposals);
            let slow = naive::pairwise_squared_distances(&proposals);
            for (k, (f, s)) in fast.iter().zip(&slow).enumerate() {
                let tolerance = 1e-9 * s.abs().max(1e-9);
                assert!(
                    (f - s).abs() <= tolerance,
                    "seed {seed}, entry {k}: gram {f} vs naive {s}"
                );
            }
        }
    }

    /// Tentpole property test: recomputing only the changed rows yields the
    /// same bits as recomputing the whole matrix, for arbitrary change sets
    /// (including none and all).
    #[test]
    fn incremental_update_is_bit_identical_to_full_recompute() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for trial in 0..30usize {
            let n = 4 + trial % 10;
            let dim = 1 + (trial * 11) % 130;
            let mut proposals = random_proposals(n, dim, 1.0, 500 + trial as u64);
            let mut norms = Vec::new();
            let mut out = Vec::new();
            pairwise_squared_distances_into(&proposals, &mut norms, &mut out, false);
            // Replace a deterministic subset (varying density across trials,
            // including the empty and the full set).
            let changed: Vec<bool> = (0..n).map(|i| (i + trial) % (1 + trial % 4) == 0).collect();
            for (i, v) in proposals.iter_mut().enumerate() {
                if changed[i] {
                    *v = Vector::gaussian(dim, -0.5, 2.0, &mut rng);
                }
            }
            pairwise_squared_distances_update(&proposals, &mut norms, &mut out, &changed);
            let mut full_norms = Vec::new();
            let mut full_out = Vec::new();
            pairwise_squared_distances_into(&proposals, &mut full_norms, &mut full_out, false);
            assert!(
                norms
                    .iter()
                    .zip(&full_norms)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "trial {trial}: norms diverged"
            );
            assert!(
                out.iter()
                    .zip(&full_out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "trial {trial}: distances diverged"
            );
        }
    }

    #[test]
    fn gram_distance_of_identical_vectors_is_exactly_zero_or_clamped() {
        let v = Vector::from(vec![1.0, 2.0, 3.0]);
        let proposals = vec![v.clone(), v.clone(), v];
        let d = pairwise_squared_distances(&proposals);
        assert!(
            d.iter().all(|&x| x >= 0.0),
            "distances must be clamped at 0"
        );
        assert!(d.iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn nan_proposals_keep_nan_distances() {
        let proposals = vec![
            Vector::from(vec![f64::NAN, 1.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![2.0, 2.0]),
        ];
        let d = pairwise_squared_distances(&proposals);
        assert!(d[1].is_nan(), "distance to the NaN proposal must stay NaN");
        assert!(d[3].is_nan());
        assert!(!d[5].is_nan());
    }

    #[test]
    fn partial_selection_scores_match_sorted_scores() {
        for seed in 0..20 {
            let n = 6 + (seed as usize % 9);
            let proposals = random_proposals(n, 17, 1.0, 1000 + seed);
            let distances = pairwise_squared_distances(&proposals);
            for neighbours in 1..n - 1 {
                let fast = scores_from_distances(&distances, n, neighbours);
                let slow: Vec<f64> = (0..n)
                    .map(|i| {
                        let mut row: Vec<f64> = (0..n)
                            .filter(|&j| j != i)
                            .map(|j| distances[i * n + j])
                            .collect();
                        row.sort_by(f64::total_cmp);
                        row.iter().take(neighbours).sum()
                    })
                    .collect();
                for (f, s) in fast.iter().zip(&slow) {
                    assert!(
                        (f - s).abs() <= 1e-9 * s.abs().max(1e-9),
                        "seed {seed}, k={neighbours}: {f} vs {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn argmin_skips_nan_and_breaks_ties_low() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), Some(1));
        assert_eq!(argmin(&[f64::NAN, 2.0, 1.0]), Some(2));
        assert_eq!(argmin(&[f64::NAN, 5.0, f64::NAN, 5.0]), Some(1));
        // A fully poisoned score vector has no winner at all.
        assert_eq!(argmin(&[f64::NAN, f64::NAN]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn smallest_indices_orders_by_score_then_index() {
        let scores = [2.0, 1.0, 2.0, 0.5, f64::NAN];
        assert_eq!(smallest_indices(&scores, 1), vec![3]);
        assert_eq!(smallest_indices(&scores, 3), vec![3, 1, 0]);
        // NaN is always last.
        assert_eq!(smallest_indices(&scores, 5), vec![3, 1, 0, 2, 4]);
    }

    #[test]
    fn row_sums_match_manual() {
        let d = vec![0.0, 1.0, 2.0, 1.0, 0.0, 3.0, 2.0, 3.0, 0.0];
        assert_eq!(row_sums(&d, 3), vec![3.0, 4.0, 5.0]);
    }
}
