//! The [`Aggregator`] trait — the paper's *choice function* `F`.

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::context::AggregationContext;
use crate::error::AggregationError;

/// Result of one aggregation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregation {
    /// The aggregated vector `F(V_1, …, V_n)` that the server applies.
    pub value: Vector,
    /// For selection-style rules, the indices of the proposals that were
    /// selected (a single index for Krum, `m` indices for Multi-Krum, the
    /// chosen subset for the minimum-diameter rule). Empty for rules that mix
    /// every proposal (averaging, medians).
    pub selected: Vec<usize>,
    /// Per-proposal scores when the rule computes them (Krum scores, distances
    /// to the barycenter, …); empty otherwise. Lower is better for every rule
    /// that fills this in.
    pub scores: Vec<f64>,
}

impl Aggregation {
    /// Creates an aggregation result that mixes all proposals (no selection).
    pub fn mixed(value: Vector) -> Self {
        Self {
            value,
            selected: Vec::new(),
            scores: Vec::new(),
        }
    }

    /// Creates an aggregation result for a selection rule.
    pub fn selected(value: Vector, selected: Vec<usize>, scores: Vec<f64>) -> Self {
        Self {
            value,
            selected,
            scores,
        }
    }

    /// Resets `value` to a `dim`-dimensional zero vector in place (capacity
    /// preserved) and hands it back for accumulation — the one place that
    /// holds the "zero the reused output before accumulating" invariant for
    /// rules writing into a reused
    /// [`AggregationContext`](crate::AggregationContext).
    pub(crate) fn reset_value(&mut self, dim: usize) -> &mut Vector {
        self.value.resize(dim, 0.0);
        self.value.fill(0.0);
        &mut self.value
    }

    /// Overwrites the selection bookkeeping in place, reusing the existing
    /// buffer capacity — the one place that holds the "clear stale
    /// selected/scores before writing" invariant for every rule writing
    /// into a reused [`AggregationContext`](crate::AggregationContext).
    pub(crate) fn set_selection(&mut self, selected: &[usize], scores: &[f64]) {
        self.selected.clear();
        self.selected.extend_from_slice(selected);
        self.scores.clear();
        self.scores.extend_from_slice(scores);
    }

    /// The single selected index, when exactly one proposal was selected.
    pub fn selected_index(&self) -> Option<usize> {
        if self.selected.len() == 1 {
            Some(self.selected[0])
        } else {
            None
        }
    }
}

/// A deterministic choice function `F(V_1, …, V_n)` applied by the parameter
/// server to the proposals of one synchronous round.
///
/// Implementations must be deterministic functions of their input (the model
/// section of the paper requires `F` to be deterministic) and must not panic
/// on malformed input — all validation errors are reported through
/// [`AggregationError`].
pub trait Aggregator: Send + Sync {
    /// Aggregates the proposals, reporting selection details and scores.
    ///
    /// This is the allocation-per-call entry point; hot loops should prefer
    /// [`Aggregator::aggregate_in`] with a reused [`AggregationContext`].
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError`] when the proposals are empty, have
    /// mismatched dimensions, or do not match the rule's configuration.
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError>;

    /// Aggregates the proposals into the reusable workspace `ctx`; the result
    /// is left in [`AggregationContext::output`].
    ///
    /// Every rule in this crate overrides this with an implementation that
    /// performs **zero heap allocations** once the context has warmed up on
    /// the proposal shape (under the sequential execution policy). The
    /// default implementation bridges rules that only implement
    /// [`Aggregator::aggregate_detailed`] by delegating to it, so external
    /// implementors stay source-compatible.
    ///
    /// On error the context's previous output is left unspecified (it may
    /// hold the result of an earlier round); callers must not read
    /// [`AggregationContext::output`] after a failed call.
    ///
    /// # Errors
    ///
    /// Same as [`Aggregator::aggregate_detailed`].
    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let result = self.aggregate_detailed(proposals)?;
        ctx.set_output(result);
        Ok(())
    }

    /// Aggregates the proposals, returning only the aggregated vector.
    ///
    /// # Errors
    ///
    /// Same as [`Aggregator::aggregate_detailed`].
    fn aggregate(&self, proposals: &[Vector]) -> Result<Vector, AggregationError> {
        Ok(self.aggregate_detailed(proposals)?.value)
    }

    /// Human-readable rule name, including its parameters, e.g. `"krum(f=2)"`.
    fn name(&self) -> String;

    /// `true` when the rule outputs one of its input vectors (selection rule)
    /// rather than a mixture. Averaging-style rules return `false`.
    fn is_selection_rule(&self) -> bool {
        false
    }
}

impl<A: Aggregator + ?Sized> Aggregator for &A {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        (**self).aggregate_detailed(proposals)
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        (**self).aggregate_in(ctx, proposals)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn is_selection_rule(&self) -> bool {
        (**self).is_selection_rule()
    }
}

impl<A: Aggregator + ?Sized> Aggregator for Box<A> {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        (**self).aggregate_detailed(proposals)
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        (**self).aggregate_in(ctx, proposals)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn is_selection_rule(&self) -> bool {
        (**self).is_selection_rule()
    }
}

/// Validates a proposal family: non-empty and dimensionally consistent.
/// Returns the common dimension.
///
/// # Errors
///
/// Returns [`AggregationError::NoProposals`] or
/// [`AggregationError::DimensionMismatch`].
pub fn validate_proposals(proposals: &[Vector]) -> Result<usize, AggregationError> {
    let first = proposals.first().ok_or(AggregationError::NoProposals)?;
    let dim = first.dim();
    for (index, v) in proposals.iter().enumerate().skip(1) {
        if v.dim() != dim {
            return Err(AggregationError::DimensionMismatch {
                index,
                expected: dim,
                found: v.dim(),
            });
        }
    }
    Ok(dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct First;

    impl Aggregator for First {
        fn aggregate_detailed(
            &self,
            proposals: &[Vector],
        ) -> Result<Aggregation, AggregationError> {
            validate_proposals(proposals)?;
            Ok(Aggregation::selected(
                proposals[0].clone(),
                vec![0],
                vec![0.0; proposals.len()],
            ))
        }

        fn name(&self) -> String {
            "first".into()
        }

        fn is_selection_rule(&self) -> bool {
            true
        }
    }

    #[test]
    fn validate_proposals_catches_problems() {
        assert_eq!(validate_proposals(&[]), Err(AggregationError::NoProposals));
        let ok = vec![Vector::zeros(3), Vector::zeros(3)];
        assert_eq!(validate_proposals(&ok), Ok(3));
        let bad = vec![Vector::zeros(3), Vector::zeros(2)];
        assert!(matches!(
            validate_proposals(&bad),
            Err(AggregationError::DimensionMismatch {
                index: 1,
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn default_aggregate_delegates_to_detailed() {
        let rule = First;
        let proposals = vec![Vector::from(vec![1.0]), Vector::from(vec![2.0])];
        assert_eq!(rule.aggregate(&proposals).unwrap().as_slice(), &[1.0]);
        let detailed = rule.aggregate_detailed(&proposals).unwrap();
        assert_eq!(detailed.selected_index(), Some(0));
        assert!(rule.is_selection_rule());
    }

    #[test]
    fn aggregation_constructors() {
        let mixed = Aggregation::mixed(Vector::zeros(2));
        assert!(mixed.selected.is_empty());
        assert!(mixed.selected_index().is_none());
        let sel = Aggregation::selected(Vector::zeros(2), vec![3, 4], vec![1.0, 2.0]);
        assert!(sel.selected_index().is_none());
        let single = Aggregation::selected(Vector::zeros(2), vec![3], vec![]);
        assert_eq!(single.selected_index(), Some(3));
    }

    #[test]
    fn default_aggregate_in_bridges_external_rules() {
        // `First` only implements the allocating entry point; the default
        // `aggregate_in` must still deliver its result through the context.
        let rule = First;
        let proposals = vec![Vector::from(vec![4.0]), Vector::from(vec![5.0])];
        let mut ctx = AggregationContext::new();
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        assert_eq!(ctx.output().value.as_slice(), &[4.0]);
        assert_eq!(ctx.output().selected_index(), Some(0));
        // And the forwarding impls route `aggregate_in` through the box.
        let boxed: Box<dyn Aggregator> = Box::new(First);
        boxed.aggregate_in(&mut ctx, &proposals).unwrap();
        assert_eq!(ctx.output().selected_index(), Some(0));
        let by_ref: &dyn Aggregator = &First;
        by_ref.aggregate_in(&mut ctx, &proposals).unwrap();
        assert_eq!(ctx.output().value.as_slice(), &[4.0]);
    }

    #[test]
    fn trait_objects_and_references_work() {
        let rule = First;
        let proposals = vec![Vector::from(vec![1.0])];
        let by_ref: &dyn Aggregator = &rule;
        assert_eq!(by_ref.name(), "first");
        assert!(by_ref.aggregate(&proposals).is_ok());
        let boxed: Box<dyn Aggregator> = Box::new(First);
        assert!(boxed.is_selection_rule());
        assert_eq!(boxed.aggregate(&proposals).unwrap().as_slice(), &[1.0]);
    }
}
