//! The exponential majority-based rule sketched in the paper's introduction:
//! examine every subset of `n − f` proposals, pick the subset with the
//! smallest diameter, and output its barycenter.
//!
//! The paper notes this rule is robust to remote Byzantine proposals but has
//! prohibitive (exponential) cost — Krum was designed to combine its intuition
//! with the distance-based rule at `O(n²·d)` cost. The implementation below is
//! deliberately the straightforward combinatorial one so the cost comparison
//! in the `aggregators` benchmark is honest; construction caps `n` to keep the
//! number of subsets manageable.

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::aggregator::{validate_proposals, Aggregation, Aggregator};
use crate::context::AggregationContext;
use crate::error::AggregationError;

/// Largest cluster size accepted by [`MinimumDiameterSubset::new`]; beyond
/// this the number of subsets (`C(n, n−f)`) makes the rule impractical, which
/// is precisely the paper's point.
pub const MAX_WORKERS_FOR_SUBSET_RULE: usize = 30;

/// Majority-based rule: smallest-diameter subset of size `n − f`, averaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimumDiameterSubset {
    n: usize,
    f: usize,
}

impl MinimumDiameterSubset {
    /// Creates the rule for `n` workers with at most `f` Byzantine.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when `f >= n`, when the
    /// subset size `n − f` is zero, or when `n` exceeds
    /// [`MAX_WORKERS_FOR_SUBSET_RULE`].
    pub fn new(n: usize, f: usize) -> Result<Self, AggregationError> {
        if n == 0 || f >= n {
            return Err(AggregationError::config(
                "minimum-diameter-subset",
                format!("need 0 <= f < n, got n = {n}, f = {f}"),
            ));
        }
        if n > MAX_WORKERS_FOR_SUBSET_RULE {
            return Err(AggregationError::config(
                "minimum-diameter-subset",
                format!(
                    "n = {n} exceeds the practical cap of {MAX_WORKERS_FOR_SUBSET_RULE} \
                     (the rule enumerates C(n, n-f) subsets)"
                ),
            ));
        }
        Ok(Self { n, f })
    }

    /// Total number of workers `n`.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Number of tolerated Byzantine workers `f`.
    pub fn byzantine(&self) -> usize {
        self.f
    }

    /// Squared diameter of the proposals at `indices`. Returns NaN when any
    /// pairwise distance is NaN — `f64::max` would silently drop the NaN and
    /// make a subset containing a poisoned proposal look artificially tight
    /// (only its finite pairs would count), handing the selection to a
    /// Byzantine worker.
    fn squared_diameter(proposals: &[Vector], indices: &[usize]) -> f64 {
        let mut diameter = 0.0f64;
        for (a, &i) in indices.iter().enumerate() {
            for &j in &indices[a + 1..] {
                let d = proposals[i].squared_distance(&proposals[j]);
                if d.is_nan() {
                    return f64::NAN;
                }
                diameter = diameter.max(d);
            }
        }
        diameter
    }
}

impl Aggregator for MinimumDiameterSubset {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        if proposals.len() != self.n {
            return Err(AggregationError::WrongWorkerCount {
                expected: self.n,
                found: proposals.len(),
            });
        }
        let subset_size = self.n - self.f;
        // `order` holds the best subset found so far, `subset` the
        // enumeration scratch — both reused across rounds. NaN diameters
        // (poisoned proposals) never beat a finite subset: a NaN-diameter
        // subset is only remembered as a deterministic fallback for the
        // degenerate case where *every* subset contains a NaN proposal.
        let (best_subset, current) = (&mut ctx.order, &mut ctx.subset);
        best_subset.clear();
        current.clear();
        let mut found = false;
        let mut best_diameter = f64::INFINITY;
        enumerate_subsets(self.n, subset_size, 0, current, &mut |subset| {
            let diameter = Self::squared_diameter(proposals, subset);
            let better = if found {
                diameter < best_diameter
            } else {
                !diameter.is_nan()
            };
            if better {
                best_diameter = diameter;
                found = true;
                best_subset.clear();
                best_subset.extend_from_slice(subset);
            } else if best_subset.is_empty() {
                // First (lexicographically smallest) subset, kept only until
                // a non-NaN one shows up.
                best_subset.extend_from_slice(subset);
            }
        });
        // Average the chosen subset in place (same order as `Vector::mean_of`).
        let value = ctx.output.reset_value(dim);
        for &i in ctx.order.iter() {
            value.axpy(1.0, &proposals[i]);
        }
        value.scale(1.0 / ctx.order.len() as f64);
        ctx.output.set_selection(&ctx.order, &[]);
        Ok(())
    }

    fn name(&self) -> String {
        format!("min-diameter-subset(n={},f={})", self.n, self.f)
    }
}

/// Calls `visit` with every `k`-element subset of `{0, …, n-1}` (in
/// lexicographic order).
fn enumerate_subsets(
    n: usize,
    k: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if current.len() == k {
        visit(current);
        return;
    }
    let remaining = k - current.len();
    for i in start..=n.saturating_sub(remaining) {
        current.push(i);
        enumerate_subsets(n, k, i + 1, current, visit);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(MinimumDiameterSubset::new(0, 0).is_err());
        assert!(MinimumDiameterSubset::new(5, 5).is_err());
        assert!(MinimumDiameterSubset::new(40, 2).is_err());
        let rule = MinimumDiameterSubset::new(6, 2).unwrap();
        assert_eq!(rule.workers(), 6);
        assert_eq!(rule.byzantine(), 2);
        assert!(rule.name().contains("f=2"));
    }

    #[test]
    fn subset_enumeration_counts_binomials() {
        let mut count = 0usize;
        let mut current = Vec::new();
        enumerate_subsets(6, 3, 0, &mut current, &mut |_| count += 1);
        assert_eq!(count, 20); // C(6,3)
        let mut count = 0usize;
        enumerate_subsets(5, 5, 0, &mut current, &mut |s| {
            assert_eq!(s, &[0, 1, 2, 3, 4]);
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn picks_the_tight_honest_cluster() {
        // 4 honest proposals tightly clustered, 2 Byzantine far apart.
        let proposals = vec![
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.1, 0.9]),
            Vector::from(vec![0.9, 1.1]),
            Vector::from(vec![1.0, 0.95]),
            Vector::from(vec![500.0, 0.0]),
            Vector::from(vec![-500.0, 0.0]),
        ];
        let rule = MinimumDiameterSubset::new(6, 2).unwrap();
        let result = rule.aggregate_detailed(&proposals).unwrap();
        assert_eq!(result.selected, vec![0, 1, 2, 3]);
        assert!(result.value.distance(&Vector::from(vec![1.0, 1.0])) < 0.2);
    }

    #[test]
    fn resists_remote_collusion_unlike_closest_to_barycenter() {
        // Same construction as the Figure-2 test: decoy + colluder at the
        // displaced barycenter. The min-diameter rule ignores both because any
        // subset containing the decoy or the colluder has a huge diameter.
        let honest = vec![
            Vector::from(vec![0.0, 0.1]),
            Vector::from(vec![0.1, -0.1]),
            Vector::from(vec![-0.1, 0.0]),
            Vector::from(vec![0.05, 0.05]),
        ];
        let decoy = Vector::from(vec![600.0, -600.0]);
        let mut five = honest.clone();
        five.push(decoy.clone());
        let colluder = Vector::mean_of(&five).unwrap();
        let mut all = honest;
        all.push(decoy);
        all.push(colluder);
        let result = MinimumDiameterSubset::new(6, 2)
            .unwrap()
            .aggregate_detailed(&all)
            .unwrap();
        assert_eq!(result.selected, vec![0, 1, 2, 3]);
        assert!(result.value.norm() < 1.0);
    }

    /// A NaN-poisoned proposal (even at a low worker index, where its
    /// subsets enumerate first) must never drag the rule onto a NaN-diameter
    /// subset while a finite subset exists.
    #[test]
    fn nan_proposal_never_wins_over_a_finite_subset() {
        let proposals = vec![
            Vector::from(vec![f64::NAN, 0.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.1, 0.9]),
            Vector::from(vec![0.9, 1.1]),
        ];
        let rule = MinimumDiameterSubset::new(4, 1).unwrap();
        let result = rule.aggregate_detailed(&proposals).unwrap();
        assert_eq!(result.selected, vec![1, 2, 3]);
        assert!(result.value.is_finite());
        // Degenerate all-NaN case: fall back to the first subset
        // deterministically instead of panicking.
        let poisoned = vec![Vector::from(vec![f64::NAN]); 4];
        let result = rule.aggregate_detailed(&poisoned).unwrap();
        assert_eq!(result.selected, vec![0, 1, 2]);
    }

    #[test]
    fn with_f_zero_it_averages_everything() {
        let proposals = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
        ];
        let rule = MinimumDiameterSubset::new(3, 0).unwrap();
        let result = rule.aggregate_detailed(&proposals).unwrap();
        assert_eq!(result.selected, vec![0, 1, 2]);
        assert!((result.value[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_wrong_worker_count() {
        let rule = MinimumDiameterSubset::new(5, 1).unwrap();
        assert!(matches!(
            rule.aggregate(&vec![Vector::zeros(2); 4]),
            Err(AggregationError::WrongWorkerCount { .. })
        ));
    }
}
