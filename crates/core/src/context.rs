//! The reusable aggregation workspace.
//!
//! The paper's server loop applies `F(V_1, …, V_n)` every round, so at
//! production scale the aggregation path runs millions of times. Allocating
//! the Gram matrix, score buffers and transposed column blocks on every call
//! turns the hot path into an allocator benchmark; [`AggregationContext`]
//! owns all of that scratch once and lets every rule reuse it through
//! [`Aggregator::aggregate_in`](crate::Aggregator::aggregate_in).
//!
//! The contract: after the context has warmed up on a given proposal shape
//! `(n, d)`, repeated aggregations of that shape perform **zero heap
//! allocations** on the sequential path (the `allocation_regression`
//! integration test pins this for Krum, Multi-Krum, the coordinate-wise
//! median and the trimmed mean). Buffers only grow, so mixing shapes is
//! correct — the workspace simply settles at the high-water mark.
//!
//! Parallel execution (the [`ExecutionPolicy::Parallel`] fan-out over the
//! `rayon` pool) necessarily allocates per-task bookkeeping inside the thread
//! pool; the policy therefore lives on the context so callers that need the
//! allocation-free guarantee (or deterministic single-thread profiling) can
//! force [`ExecutionPolicy::Sequential`].

use krum_tensor::Vector;

use crate::aggregator::Aggregation;
use crate::hierarchical::HierWorkspace;
use crate::kernel;
use crate::stateful::StatefulState;

/// How a rule may spread its work across the `rayon` pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPolicy {
    /// Decide per call from the input size and the available parallelism
    /// (the default; matches the allocation-per-call API's behaviour).
    #[default]
    Auto,
    /// Never use the thread pool. The only policy with the zero-allocation
    /// guarantee, and the reference the property tests pin against.
    Sequential,
    /// Always fan out, even for small inputs (useful for testing the
    /// parallel path deterministically).
    Parallel,
}

impl ExecutionPolicy {
    /// Whether a workload over `n` independent rows should use the pool.
    pub(crate) fn use_parallel(self, n: usize) -> bool {
        match self {
            Self::Sequential => false,
            Self::Parallel => true,
            Self::Auto => n >= 8 && rayon::current_num_threads() > 1,
        }
    }
}

/// Reusable per-`(n, d)` workspace for aggregation rules.
///
/// Create one per server (or per thread), hand it to
/// [`Aggregator::aggregate_in`](crate::Aggregator::aggregate_in) every round,
/// and read the result through [`AggregationContext::output`]. All scratch —
/// the Gram/distance matrix, score and index buffers, the transposed column
/// blocks of the coordinate-wise rules, and the output [`Aggregation`]
/// itself — is retained between calls.
///
/// # Example
///
/// ```
/// use krum_core::{AggregationContext, Aggregator, Krum};
/// use krum_tensor::Vector;
///
/// let krum = Krum::new(5, 1).unwrap();
/// let proposals = vec![Vector::filled(3, 1.0); 5];
/// let mut ctx = AggregationContext::new();
/// for _round in 0..10 {
///     krum.aggregate_in(&mut ctx, &proposals).unwrap();
///     assert_eq!(ctx.output().selected_index(), Some(0));
/// }
/// ```
#[derive(Debug)]
pub struct AggregationContext {
    policy: ExecutionPolicy,
    /// Flattened `n × n` pairwise squared-distance (Gram) matrix.
    pub(crate) distances: Vec<f64>,
    /// Cached squared norms `‖V_i‖²` (length `n`).
    pub(crate) norms: Vec<f64>,
    /// Per-proposal scores (length `n`).
    pub(crate) scores: Vec<f64>,
    /// Selection scratch row (length `n − 1`).
    pub(crate) scratch: Vec<f64>,
    /// Index-ordering buffer (length `n`).
    pub(crate) order: Vec<usize>,
    /// Subset-enumeration scratch for the minimum-diameter rule.
    pub(crate) subset: Vec<usize>,
    /// Transposed column block for the coordinate-wise rules
    /// (`n × block_columns` values, column-major per coordinate).
    pub(crate) columns: Vec<f64>,
    /// Dimension-sized scratch (Weiszfeld numerator, …).
    pub(crate) coords: Vec<f64>,
    /// The output record rules write into (public access via
    /// [`AggregationContext::output`]; `pub(crate)` so rules can borrow it
    /// disjointly from the scratch buffers).
    pub(crate) output: Aggregation,
    /// Per-slot generation counters the cached Gram matrix was computed for
    /// (empty when no cache is live).
    gram_generations: Vec<u64>,
    /// Shape `(n, dim)` the cached Gram matrix is valid for.
    gram_shape: (usize, usize),
    /// Whether `distances`/`norms` hold a matrix consistent with
    /// `gram_generations` (cleared whenever a pairwise pass runs without
    /// generation bookkeeping).
    gram_valid: bool,
    /// One-shot generations for the *next* pairwise pass (see
    /// [`AggregationContext::set_generations`]).
    pending_generations: Vec<u64>,
    /// Whether `pending_generations` was armed since the last pairwise pass.
    pending_armed: bool,
    /// Change-flag scratch for the incremental path (length `n`).
    gram_changed: Vec<bool>,
    /// Lazily created workspace for the hierarchical rule (boxed: most
    /// contexts never aggregate hierarchically).
    pub(crate) hier: Option<Box<HierWorkspace>>,
    /// Cross-round memory of the stateful rules (boxed: most contexts never
    /// run one). Installed lazily on first stateful aggregation; survives
    /// rounds and is exportable for checkpointing.
    pub(crate) stateful: Option<Box<StatefulState>>,
    /// Worker id behind each proposal slot of the next aggregation, declared
    /// by the engine via [`AggregationContext::set_slot_workers`]. Empty (or
    /// arity-mismatched) means slot `i` *is* worker `i`.
    pub(crate) slot_workers: Vec<usize>,
}

impl Default for AggregationContext {
    fn default() -> Self {
        Self::new()
    }
}

impl AggregationContext {
    /// Creates an empty workspace with the [`ExecutionPolicy::Auto`] policy.
    /// Buffers are grown lazily on first use.
    pub fn new() -> Self {
        Self::with_policy(ExecutionPolicy::Auto)
    }

    /// Creates an empty workspace with an explicit execution policy.
    pub fn with_policy(policy: ExecutionPolicy) -> Self {
        Self {
            policy,
            distances: Vec::new(),
            norms: Vec::new(),
            scores: Vec::new(),
            scratch: Vec::new(),
            order: Vec::new(),
            subset: Vec::new(),
            columns: Vec::new(),
            coords: Vec::new(),
            output: Aggregation::mixed(Vector::zeros(0)),
            gram_generations: Vec::new(),
            gram_shape: (0, 0),
            gram_valid: false,
            pending_generations: Vec::new(),
            pending_armed: false,
            gram_changed: Vec::new(),
            hier: None,
            stateful: None,
            slot_workers: Vec::new(),
        }
    }

    /// The execution policy rules consult when deciding whether to fan out.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Changes the execution policy (buffers are kept).
    pub fn set_policy(&mut self, policy: ExecutionPolicy) {
        self.policy = policy;
    }

    /// The result of the most recent [`aggregate_in`] call.
    ///
    /// [`aggregate_in`]: crate::Aggregator::aggregate_in
    pub fn output(&self) -> &Aggregation {
        &self.output
    }

    /// Consumes the workspace and returns its most recent result. Used by
    /// the allocation-per-call wrappers; steady-state callers should keep
    /// the context alive and read [`AggregationContext::output`] instead.
    pub fn into_output(self) -> Aggregation {
        self.output
    }

    /// Replaces the output wholesale (the default [`aggregate_in`] bridge for
    /// rules that only implement the allocating entry point).
    ///
    /// [`aggregate_in`]: crate::Aggregator::aggregate_in
    pub fn set_output(&mut self, output: Aggregation) {
        self.output = output;
    }

    /// Resets the output for a selection-free (mixing) rule: `value` becomes
    /// a zero vector of dimension `dim`, `selected`/`scores` are cleared.
    /// Never allocates once the buffers have reached `dim` capacity.
    pub(crate) fn begin_mixed(&mut self, dim: usize) -> &mut Vector {
        self.output.selected.clear();
        self.output.scores.clear();
        self.output.reset_value(dim)
    }

    /// Cross-round state of the stateful rules, `None` until one has run in
    /// this context (or until a state was installed via
    /// [`AggregationContext::set_stateful_state`]).
    pub fn stateful_state(&self) -> Option<&StatefulState> {
        self.stateful.as_deref()
    }

    /// Installs (or clears, with `None`) the stateful-rule memory — the
    /// checkpoint-resume path: exporting `stateful_state().cloned()` before a
    /// crash and re-installing it here reproduces the trajectory
    /// bit-identically.
    pub fn set_stateful_state(&mut self, state: Option<StatefulState>) {
        self.stateful = state.map(Box::new);
    }

    /// Declares the worker id behind each proposal slot of the *next*
    /// aggregation, so per-worker state (reputation weights) follows workers
    /// through changing quorum compositions. The map is consulted only when
    /// its length matches the proposal count; engines whose slot order *is*
    /// the worker order can skip this entirely.
    pub fn set_slot_workers(&mut self, workers: &[usize]) {
        self.slot_workers.clear();
        self.slot_workers.extend_from_slice(workers);
    }

    /// Arms the generation-keyed Gram cache for the *next* aggregation:
    /// `generations[i]` is a counter the caller bumps whenever proposal `i`
    /// changes. When the next pairwise-distance pass sees the same shape and
    /// a matching generation vector length, it recomputes only the norms and
    /// distance rows of slots whose generation moved — bit-identical to a
    /// full recomputation (pinned by the kernel property tests). The arming
    /// is one-shot: a pass without a preceding `set_generations` call falls
    /// back to the full kernel and invalidates the cache, so interleaving
    /// cached and uncached callers is always correct, merely slower.
    ///
    /// The very first armed pass (or any pass after a shape change) computes
    /// the full matrix and records the generations; steady-state AsyncQuorum
    /// rounds, where only the fresh quorum arrivals moved, then pay
    /// `O(q·n·d)` instead of `O(n²·d)`.
    pub fn set_generations(&mut self, generations: &[u64]) {
        self.pending_generations.clear();
        self.pending_generations.extend_from_slice(generations);
        self.pending_armed = true;
    }

    /// Drops any cached Gram state (the next pairwise pass recomputes fully).
    pub fn invalidate_gram_cache(&mut self) {
        self.gram_valid = false;
        self.pending_armed = false;
        self.gram_generations.clear();
    }

    /// Cached-norm pairwise distances into the context's own
    /// `norms`/`distances` buffers, honouring the generation cache armed via
    /// [`AggregationContext::set_generations`]. This is the single pairwise
    /// entry every Gram-based rule goes through.
    pub(crate) fn pairwise_distances_cached(&mut self, proposals: &[Vector], parallel: bool) {
        let n = proposals.len();
        let dim = proposals.first().map_or(0, Vector::dim);
        let armed = std::mem::take(&mut self.pending_armed);
        let reusable = armed
            && self.gram_valid
            && self.gram_shape == (n, dim)
            && self.pending_generations.len() == n
            && self.gram_generations.len() == n;
        if reusable {
            self.gram_changed.clear();
            self.gram_changed.extend(
                self.gram_generations
                    .iter()
                    .zip(&self.pending_generations)
                    .map(|(old, new)| old != new),
            );
            kernel::pairwise_squared_distances_update(
                proposals,
                &mut self.norms,
                &mut self.distances,
                &self.gram_changed,
            );
        } else {
            kernel::pairwise_squared_distances_into(
                proposals,
                &mut self.norms,
                &mut self.distances,
                parallel,
            );
        }
        if armed {
            self.gram_shape = (n, dim);
            self.gram_valid = true;
            std::mem::swap(&mut self.gram_generations, &mut self.pending_generations);
        } else {
            self.gram_valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aggregator, Krum};

    #[test]
    fn policy_controls_fanout_decision() {
        assert!(!ExecutionPolicy::Sequential.use_parallel(1_000));
        assert!(ExecutionPolicy::Parallel.use_parallel(2));
        let auto = ExecutionPolicy::Auto;
        assert!(!auto.use_parallel(2));
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Auto);
    }

    #[test]
    fn context_reuse_matches_fresh_contexts() {
        let krum = Krum::new(5, 1).unwrap();
        let proposals: Vec<Vector> = (0..5).map(|i| Vector::filled(4, i as f64 * 0.25)).collect();
        let mut reused = AggregationContext::with_policy(ExecutionPolicy::Sequential);
        for _ in 0..3 {
            krum.aggregate_in(&mut reused, &proposals).unwrap();
            let fresh = krum.aggregate_detailed(&proposals).unwrap();
            assert_eq!(reused.output(), &fresh);
        }
    }

    #[test]
    fn policy_is_adjustable_and_buffers_survive() {
        let krum = Krum::new(5, 1).unwrap();
        let proposals: Vec<Vector> = (0..5).map(|i| Vector::filled(3, i as f64)).collect();
        let mut ctx = AggregationContext::new();
        krum.aggregate_in(&mut ctx, &proposals).unwrap();
        let sequential = ctx.output().clone();
        ctx.set_policy(ExecutionPolicy::Parallel);
        assert_eq!(ctx.policy(), ExecutionPolicy::Parallel);
        krum.aggregate_in(&mut ctx, &proposals).unwrap();
        assert_eq!(ctx.output(), &sequential);
    }

    #[test]
    fn into_output_hands_back_the_result() {
        let krum = Krum::new(5, 1).unwrap();
        let proposals: Vec<Vector> = (0..5).map(|i| Vector::filled(2, i as f64)).collect();
        let mut ctx = AggregationContext::new();
        krum.aggregate_in(&mut ctx, &proposals).unwrap();
        let expected = ctx.output().clone();
        assert_eq!(ctx.into_output(), expected);
    }
}
