//! The reusable aggregation workspace.
//!
//! The paper's server loop applies `F(V_1, …, V_n)` every round, so at
//! production scale the aggregation path runs millions of times. Allocating
//! the Gram matrix, score buffers and transposed column blocks on every call
//! turns the hot path into an allocator benchmark; [`AggregationContext`]
//! owns all of that scratch once and lets every rule reuse it through
//! [`Aggregator::aggregate_in`](crate::Aggregator::aggregate_in).
//!
//! The contract: after the context has warmed up on a given proposal shape
//! `(n, d)`, repeated aggregations of that shape perform **zero heap
//! allocations** on the sequential path (the `allocation_regression`
//! integration test pins this for Krum, Multi-Krum, the coordinate-wise
//! median and the trimmed mean). Buffers only grow, so mixing shapes is
//! correct — the workspace simply settles at the high-water mark.
//!
//! Parallel execution (the [`ExecutionPolicy::Parallel`] fan-out over the
//! `rayon` pool) necessarily allocates per-task bookkeeping inside the thread
//! pool; the policy therefore lives on the context so callers that need the
//! allocation-free guarantee (or deterministic single-thread profiling) can
//! force [`ExecutionPolicy::Sequential`].

use krum_tensor::Vector;

use crate::aggregator::Aggregation;

/// How a rule may spread its work across the `rayon` pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionPolicy {
    /// Decide per call from the input size and the available parallelism
    /// (the default; matches the allocation-per-call API's behaviour).
    #[default]
    Auto,
    /// Never use the thread pool. The only policy with the zero-allocation
    /// guarantee, and the reference the property tests pin against.
    Sequential,
    /// Always fan out, even for small inputs (useful for testing the
    /// parallel path deterministically).
    Parallel,
}

impl ExecutionPolicy {
    /// Whether a workload over `n` independent rows should use the pool.
    pub(crate) fn use_parallel(self, n: usize) -> bool {
        match self {
            Self::Sequential => false,
            Self::Parallel => true,
            Self::Auto => n >= 8 && rayon::current_num_threads() > 1,
        }
    }
}

/// Reusable per-`(n, d)` workspace for aggregation rules.
///
/// Create one per server (or per thread), hand it to
/// [`Aggregator::aggregate_in`](crate::Aggregator::aggregate_in) every round,
/// and read the result through [`AggregationContext::output`]. All scratch —
/// the Gram/distance matrix, score and index buffers, the transposed column
/// blocks of the coordinate-wise rules, and the output [`Aggregation`]
/// itself — is retained between calls.
///
/// # Example
///
/// ```
/// use krum_core::{AggregationContext, Aggregator, Krum};
/// use krum_tensor::Vector;
///
/// let krum = Krum::new(5, 1).unwrap();
/// let proposals = vec![Vector::filled(3, 1.0); 5];
/// let mut ctx = AggregationContext::new();
/// for _round in 0..10 {
///     krum.aggregate_in(&mut ctx, &proposals).unwrap();
///     assert_eq!(ctx.output().selected_index(), Some(0));
/// }
/// ```
#[derive(Debug)]
pub struct AggregationContext {
    policy: ExecutionPolicy,
    /// Flattened `n × n` pairwise squared-distance (Gram) matrix.
    pub(crate) distances: Vec<f64>,
    /// Cached squared norms `‖V_i‖²` (length `n`).
    pub(crate) norms: Vec<f64>,
    /// Per-proposal scores (length `n`).
    pub(crate) scores: Vec<f64>,
    /// Selection scratch row (length `n − 1`).
    pub(crate) scratch: Vec<f64>,
    /// Index-ordering buffer (length `n`).
    pub(crate) order: Vec<usize>,
    /// Subset-enumeration scratch for the minimum-diameter rule.
    pub(crate) subset: Vec<usize>,
    /// Transposed column block for the coordinate-wise rules
    /// (`n × block_columns` values, column-major per coordinate).
    pub(crate) columns: Vec<f64>,
    /// Dimension-sized scratch (Weiszfeld numerator, …).
    pub(crate) coords: Vec<f64>,
    /// The output record rules write into (public access via
    /// [`AggregationContext::output`]; `pub(crate)` so rules can borrow it
    /// disjointly from the scratch buffers).
    pub(crate) output: Aggregation,
}

impl Default for AggregationContext {
    fn default() -> Self {
        Self::new()
    }
}

impl AggregationContext {
    /// Creates an empty workspace with the [`ExecutionPolicy::Auto`] policy.
    /// Buffers are grown lazily on first use.
    pub fn new() -> Self {
        Self::with_policy(ExecutionPolicy::Auto)
    }

    /// Creates an empty workspace with an explicit execution policy.
    pub fn with_policy(policy: ExecutionPolicy) -> Self {
        Self {
            policy,
            distances: Vec::new(),
            norms: Vec::new(),
            scores: Vec::new(),
            scratch: Vec::new(),
            order: Vec::new(),
            subset: Vec::new(),
            columns: Vec::new(),
            coords: Vec::new(),
            output: Aggregation::mixed(Vector::zeros(0)),
        }
    }

    /// The execution policy rules consult when deciding whether to fan out.
    pub fn policy(&self) -> ExecutionPolicy {
        self.policy
    }

    /// Changes the execution policy (buffers are kept).
    pub fn set_policy(&mut self, policy: ExecutionPolicy) {
        self.policy = policy;
    }

    /// The result of the most recent [`aggregate_in`] call.
    ///
    /// [`aggregate_in`]: crate::Aggregator::aggregate_in
    pub fn output(&self) -> &Aggregation {
        &self.output
    }

    /// Consumes the workspace and returns its most recent result. Used by
    /// the allocation-per-call wrappers; steady-state callers should keep
    /// the context alive and read [`AggregationContext::output`] instead.
    pub fn into_output(self) -> Aggregation {
        self.output
    }

    /// Replaces the output wholesale (the default [`aggregate_in`] bridge for
    /// rules that only implement the allocating entry point).
    ///
    /// [`aggregate_in`]: crate::Aggregator::aggregate_in
    pub fn set_output(&mut self, output: Aggregation) {
        self.output = output;
    }

    /// Resets the output for a selection-free (mixing) rule: `value` becomes
    /// a zero vector of dimension `dim`, `selected`/`scores` are cleared.
    /// Never allocates once the buffers have reached `dim` capacity.
    pub(crate) fn begin_mixed(&mut self, dim: usize) -> &mut Vector {
        self.output.selected.clear();
        self.output.scores.clear();
        self.output.reset_value(dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aggregator, Krum};

    #[test]
    fn policy_controls_fanout_decision() {
        assert!(!ExecutionPolicy::Sequential.use_parallel(1_000));
        assert!(ExecutionPolicy::Parallel.use_parallel(2));
        let auto = ExecutionPolicy::Auto;
        assert!(!auto.use_parallel(2));
        assert_eq!(ExecutionPolicy::default(), ExecutionPolicy::Auto);
    }

    #[test]
    fn context_reuse_matches_fresh_contexts() {
        let krum = Krum::new(5, 1).unwrap();
        let proposals: Vec<Vector> = (0..5).map(|i| Vector::filled(4, i as f64 * 0.25)).collect();
        let mut reused = AggregationContext::with_policy(ExecutionPolicy::Sequential);
        for _ in 0..3 {
            krum.aggregate_in(&mut reused, &proposals).unwrap();
            let fresh = krum.aggregate_detailed(&proposals).unwrap();
            assert_eq!(reused.output(), &fresh);
        }
    }

    #[test]
    fn policy_is_adjustable_and_buffers_survive() {
        let krum = Krum::new(5, 1).unwrap();
        let proposals: Vec<Vector> = (0..5).map(|i| Vector::filled(3, i as f64)).collect();
        let mut ctx = AggregationContext::new();
        krum.aggregate_in(&mut ctx, &proposals).unwrap();
        let sequential = ctx.output().clone();
        ctx.set_policy(ExecutionPolicy::Parallel);
        assert_eq!(ctx.policy(), ExecutionPolicy::Parallel);
        krum.aggregate_in(&mut ctx, &proposals).unwrap();
        assert_eq!(ctx.output(), &sequential);
    }

    #[test]
    fn into_output_hands_back_the_result() {
        let krum = Krum::new(5, 1).unwrap();
        let proposals: Vec<Vector> = (0..5).map(|i| Vector::filled(2, i as f64)).collect();
        let mut ctx = AggregationContext::new();
        krum.aggregate_in(&mut ctx, &proposals).unwrap();
        let expected = ctx.output().clone();
        assert_eq!(ctx.into_output(), expected);
    }
}
