//! Empirical `(α, f)`-Byzantine-resilience checking (Definition 3.2,
//! Proposition 4.2).
//!
//! Definition 3.2 requires the choice function `F` to satisfy, for i.i.d.
//! correct proposals `V_i ∼ G` with `E G = g` and any `f` Byzantine vectors:
//!
//! 1. `⟨E F, g⟩ ≥ (1 − sin α) · ‖g‖² > 0`, and
//! 2. for `r = 2, 3, 4`, `E ‖F‖^r` is bounded by a linear combination of
//!    products of moments of `G` of total order `r`.
//!
//! Proposition 4.2 instantiates this for Krum with
//! `sin α = η(n, f) · √d · σ / ‖g‖` provided `2f + 2 < n` and
//! `η(n, f) · √d · σ < ‖g‖`.
//!
//! The expectations cannot be computed in closed form for an arbitrary rule
//! and attack, so [`ResilienceEstimator`] estimates them by Monte-Carlo
//! sampling: correct proposals are drawn `N(g, σ² I_d)` (matching the
//! `E‖G − g‖² = d σ²` premise of the proposition), the caller supplies the
//! Byzantine vectors through a closure, and the estimator reports the
//! empirical inner product, the bound, and the moment ratios. Experiment E4
//! sweeps this over `σ/‖g‖`, `n` and `f`.

use krum_tensor::Vector;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::aggregator::Aggregator;
use crate::error::AggregationError;

/// The `η(n, f)` constant of Proposition 4.2.
///
/// The brief announcement specifies only its asymptotics
/// (`O(n)` when `f = Θ(n)`, `O(√n)` when `f = O(1)`); this is the closed form
/// from the full version of the paper (arXiv:1703.02757),
///
/// `η(n, f) = √( 2 ( n − f + (f·(n−f−2) + f²·(n−f−1)) / (n − 2f − 2) ) )`,
///
/// which realises both asymptotic regimes.
///
/// # Errors
///
/// Returns [`AggregationError::InvalidConfig`] unless `2f + 2 < n`.
pub fn eta(n: usize, f: usize) -> Result<f64, AggregationError> {
    if 2 * f + 2 >= n {
        return Err(AggregationError::config(
            "eta",
            format!("eta(n, f) requires 2f + 2 < n, got n = {n}, f = {f}"),
        ));
    }
    let n = n as f64;
    let f = f as f64;
    let inner = n - f + (f * (n - f - 2.0) + f * f * (n - f - 1.0)) / (n - 2.0 * f - 2.0);
    Ok((2.0 * inner).sqrt())
}

/// `sin α` for Krum per Proposition 4.2: `η(n, f) · √d · σ / ‖g‖`.
///
/// A return value `≥ 1` means the proposition's premise
/// `η(n,f)·√d·σ < ‖g‖` is violated (no valid angle `α < π/2` exists); the
/// value is still returned so experiments can plot where the guarantee stops
/// applying.
///
/// # Errors
///
/// Returns [`AggregationError::InvalidConfig`] when `2f + 2 ≥ n`, when `d` is
/// zero, or when `sigma` is negative / `grad_norm` is not strictly positive.
pub fn krum_sin_alpha(
    n: usize,
    f: usize,
    d: usize,
    sigma: f64,
    grad_norm: f64,
) -> Result<f64, AggregationError> {
    if d == 0 {
        return Err(AggregationError::config("krum_sin_alpha", "d must be >= 1"));
    }
    if sigma < 0.0 || !sigma.is_finite() {
        return Err(AggregationError::config(
            "krum_sin_alpha",
            "sigma must be finite and >= 0",
        ));
    }
    if !grad_norm.is_finite() || grad_norm <= 0.0 {
        return Err(AggregationError::config(
            "krum_sin_alpha",
            "the gradient norm must be finite and > 0",
        ));
    }
    Ok(eta(n, f)? * (d as f64).sqrt() * sigma / grad_norm)
}

/// Byzantine accounting for one level of hierarchical (group-sharded)
/// aggregation, as computed by [`hierarchical_bounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchicalBounds {
    /// Number of round-robin groups `g`.
    pub groups: usize,
    /// Smallest group size `⌊n/g⌋`.
    pub group_size_min: usize,
    /// Largest group size `⌈n/g⌉`.
    pub group_size_max: usize,
    /// Worst-case Byzantine members per group, `f_g = ⌈f/g⌉`.
    pub group_byzantine: usize,
    /// Byzantine budget for the outer stage over the `g` winners,
    /// `f_outer = ⌊g·f/n⌋`.
    pub outer_byzantine: usize,
}

impl HierarchicalBounds {
    /// Size of group `k` of `n` workers under round-robin sharding:
    /// `⌈(n − k)/g⌉`, i.e. `⌊n/g⌋ + 1` for the first `n mod g` groups.
    pub fn group_size(&self, k: usize, n: usize) -> usize {
        n / self.groups + usize::from(k < n % self.groups)
    }

    /// Whether Krum's precondition `2·f_g + 2 < n_g` holds in the *smallest*
    /// group — i.e. whether a Krum-family inner stage is feasible.
    pub fn krum_feasible(&self) -> bool {
        2 * self.group_byzantine + 2 < self.group_size_min
    }
}

/// Derives the per-group Byzantine bound for hierarchical aggregation.
///
/// # Derivation
///
/// Shard the `n` workers round-robin: worker `w` joins group `w mod g`, so
/// group `k` has `n_g(k) = ⌈(n − k)/g⌉ ∈ {⌊n/g⌋, ⌈n/g⌉}` members.
///
/// **Inner stage.** The threat model (and the engine) place the `f`
/// Byzantine workers on the contiguous top id block `{n−f, …, n−1}`. Any
/// `f` consecutive ids hit each residue class modulo `g` at most
/// `⌈f/g⌉` times, so every group faces at most
///
/// ```text
///     f_g = ⌈f/g⌉
/// ```
///
/// Byzantine members. A Krum-family inner rule therefore needs
/// `2·f_g + 2 < n_g` in the *smallest* group, i.e.
/// `2·⌈f/g⌉ + 2 < ⌊n/g⌋` — roughly the flat precondition `2f + 2 < n`
/// scaled down by `g`, which keeps the honest supermajority intact inside
/// every shard. (This function checks only the structural requirements
/// `2 ≤ g ≤ n` and `f < n`; the rule-level inequality is enforced when the
/// per-group rules are built for `(n_g, f_g)`, so non-Krum inner stages
/// such as the median are not over-constrained.)
///
/// **Outer stage.** A group's winner is only attacker-controlled if the
/// attacker overwhelms that group's inner rule. With the budget `f` spread
/// as evenly as the adversary likes, at most `⌊f / (n_g·…)⌋`-style counting
/// applies; the conservative budget used here charges the outer stage one
/// corrupted winner per fully-Byzantine group's worth of workers:
///
/// ```text
///     f_outer = ⌊g·f / n⌋
/// ```
///
/// (the number of groups the attacker could fill *completely* if it
/// concentrated its budget, since filling a group takes ≈ `n/g` workers).
/// The outer rule over the `g` winners is built for `(g, f_outer)`.
///
/// # Errors
///
/// Returns [`AggregationError::InvalidConfig`] when `groups < 2`,
/// `groups > n`, or `f ≥ n`.
pub fn hierarchical_bounds(
    n: usize,
    f: usize,
    groups: usize,
) -> Result<HierarchicalBounds, AggregationError> {
    if groups < 2 {
        return Err(AggregationError::config(
            "hierarchical",
            format!("need at least 2 groups, got {groups}"),
        ));
    }
    if groups > n {
        return Err(AggregationError::config(
            "hierarchical",
            format!("cannot shard {n} workers into {groups} groups"),
        ));
    }
    if f >= n {
        return Err(AggregationError::config(
            "hierarchical",
            format!("need f < n, got n = {n}, f = {f}"),
        ));
    }
    Ok(HierarchicalBounds {
        groups,
        group_size_min: n / groups,
        group_size_max: n.div_ceil(groups),
        group_byzantine: f.div_ceil(groups),
        outer_byzantine: groups * f / n,
    })
}

/// Monte-Carlo estimator of the Definition-3.2 conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceEstimator {
    trials: usize,
}

impl Default for ResilienceEstimator {
    fn default() -> Self {
        Self { trials: 2_000 }
    }
}

/// Outcome of one resilience check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceCheck {
    /// Empirical `E F` over the trials.
    pub expected_aggregate: Vector,
    /// Empirical `⟨E F, g⟩`.
    pub inner_product: f64,
    /// Theoretical lower bound `(1 − sin α)·‖g‖²` from Proposition 4.2.
    pub required_lower_bound: f64,
    /// `sin α` used for the bound (values ≥ 1 mean the premise fails).
    pub sin_alpha: f64,
    /// Whether condition (i) held empirically: `inner_product ≥ required_lower_bound`.
    pub condition_i: bool,
    /// Empirical ratios `E‖F‖^r / E‖G‖^r` for `r = 2, 3, 4`. Condition (ii)
    /// asks for these to be bounded by a constant depending only on `n`; the
    /// experiments report them for inspection.
    pub moment_ratios: [f64; 3],
    /// Number of Monte-Carlo trials used.
    pub trials: usize,
    /// Empirical mean squared deviation of the correct estimator,
    /// `E‖G − g‖²` (should be close to `d·σ²`).
    pub estimator_deviation: f64,
}

impl ResilienceEstimator {
    /// Creates an estimator running `trials` Monte-Carlo rounds.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when `trials` is zero.
    pub fn new(trials: usize) -> Result<Self, AggregationError> {
        if trials == 0 {
            return Err(AggregationError::config(
                "resilience-estimator",
                "trials must be >= 1",
            ));
        }
        Ok(Self { trials })
    }

    /// Number of Monte-Carlo trials per check.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Estimates the Definition-3.2 quantities for `aggregator`.
    ///
    /// * `g` — the true gradient (mean of the correct estimator).
    /// * `sigma` — per-coordinate standard deviation of the correct estimator.
    /// * `n`, `f` — cluster size and number of Byzantine workers.
    /// * `forge` — produces the `f` Byzantine vectors; it receives the correct
    ///   proposals of the trial (the omniscient adversary of the model
    ///   section) and the RNG. It must return exactly `f` vectors of the right
    ///   dimension.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError`] on invalid configuration, if `forge`
    /// returns the wrong number of vectors, or if the aggregator fails.
    #[allow(clippy::too_many_arguments)]
    pub fn check<A, FB, R>(
        &self,
        aggregator: &A,
        g: &Vector,
        sigma: f64,
        n: usize,
        f: usize,
        mut forge: FB,
        rng: &mut R,
    ) -> Result<ResilienceCheck, AggregationError>
    where
        A: Aggregator + ?Sized,
        FB: FnMut(&[Vector], &mut R) -> Vec<Vector>,
        R: Rng,
    {
        if f >= n {
            return Err(AggregationError::config(
                "resilience-estimator",
                format!("need f < n, got n = {n}, f = {f}"),
            ));
        }
        if sigma < 0.0 || !sigma.is_finite() {
            return Err(AggregationError::config(
                "resilience-estimator",
                "sigma must be finite and >= 0",
            ));
        }
        let d = g.dim();
        let grad_norm = g.norm();
        let sin_alpha = if grad_norm > 0.0 {
            krum_sin_alpha(n, f, d, sigma, grad_norm).unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        };

        let mut sum_f = Vector::zeros(d);
        let mut sum_norm_f = [0.0f64; 3];
        let mut sum_norm_g = [0.0f64; 3];
        let mut sum_dev_g = 0.0f64;
        let correct_count = n - f;
        for _ in 0..self.trials {
            let correct: Vec<Vector> = (0..correct_count)
                .map(|_| {
                    let mut v = g.clone();
                    if sigma > 0.0 {
                        v.axpy(1.0, &Vector::gaussian(d, 0.0, sigma, rng));
                    }
                    v
                })
                .collect();
            let byzantine = forge(&correct, rng);
            if byzantine.len() != f {
                return Err(AggregationError::config(
                    "resilience-estimator",
                    format!(
                        "forge returned {} vectors, expected f = {f}",
                        byzantine.len()
                    ),
                ));
            }
            let mut proposals = correct.clone();
            proposals.extend(byzantine);
            let aggregate = aggregator.aggregate(&proposals)?;

            sum_f.axpy(1.0, &aggregate);
            let norm = aggregate.norm();
            sum_norm_f[0] += norm.powi(2);
            sum_norm_f[1] += norm.powi(3);
            sum_norm_f[2] += norm.powi(4);
            for v in &correct {
                let vn = v.norm();
                sum_norm_g[0] += vn.powi(2);
                sum_norm_g[1] += vn.powi(3);
                sum_norm_g[2] += vn.powi(4);
                sum_dev_g += v.squared_distance(g);
            }
        }
        let trials = self.trials as f64;
        let correct_samples = trials * correct_count as f64;
        let expected_aggregate = sum_f.scaled(1.0 / trials);
        let inner_product = expected_aggregate.dot(g);
        let required_lower_bound = (1.0 - sin_alpha) * grad_norm * grad_norm;
        let mut moment_ratios = [0.0f64; 3];
        for r in 0..3 {
            let ef = sum_norm_f[r] / trials;
            let eg = sum_norm_g[r] / correct_samples;
            moment_ratios[r] = if eg > 0.0 { ef / eg } else { f64::INFINITY };
        }
        Ok(ResilienceCheck {
            expected_aggregate,
            inner_product,
            required_lower_bound,
            sin_alpha,
            condition_i: inner_product >= required_lower_bound && required_lower_bound > 0.0,
            moment_ratios,
            trials: self.trials,
            estimator_deviation: sum_dev_g / correct_samples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Average, Krum};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn eta_validates_and_matches_asymptotics() {
        assert!(eta(4, 1).is_err());
        assert!(eta(10, 4).is_err());
        // f = 0: eta = sqrt(2n).
        let e = eta(10, 0).unwrap();
        assert!((e - (20.0f64).sqrt()).abs() < 1e-12);
        // With f fixed, eta grows like sqrt(n): eta(4n)/eta(n) ≈ 2.
        let ratio = eta(400, 1).unwrap() / eta(100, 1).unwrap();
        assert!((ratio - 2.0).abs() < 0.2, "sqrt growth, ratio = {ratio}");
        // With f proportional to n, eta grows like n: eta(4n)/eta(n) ≈ 4.
        let ratio = eta(400, 100).unwrap() / eta(100, 25).unwrap();
        assert!((ratio - 4.0).abs() < 0.5, "linear growth, ratio = {ratio}");
        // Monotone in f for fixed n.
        assert!(eta(25, 11).unwrap() > eta(25, 5).unwrap());
        assert!(eta(25, 5).unwrap() > eta(25, 0).unwrap());
    }

    #[test]
    fn sin_alpha_validation_and_scaling() {
        assert!(krum_sin_alpha(25, 5, 0, 0.1, 1.0).is_err());
        assert!(krum_sin_alpha(25, 5, 10, -0.1, 1.0).is_err());
        assert!(krum_sin_alpha(25, 5, 10, 0.1, 0.0).is_err());
        assert!(krum_sin_alpha(4, 1, 10, 0.1, 1.0).is_err());
        let a = krum_sin_alpha(25, 5, 100, 0.01, 10.0).unwrap();
        let b = krum_sin_alpha(25, 5, 100, 0.02, 10.0).unwrap();
        assert!((b / a - 2.0).abs() < 1e-9, "sin alpha is linear in sigma");
        let c = krum_sin_alpha(25, 5, 100, 0.01, 20.0).unwrap();
        assert!((a / c - 2.0).abs() < 1e-9, "sin alpha is inverse in ‖g‖");
    }

    #[test]
    fn hierarchical_bounds_match_hand_calculations() {
        // n = 1024, g = 16, f = 64: groups of 64 with ⌈64/16⌉ = 4 byzantine
        // each (2·4 + 2 = 10 < 64 ✓), outer budget ⌊16·64/1024⌋ = 1.
        let b = hierarchical_bounds(1024, 64, 16).unwrap();
        assert_eq!(b.group_size_min, 64);
        assert_eq!(b.group_size_max, 64);
        assert_eq!(b.group_byzantine, 4);
        assert_eq!(b.outer_byzantine, 1);
        assert!(b.krum_feasible());
        // n = 2000, g = 40, f = 100: groups of 50, f_g = ⌈100/40⌉ = 3,
        // f_outer = ⌊40·100/2000⌋ = 2.
        let b = hierarchical_bounds(2000, 100, 40).unwrap();
        assert_eq!((b.group_size_min, b.group_size_max), (50, 50));
        assert_eq!(b.group_byzantine, 3);
        assert_eq!(b.outer_byzantine, 2);
        // Ragged split: n = 23, g = 4 → sizes 6,6,6,5.
        let b = hierarchical_bounds(23, 3, 4).unwrap();
        assert_eq!((b.group_size_min, b.group_size_max), (5, 6));
        let sizes: Vec<usize> = (0..4).map(|k| b.group_size(k, 23)).collect();
        assert_eq!(sizes, [6, 6, 6, 5]);
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        // Structural rejections.
        assert!(hierarchical_bounds(10, 1, 1).is_err());
        assert!(hierarchical_bounds(10, 1, 11).is_err());
        assert!(hierarchical_bounds(10, 10, 2).is_err());
        // Krum infeasible when groups get too small for their byzantine load.
        let b = hierarchical_bounds(16, 4, 4).unwrap();
        assert!(!b.krum_feasible());
    }

    #[test]
    fn estimator_constructor_validation() {
        assert!(ResilienceEstimator::new(0).is_err());
        assert_eq!(ResilienceEstimator::new(10).unwrap().trials(), 10);
        assert_eq!(ResilienceEstimator::default().trials(), 2_000);
    }

    #[test]
    fn krum_satisfies_condition_i_under_omniscient_attack() {
        // n = 11, f = 2, d = 10, small noise relative to ‖g‖ so the premise
        // of Proposition 4.2 holds comfortably.
        let n = 11;
        let f = 2;
        let d = 10;
        let g = Vector::filled(d, 1.0); // ‖g‖ = √10 ≈ 3.16
        let sigma = 0.05;
        let krum = Krum::new(n, f).unwrap();
        let estimator = ResilienceEstimator::new(300).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Omniscient attack: propose the negated mean of the correct vectors.
        let check = estimator
            .check(
                &krum,
                &g,
                sigma,
                n,
                f,
                |correct, _| {
                    let mean = Vector::mean_of(correct).unwrap();
                    vec![mean.scaled(-5.0); 2]
                },
                &mut rng,
            )
            .unwrap();
        assert!(
            check.sin_alpha < 1.0,
            "premise should hold: {}",
            check.sin_alpha
        );
        assert!(
            check.condition_i,
            "⟨EF, g⟩ = {} should exceed {}",
            check.inner_product, check.required_lower_bound
        );
        // The estimator deviation should be close to d·σ².
        let expected_dev = d as f64 * sigma * sigma;
        assert!((check.estimator_deviation - expected_dev).abs() / expected_dev < 0.2);
        // Moments of the selected vector stay comparable to the correct estimator's.
        assert!(check
            .moment_ratios
            .iter()
            .all(|&r| r.is_finite() && r < 10.0));
    }

    #[test]
    fn averaging_fails_condition_i_under_directed_attack() {
        // The same setting, but the attacker drives the average away from g:
        // with plain averaging a single Byzantine worker suffices (Lemma 3.1).
        let n = 11;
        let f = 2;
        let d = 10;
        let g = Vector::filled(d, 1.0);
        let sigma = 0.05;
        let avg = Average::new();
        let estimator = ResilienceEstimator::new(200).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let check = estimator
            .check(
                &avg,
                &g,
                sigma,
                n,
                f,
                |correct, _| {
                    // Force the average towards −g: propose n·(−g) minus the
                    // honest contributions, split across the f attackers.
                    let target = g.scaled(-(n as f64));
                    let mut correction = target;
                    for v in correct {
                        correction.axpy(-1.0, v);
                    }
                    vec![correction.scaled(1.0 / f as f64); f]
                },
                &mut rng,
            )
            .unwrap();
        assert!(
            !check.condition_i,
            "averaging should violate condition (i): ⟨EF, g⟩ = {}",
            check.inner_product
        );
        assert!(check.inner_product < 0.0);
    }

    #[test]
    fn check_validates_inputs() {
        let krum = Krum::new(7, 2).unwrap();
        let estimator = ResilienceEstimator::new(5).unwrap();
        let g = Vector::filled(4, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // f >= n
        assert!(estimator
            .check(&krum, &g, 0.1, 3, 3, |_, _| vec![], &mut rng)
            .is_err());
        // negative sigma
        assert!(estimator
            .check(
                &krum,
                &g,
                -0.1,
                7,
                2,
                |_, _| vec![Vector::zeros(4); 2],
                &mut rng
            )
            .is_err());
        // forge returning the wrong count
        assert!(estimator
            .check(
                &krum,
                &g,
                0.1,
                7,
                2,
                |_, _| vec![Vector::zeros(4)],
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn zero_gradient_reports_unsatisfiable_bound() {
        let krum = Krum::new(7, 2).unwrap();
        let estimator = ResilienceEstimator::new(10).unwrap();
        let g = Vector::zeros(4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let check = estimator
            .check(
                &krum,
                &g,
                0.1,
                7,
                2,
                |_, rng| {
                    vec![
                        Vector::gaussian(4, 0.0, 1.0, rng),
                        Vector::gaussian(4, 0.0, 1.0, rng),
                    ]
                },
                &mut rng,
            )
            .unwrap();
        assert!(check.sin_alpha.is_infinite());
        assert!(!check.condition_i);
    }
}
