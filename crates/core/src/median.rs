//! Coordinate-wise robust statistics: median and trimmed mean.
//!
//! These rules are not part of the PODC paper but are the standard robust
//! baselines the follow-up literature compares Krum against; they are included
//! so the experiment drivers can report a fuller comparison (clearly labelled
//! as extensions in EXPERIMENTS.md).

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::aggregator::{validate_proposals, Aggregation, Aggregator};
use crate::error::AggregationError;

/// Coordinate-wise median of the proposals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoordinateWiseMedian;

impl CoordinateWiseMedian {
    /// Creates the coordinate-wise median rule.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for CoordinateWiseMedian {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let dim = validate_proposals(proposals)?;
        let mut out = Vector::zeros(dim);
        let mut column = vec![0.0; proposals.len()];
        for c in 0..dim {
            for (k, v) in proposals.iter().enumerate() {
                column[k] = v[c];
            }
            out[c] = median_in_place(&mut column);
        }
        Ok(Aggregation::mixed(out))
    }

    fn name(&self) -> String {
        "coordinate-median".into()
    }
}

/// Coordinate-wise trimmed mean: per coordinate, drop the `trim` largest and
/// `trim` smallest values and average the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrimmedMean {
    trim: usize,
}

impl TrimmedMean {
    /// Creates a trimmed mean that removes `trim` values from each tail of
    /// every coordinate.
    pub fn new(trim: usize) -> Self {
        Self { trim }
    }

    /// Number of values trimmed from each tail.
    pub fn trim(&self) -> usize {
        self.trim
    }
}

impl Aggregator for TrimmedMean {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let dim = validate_proposals(proposals)?;
        let n = proposals.len();
        if 2 * self.trim >= n {
            return Err(AggregationError::config(
                "trimmed-mean",
                format!("trim = {} removes all {n} proposals", self.trim),
            ));
        }
        let mut out = Vector::zeros(dim);
        let mut column = vec![0.0; n];
        for c in 0..dim {
            for (k, v) in proposals.iter().enumerate() {
                column[k] = v[c];
            }
            column.sort_by(f64::total_cmp);
            let kept = &column[self.trim..n - self.trim];
            out[c] = kept.iter().sum::<f64>() / kept.len() as f64;
        }
        Ok(Aggregation::mixed(out))
    }

    fn name(&self) -> String {
        format!("trimmed-mean(trim={})", self.trim)
    }
}

/// Median of a mutable slice (lower median for even lengths is averaged with
/// the upper one).
fn median_in_place(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposals() -> Vec<Vector> {
        vec![
            Vector::from(vec![1.0, 10.0]),
            Vector::from(vec![2.0, 20.0]),
            Vector::from(vec![3.0, 30.0]),
            Vector::from(vec![4.0, 40.0]),
            Vector::from(vec![1000.0, -999.0]), // outlier
        ]
    }

    #[test]
    fn median_resists_a_single_outlier() {
        let med = CoordinateWiseMedian::new();
        let out = med.aggregate(&proposals()).unwrap();
        assert_eq!(out.as_slice(), &[3.0, 20.0]);
        assert_eq!(med.name(), "coordinate-median");
    }

    #[test]
    fn median_even_count_averages_middle_pair() {
        let ps = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
            Vector::from(vec![10.0]),
        ];
        let out = CoordinateWiseMedian.aggregate(&ps).unwrap();
        assert_eq!(out.as_slice(), &[2.5]);
    }

    #[test]
    fn median_rejects_malformed_input() {
        assert!(CoordinateWiseMedian.aggregate(&[]).is_err());
        assert!(CoordinateWiseMedian
            .aggregate(&[Vector::zeros(1), Vector::zeros(2)])
            .is_err());
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        let tm = TrimmedMean::new(1);
        assert_eq!(tm.trim(), 1);
        let out = tm.aggregate(&proposals()).unwrap();
        // First coordinate keeps {2, 3, 4} -> 3; second keeps {10, 20, 30} -> 20.
        assert_eq!(out.as_slice(), &[3.0, 20.0]);
        assert!(tm.name().contains("trim=1"));
    }

    #[test]
    fn trimmed_mean_with_zero_trim_is_average() {
        let ps = proposals();
        let tm = TrimmedMean::new(0).aggregate(&ps).unwrap();
        let avg = crate::Average.aggregate(&ps).unwrap();
        assert!(tm.distance(&avg) < 1e-12);
    }

    #[test]
    fn trimmed_mean_rejects_excessive_trim() {
        let tm = TrimmedMean::new(3);
        assert!(matches!(
            tm.aggregate(&proposals()),
            Err(AggregationError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn median_helper_handles_odd_and_even() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_in_place(&mut [7.0]), 7.0);
    }
}
