//! Coordinate-wise robust statistics: median and trimmed mean.
//!
//! These rules are not part of the PODC paper but are the standard robust
//! baselines the follow-up literature compares Krum against (the
//! robust-location-estimation framing of Chen et al., arXiv:1412.1411); they
//! are included so the experiment drivers can report a fuller comparison
//! (clearly labelled as extensions in EXPERIMENTS.md).
//!
//! ## Cache-blocked column pipeline
//!
//! Both rules reduce each *coordinate* over all proposals. A naive
//! per-coordinate gather strides across every proposal vector (`n` cache
//! lines touched per coordinate), which is cache-hostile at large `d`. The
//! implementation here transposes a *block* of coordinates at a time into the
//! context's column buffer — sized to stay L1-resident — then reduces each
//! contiguous column. Blocks are independent, so under
//! [`ExecutionPolicy::Parallel`](crate::ExecutionPolicy) (or `Auto` on large
//! inputs) they fan out over the `rayon` pool; the sequential path reuses the
//! single context buffer and performs zero heap allocations after warm-up.
//! Both paths reduce identical column contents in identical order, so their
//! outputs are bit-identical (pinned by property tests below).

use krum_tensor::Vector;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::aggregator::{validate_proposals, Aggregation, Aggregator};
use crate::context::AggregationContext;
use crate::error::AggregationError;

/// Number of coordinates per transposed block, sized so one `n × block`
/// block of `f64`s stays within ~32 KiB (L1-resident).
fn block_columns(n: usize) -> usize {
    const BLOCK_BYTES: usize = 32 * 1024;
    (BLOCK_BYTES / (8 * n.max(1))).clamp(1, 512)
}

/// Gathers coordinates `[c0, c0 + width)` of every proposal into `columns`:
/// column `k` (coordinate `c0 + k`) occupies `columns[k*n .. (k+1)*n]` in
/// worker order. Reads each proposal contiguously; writes land in a buffer
/// small enough to stay cache-resident.
fn transpose_block(proposals: &[Vector], c0: usize, width: usize, columns: &mut [f64]) {
    let n = proposals.len();
    for (w, v) in proposals.iter().enumerate() {
        for (k, &x) in v.as_slice()[c0..c0 + width].iter().enumerate() {
            columns[k * n + w] = x;
        }
    }
}

/// Applies `reduce` to the column of every coordinate, writing the result
/// into `out[c]`. The sequential path reuses `columns` (zero allocations
/// once warmed up); the parallel path gives each block task its own
/// pool-allocated buffer so blocks proceed independently.
fn reduce_columns(
    proposals: &[Vector],
    out: &mut [f64],
    columns: &mut Vec<f64>,
    parallel: bool,
    reduce: impl Fn(&mut [f64]) -> f64 + Sync,
) {
    let n = proposals.len();
    let block = block_columns(n);
    if parallel && out.len() > block {
        let tasks: Vec<(usize, &mut [f64])> = out.chunks_mut(block).enumerate().collect();
        tasks.into_par_iter().for_each(|(b, chunk)| {
            let mut local = vec![0.0; n * chunk.len()];
            transpose_block(proposals, b * block, chunk.len(), &mut local);
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = reduce(&mut local[k * n..(k + 1) * n]);
            }
        });
    } else {
        columns.clear();
        columns.resize(n * block, 0.0);
        for (b, chunk) in out.chunks_mut(block).enumerate() {
            transpose_block(proposals, b * block, chunk.len(), columns);
            for (k, slot) in chunk.iter_mut().enumerate() {
                *slot = reduce(&mut columns[k * n..(k + 1) * n]);
            }
        }
    }
}

/// Whether a coordinate-wise reduction over `n × dim` values is worth the
/// thread pool.
fn use_parallel_columns(ctx: &AggregationContext, n: usize, dim: usize) -> bool {
    match ctx.policy() {
        crate::ExecutionPolicy::Sequential => false,
        crate::ExecutionPolicy::Parallel => true,
        crate::ExecutionPolicy::Auto => n * dim >= 1 << 16 && rayon::current_num_threads() > 1,
    }
}

/// Coordinate-wise median of the proposals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoordinateWiseMedian;

impl CoordinateWiseMedian {
    /// Creates the coordinate-wise median rule.
    pub fn new() -> Self {
        Self
    }
}

impl Aggregator for CoordinateWiseMedian {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        let parallel = use_parallel_columns(ctx, proposals.len(), dim);
        ctx.begin_mixed(dim);
        reduce_columns(
            proposals,
            ctx.output.value.as_mut_slice(),
            &mut ctx.columns,
            parallel,
            median_in_place,
        );
        Ok(())
    }

    fn name(&self) -> String {
        "coordinate-median".into()
    }
}

/// Coordinate-wise trimmed mean: per coordinate, drop the `trim` largest and
/// `trim` smallest values and average the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrimmedMean {
    trim: usize,
}

impl TrimmedMean {
    /// Creates a trimmed mean that removes `trim` values from each tail of
    /// every coordinate.
    pub fn new(trim: usize) -> Self {
        Self { trim }
    }

    /// Number of values trimmed from each tail.
    pub fn trim(&self) -> usize {
        self.trim
    }
}

impl Aggregator for TrimmedMean {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        let n = proposals.len();
        if 2 * self.trim >= n {
            return Err(AggregationError::config(
                "trimmed-mean",
                format!("trim = {} removes all {n} proposals", self.trim),
            ));
        }
        let trim = self.trim;
        let parallel = use_parallel_columns(ctx, n, dim);
        ctx.begin_mixed(dim);
        reduce_columns(
            proposals,
            ctx.output.value.as_mut_slice(),
            &mut ctx.columns,
            parallel,
            |column: &mut [f64]| {
                column.sort_unstable_by(f64::total_cmp);
                let kept = &column[trim..n - trim];
                kept.iter().sum::<f64>() / kept.len() as f64
            },
        );
        Ok(())
    }

    fn name(&self) -> String {
        format!("trimmed-mean(trim={})", self.trim)
    }
}

/// Median of a mutable slice (lower median for even lengths is averaged with
/// the upper one). Uses an in-place unstable sort: equal `f64`s under
/// `total_cmp` are bit-identical, so the result matches a stable sort —
/// without the stable sort's temporary allocation.
fn median_in_place(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecutionPolicy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn proposals() -> Vec<Vector> {
        vec![
            Vector::from(vec![1.0, 10.0]),
            Vector::from(vec![2.0, 20.0]),
            Vector::from(vec![3.0, 30.0]),
            Vector::from(vec![4.0, 40.0]),
            Vector::from(vec![1000.0, -999.0]), // outlier
        ]
    }

    #[test]
    fn median_resists_a_single_outlier() {
        let med = CoordinateWiseMedian::new();
        let out = med.aggregate(&proposals()).unwrap();
        assert_eq!(out.as_slice(), &[3.0, 20.0]);
        assert_eq!(med.name(), "coordinate-median");
    }

    #[test]
    fn median_even_count_averages_middle_pair() {
        let ps = vec![
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![3.0]),
            Vector::from(vec![10.0]),
        ];
        let out = CoordinateWiseMedian.aggregate(&ps).unwrap();
        assert_eq!(out.as_slice(), &[2.5]);
    }

    #[test]
    fn median_rejects_malformed_input() {
        assert!(CoordinateWiseMedian.aggregate(&[]).is_err());
        assert!(CoordinateWiseMedian
            .aggregate(&[Vector::zeros(1), Vector::zeros(2)])
            .is_err());
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        let tm = TrimmedMean::new(1);
        assert_eq!(tm.trim(), 1);
        let out = tm.aggregate(&proposals()).unwrap();
        // First coordinate keeps {2, 3, 4} -> 3; second keeps {10, 20, 30} -> 20.
        assert_eq!(out.as_slice(), &[3.0, 20.0]);
        assert!(tm.name().contains("trim=1"));
    }

    #[test]
    fn trimmed_mean_with_zero_trim_is_average() {
        let ps = proposals();
        let tm = TrimmedMean::new(0).aggregate(&ps).unwrap();
        let avg = crate::Average.aggregate(&ps).unwrap();
        assert!(tm.distance(&avg) < 1e-12);
    }

    #[test]
    fn trimmed_mean_rejects_excessive_trim() {
        let tm = TrimmedMean::new(3);
        assert!(matches!(
            tm.aggregate(&proposals()),
            Err(AggregationError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn median_helper_handles_odd_and_even() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median_in_place(&mut [7.0]), 7.0);
    }

    #[test]
    fn block_sizing_is_sane() {
        assert_eq!(block_columns(1), 512);
        assert!(block_columns(40) >= 64);
        // Huge clusters still make progress one coordinate at a time.
        assert_eq!(block_columns(1 << 20), 1);
    }

    /// The blocked transpose gathers exactly the per-coordinate columns the
    /// old strided loop used, in worker order.
    #[test]
    fn transpose_block_matches_strided_gather() {
        let ps: Vec<Vector> = (0..5)
            .map(|w| Vector::from((0..7).map(|c| (w * 10 + c) as f64).collect::<Vec<_>>()))
            .collect();
        let mut columns = vec![0.0; 5 * 3];
        transpose_block(&ps, 2, 3, &mut columns);
        for k in 0..3 {
            for w in 0..5 {
                assert_eq!(columns[k * 5 + w], ps[w][2 + k]);
            }
        }
    }

    /// Reference implementation: the pre-refactor per-coordinate strided
    /// gather, kept verbatim as the oracle the blocked paths are pinned to.
    fn reference_columnwise(proposals: &[Vector], reduce: impl Fn(&mut [f64]) -> f64) -> Vector {
        let dim = proposals[0].dim();
        let mut out = Vector::zeros(dim);
        let mut column = vec![0.0; proposals.len()];
        for c in 0..dim {
            for (k, v) in proposals.iter().enumerate() {
                column[k] = v[c];
            }
            out[c] = reduce(&mut column);
        }
        out
    }

    /// Satellite property test: the cache-blocked sequential path and the
    /// rayon-parallel path produce **bit-identical** medians / trimmed means,
    /// and both match the naive strided-gather reference, over seeded random
    /// proposal sets whose dimensions straddle the block size.
    #[test]
    fn blocked_paths_match_reference_bitwise() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for trial in 0..12 {
            let n = 3 + trial % 7; // 3..=9
            let block = block_columns(n);
            // Dimensions below, at and above one block, plus a ragged tail.
            let dim = match trial % 4 {
                0 => 3,
                1 => block,
                2 => 2 * block + 1,
                _ => block / 2 + 7,
            };
            let spread = [0.01, 1.0, 100.0][trial % 3];
            let ps: Vec<Vector> = (0..n)
                .map(|_| Vector::gaussian(dim, 0.0, spread, &mut rng))
                .collect();
            let trim = (n - 1) / 2;

            type Reduce<'a> = Box<dyn Fn(&mut [f64]) -> f64 + 'a>;
            for rule_idx in 0..2 {
                let reduce_ref: Reduce<'_> = if rule_idx == 0 {
                    Box::new(median_in_place)
                } else {
                    Box::new(|col: &mut [f64]| {
                        col.sort_unstable_by(f64::total_cmp);
                        let kept = &col[trim..n - trim];
                        kept.iter().sum::<f64>() / kept.len() as f64
                    })
                };
                let expected = reference_columnwise(&ps, reduce_ref);
                let mut seq = AggregationContext::with_policy(ExecutionPolicy::Sequential);
                let mut par = AggregationContext::with_policy(ExecutionPolicy::Parallel);
                if rule_idx == 0 {
                    CoordinateWiseMedian.aggregate_in(&mut seq, &ps).unwrap();
                    CoordinateWiseMedian.aggregate_in(&mut par, &ps).unwrap();
                } else {
                    TrimmedMean::new(trim).aggregate_in(&mut seq, &ps).unwrap();
                    TrimmedMean::new(trim).aggregate_in(&mut par, &ps).unwrap();
                }
                assert_eq!(
                    seq.output().value,
                    expected,
                    "trial {trial} rule {rule_idx}: sequential != reference"
                );
                assert_eq!(
                    par.output().value,
                    expected,
                    "trial {trial} rule {rule_idx}: parallel != reference"
                );
            }
        }
    }

    /// NaN coordinates stay where `total_cmp` puts them in both paths. The
    /// dimension spans several blocks so the Parallel-policy context really
    /// takes the fan-out branch (per-block local buffers), not the
    /// sequential fallback.
    #[test]
    fn nan_columns_are_deterministic_across_paths() {
        let n = 3;
        let dim = 2 * block_columns(n) + 1;
        let ps: Vec<Vector> = (0..n)
            .map(|w| {
                Vector::from(
                    (0..dim)
                        .map(|c| {
                            // One NaN per worker, in different blocks.
                            if c == w * block_columns(n) {
                                f64::NAN
                            } else {
                                (w * dim + c) as f64
                            }
                        })
                        .collect::<Vec<f64>>(),
                )
            })
            .collect();
        let mut seq = AggregationContext::with_policy(ExecutionPolicy::Sequential);
        let mut par = AggregationContext::with_policy(ExecutionPolicy::Parallel);
        CoordinateWiseMedian.aggregate_in(&mut seq, &ps).unwrap();
        CoordinateWiseMedian.aggregate_in(&mut par, &ps).unwrap();
        // Compare bit patterns so NaN == NaN positions count as equal.
        let bits = |v: &Vector| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&seq.output().value), bits(&par.output().value));
        // A NaN-free coordinate: the median of the three worker values.
        assert_eq!(seq.output().value[1], (dim + 1) as f64);
    }
}
