//! Distance-based selection rules.
//!
//! [`ClosestToBarycenter`] is the rule the paper *rejects* in Section 4 and
//! Figure 2: select the proposal `U ∈ {V_1, …, V_n}` minimising
//! `Σ_i ‖U − V_i‖²`. Because the criterion sums over **all** proposals —
//! including arbitrarily remote ones — two colluding Byzantine workers defeat
//! it: `f − 1` of them plant remote decoys that drag the barycenter away, and
//! the last one proposes a vector near that displaced barycenter, which is
//! then guaranteed to win. Experiment E2 reproduces exactly this failure.
//!
//! [`GeometricMedian`] (Weiszfeld iteration) is included as an extension
//! baseline: the paper mentions that the Krum analysis is "reminiscent of the
//! geometric median technique".

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::aggregator::{validate_proposals, Aggregation, Aggregator};
use crate::context::AggregationContext;
use crate::error::AggregationError;

/// The flawed distance-based rule of Figure 2: select the proposal minimising
/// the sum of squared distances to **every** proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClosestToBarycenter;

impl ClosestToBarycenter {
    /// Creates the rule.
    pub fn new() -> Self {
        Self
    }

    /// The per-proposal criterion `Σ_j ‖V_i − V_j‖²`, computed with the same
    /// cached-norm pairwise kernel Krum uses (row sums of the distance
    /// matrix).
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError`] for malformed input.
    pub fn scores(&self, proposals: &[Vector]) -> Result<Vec<f64>, AggregationError> {
        validate_proposals(proposals)?;
        let distances = crate::kernel::pairwise_squared_distances(proposals);
        Ok(crate::kernel::row_sums(&distances, proposals.len()))
    }
}

impl Aggregator for ClosestToBarycenter {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        validate_proposals(proposals)?;
        let n = proposals.len();
        let parallel = ctx.policy().use_parallel(n);
        ctx.pairwise_distances_cached(proposals, parallel);
        crate::kernel::row_sums_into(&ctx.distances, n, &mut ctx.scores);
        // NaN-safe argmin shared with Krum. Note the protection is weaker
        // for this rule than for Krum: the criterion sums distances to ALL
        // proposals, so one NaN proposal poisons every score and the whole
        // round degenerates into a structured error (Krum's neighbour sums
        // keep honest scores finite, so there the NaN worker truly never
        // wins and honest rounds survive a poisoned minority).
        let best =
            crate::kernel::argmin(&ctx.scores).ok_or(AggregationError::AllScoresNonFinite {
                rule: "closest-to-barycenter",
            })?;
        ctx.output.value.assign(proposals[best].as_slice());
        ctx.output.set_selection(&[best], &ctx.scores);
        Ok(())
    }

    fn name(&self) -> String {
        "closest-to-barycenter".into()
    }

    fn is_selection_rule(&self) -> bool {
        true
    }
}

/// Geometric median computed with the Weiszfeld algorithm (extension
/// baseline). The output is a mixture, not one of the inputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometricMedian {
    max_iterations: usize,
    tolerance: f64,
}

impl Default for GeometricMedian {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-10,
        }
    }
}

impl GeometricMedian {
    /// Creates a geometric-median rule with default iteration settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a geometric-median rule with explicit Weiszfeld settings.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when `max_iterations` is 0
    /// or `tolerance` is not a positive finite number.
    pub fn with_settings(max_iterations: usize, tolerance: f64) -> Result<Self, AggregationError> {
        if max_iterations == 0 {
            return Err(AggregationError::config(
                "geometric-median",
                "max_iterations must be >= 1",
            ));
        }
        if !(tolerance > 0.0 && tolerance.is_finite()) {
            return Err(AggregationError::config(
                "geometric-median",
                "tolerance must be positive and finite",
            ));
        }
        Ok(Self {
            max_iterations,
            tolerance,
        })
    }
}

impl Aggregator for GeometricMedian {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        // The Weiszfeld iterate lives directly in the output vector; the
        // context's dimension-sized scratch holds the weighted numerator.
        ctx.begin_mixed(dim);
        ctx.coords.clear();
        ctx.coords.resize(dim, 0.0);
        let (current, numerator) = (&mut ctx.output.value, &mut ctx.coords);
        // Start from the coordinate-wise mean (same accumulation order as
        // `Vector::mean_of`).
        for v in proposals {
            current.axpy(1.0, v);
        }
        current.scale(1.0 / proposals.len() as f64);
        for _ in 0..self.max_iterations {
            numerator.fill(0.0);
            let mut denominator = 0.0;
            let mut coincident: Option<&Vector> = None;
            for v in proposals {
                let dist = current.distance(v);
                if dist < 1e-12 {
                    coincident = Some(v);
                    continue;
                }
                let w = 1.0 / dist;
                for (a, b) in numerator.iter_mut().zip(v.iter()) {
                    *a += w * b;
                }
                denominator += w;
            }
            if denominator == 0.0 {
                // Every proposal coincides with the current point.
                break;
            }
            let inv = 1.0 / denominator;
            // Form the candidate, overwrite the iterate and accumulate the
            // squared movement in one pass (no `next` buffer needed). When
            // the iterate hit a data point, the standard Weiszfeld fix-up
            // nudges the candidate towards that point.
            let mut movement_squared = 0.0;
            match coincident {
                Some(v) => {
                    for ((cur, &num), &vc) in current.iter_mut().zip(numerator.iter()).zip(v.iter())
                    {
                        let candidate = (num * inv + vc) * 0.5;
                        let d = *cur - candidate;
                        movement_squared += d * d;
                        *cur = candidate;
                    }
                }
                None => {
                    for (cur, &num) in current.iter_mut().zip(numerator.iter()) {
                        let candidate = num * inv;
                        let d = *cur - candidate;
                        movement_squared += d * d;
                        *cur = candidate;
                    }
                }
            }
            if movement_squared.sqrt() < self.tolerance {
                break;
            }
        }
        Ok(())
    }

    fn name(&self) -> String {
        "geometric-median".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_to_barycenter_picks_central_proposal_without_collusion() {
        let proposals = vec![
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![0.0, 1.0]),
            Vector::from(vec![0.4, 0.4]),
        ];
        let rule = ClosestToBarycenter::new();
        let result = rule.aggregate_detailed(&proposals).unwrap();
        assert_eq!(result.selected_index(), Some(3));
        assert!(rule.is_selection_rule());
        assert_eq!(rule.name(), "closest-to-barycenter");
    }

    #[test]
    fn figure_2_collusion_defeats_closest_to_barycenter() {
        // n = 7, f = 2. Honest gradients cluster near the origin (area C).
        // Byzantine worker #5 plants a decoy far away (area B); worker #6
        // proposes the displaced barycenter b, and wins.
        let honest = vec![
            Vector::from(vec![0.0, 0.1]),
            Vector::from(vec![0.1, -0.1]),
            Vector::from(vec![-0.1, 0.0]),
            Vector::from(vec![0.05, 0.05]),
            Vector::from(vec![-0.05, 0.08]),
        ];
        let decoy = Vector::from(vec![600.0, -600.0]);
        // The colluding proposal sits at the barycenter of the other six.
        let mut six = honest.clone();
        six.push(decoy.clone());
        let colluder = Vector::mean_of(&six).unwrap();
        let mut all = honest.clone();
        all.push(decoy);
        all.push(colluder.clone());

        let result = ClosestToBarycenter.aggregate_detailed(&all).unwrap();
        assert_eq!(
            result.selected_index(),
            Some(6),
            "the colluding Byzantine proposal should win"
        );
        // And that winning vector is far from the honest area.
        assert!(result.value.norm() > 50.0);

        // Krum, configured for the same (n, f), does NOT fall for it.
        let krum = crate::Krum::new(7, 2)
            .unwrap()
            .aggregate_detailed(&all)
            .unwrap();
        assert!(krum.selected_index().unwrap() < 5);
    }

    #[test]
    fn closest_to_barycenter_scores_are_sums_over_all() {
        let proposals = vec![Vector::from(vec![0.0]), Vector::from(vec![2.0])];
        let scores = ClosestToBarycenter.scores(&proposals).unwrap();
        assert_eq!(scores, vec![4.0, 4.0]);
        assert!(ClosestToBarycenter.scores(&[]).is_err());
    }

    #[test]
    fn shared_kernel_matches_naive_double_loop() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let proposals: Vec<Vector> = (0..9)
                .map(|_| Vector::gaussian(23, 0.0, 2.0, &mut rng))
                .collect();
            let fast = ClosestToBarycenter.scores(&proposals).unwrap();
            let slow: Vec<f64> = proposals
                .iter()
                .map(|vi| proposals.iter().map(|vj| vi.squared_distance(vj)).sum())
                .collect();
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-9), "{a} vs {b}");
            }
        }
    }

    /// Satellite regression test for the shared NaN-safe argmin. Unlike
    /// Krum (which only sums the closest neighbours, so honest scores stay
    /// finite), this rule sums distances to **all** proposals: one NaN
    /// proposal poisons every score. The poisoned round must come back as a
    /// structured error — the old behaviour fell back to index 0, silently
    /// selecting a proposal with no basis (possibly the Byzantine one).
    #[test]
    fn nan_scores_become_a_structured_error() {
        let proposals = vec![
            Vector::from(vec![f64::NAN, 0.0]),
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![0.0, 1.0]),
            Vector::from(vec![0.4, 0.4]),
        ];
        // Every score is NaN (each sums a distance to the NaN proposal), so
        // the rule refuses to select rather than picking arbitrarily.
        assert!(matches!(
            ClosestToBarycenter.aggregate_detailed(&proposals),
            Err(AggregationError::AllScoresNonFinite {
                rule: "closest-to-barycenter"
            })
        ));
        // The shared argmin picks the best finite score when one exists.
        assert_eq!(
            crate::kernel::argmin(&[f64::NAN, 7.0, 3.0, f64::NAN]),
            Some(2)
        );
    }

    #[test]
    fn geometric_median_settings_validation() {
        assert!(GeometricMedian::with_settings(0, 1e-9).is_err());
        assert!(GeometricMedian::with_settings(10, -1.0).is_err());
        assert!(GeometricMedian::with_settings(10, f64::NAN).is_err());
        assert!(GeometricMedian::with_settings(10, 1e-9).is_ok());
        assert_eq!(GeometricMedian::new(), GeometricMedian::default());
    }

    #[test]
    fn geometric_median_of_symmetric_points_is_centre() {
        let proposals = vec![
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![-1.0, 0.0]),
            Vector::from(vec![0.0, 1.0]),
            Vector::from(vec![0.0, -1.0]),
        ];
        let gm = GeometricMedian::new().aggregate(&proposals).unwrap();
        assert!(gm.norm() < 1e-6);
    }

    #[test]
    fn geometric_median_resists_an_outlier_better_than_the_mean() {
        let proposals = vec![
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![0.2, 0.0]),
            Vector::from(vec![0.0, 0.2]),
            Vector::from(vec![0.1, 0.1]),
            Vector::from(vec![1000.0, 1000.0]),
        ];
        let gm = GeometricMedian::new().aggregate(&proposals).unwrap();
        let mean = crate::Average.aggregate(&proposals).unwrap();
        let honest_centre = Vector::from(vec![0.075, 0.075]);
        assert!(gm.distance(&honest_centre) < 1.0);
        assert!(mean.distance(&honest_centre) > 100.0);
        assert_eq!(GeometricMedian::new().name(), "geometric-median");
    }

    #[test]
    fn geometric_median_of_identical_points_is_that_point() {
        let proposals = vec![Vector::from(vec![2.0, 3.0]); 5];
        let gm = GeometricMedian::new().aggregate(&proposals).unwrap();
        assert!(gm.distance(&proposals[0]) < 1e-9);
    }

    #[test]
    fn geometric_median_rejects_malformed_input() {
        assert!(GeometricMedian::new().aggregate(&[]).is_err());
    }
}
