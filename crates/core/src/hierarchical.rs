//! Hierarchical (group-sharded) aggregation — the `O(n²·d)` escape hatch.
//!
//! Flat Krum prices every round at `O(n²·d)` (Lemma 4.1), which caps
//! practical cluster sizes in the low hundreds. [`Hierarchical`] shards the
//! `n` workers into `g` deterministic groups (round-robin: worker `w` joins
//! group `w mod g`), runs an *inner* rule independently per group (fanned
//! out across the `rayon` pool), then runs an *outer* rule over the `g`
//! group winners. With `g ≈ √n` the pairwise work drops from `n²` to
//! `≈ n²/g + g²` distance computations — the aggregation-tree architecture
//! real robust-aggregation services use to bound this cost.
//!
//! Round-robin sharding is what makes the Byzantine accounting tractable:
//! the engine places the `f` Byzantine workers at the top of the id range
//! (a contiguous block), and any `f` consecutive ids spread over the `g`
//! residue classes with at most `⌈f/g⌉` per class. Each group therefore
//! faces at most `f_g = ⌈f/g⌉` Byzantine members, and the inner rule is
//! built for `(n_g, f_g)` — Krum's `2·f_g + 2 < n_g` precondition is
//! enforced per group at construction (see
//! [`resilience::hierarchical_bounds`](crate::resilience::hierarchical_bounds)
//! for the derivation, including the outer-stage budget `⌊g·f/n⌋`).
//!
//! NaN containment matches the flat rules: a group whose round is fully
//! poisoned (all scores NaN) forfeits by submitting a NaN winner, which the
//! outer rule's NaN-safe selection then never picks; only when *every*
//! group is poisoned does the whole aggregation surface
//! [`AggregationError::AllScoresNonFinite`].

use std::fmt;
use std::str::FromStr;

use krum_tensor::Vector;
use rayon::prelude::*;

use crate::aggregator::{validate_proposals, Aggregator};
use crate::context::{AggregationContext, ExecutionPolicy};
use crate::error::AggregationError;
use crate::registry::RuleSpec;
use crate::resilience::{hierarchical_bounds, HierarchicalBounds};

/// An aggregation rule usable as the inner or outer stage of
/// [`Hierarchical`] — every registry rule *except* `hierarchical` itself
/// (the type rules out nesting instead of checking for it at runtime).
///
/// Converts losslessly to and from the corresponding [`RuleSpec`] variants
/// and parses from the same textual forms (`"krum"`, `"multi-krum:m=4"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageRule {
    /// Plain averaging.
    Average,
    /// Uniformly weighted averaging.
    UniformWeightedAverage,
    /// The paper's Krum rule (the default for both stages).
    Krum,
    /// Multi-Krum (`None` → `m = n_g − f_g` at build time).
    MultiKrum {
        /// How many best-scored proposals to average (`None` → `n_g − f_g`).
        m: Option<usize>,
    },
    /// Coordinate-wise median.
    Median,
    /// Coordinate-wise trimmed mean (`None` → `trim = f_g` at build time).
    TrimmedMean {
        /// How many extremes to trim per coordinate side (`None` → `f_g`).
        trim: Option<usize>,
    },
    /// Geometric (spatial) median.
    GeometricMedian,
    /// The flawed closest-to-barycenter rule (for experiments).
    ClosestToBarycenter,
    /// The exponential minimum-diameter-subset rule.
    MinDiameterSubset,
    /// **Stateful**: per-worker EWMA reputation weighting. As a stage, the
    /// cross-round state lives in the per-group workspace — usable
    /// in-process, but not checkpointable (see
    /// [`RuleSpec::hierarchical_stateful`]).
    ReputationWeighted {
        /// EWMA step size `η ∈ (0, 1]`.
        eta: f64,
    },
    /// **Stateful**: momentum-anchored centered clipping (same
    /// checkpointing caveat as [`StageRule::ReputationWeighted`]).
    CenteredClip {
        /// Clipping radius `τ > 0`.
        tau: f64,
        /// Anchor momentum `β ∈ [0, 1)`.
        beta: f64,
    },
}

impl StageRule {
    /// The equivalent top-level rule spec.
    pub fn to_rule(self) -> RuleSpec {
        match self {
            Self::Average => RuleSpec::Average,
            Self::UniformWeightedAverage => RuleSpec::UniformWeightedAverage,
            Self::Krum => RuleSpec::Krum,
            Self::MultiKrum { m } => RuleSpec::MultiKrum { m },
            Self::Median => RuleSpec::Median,
            Self::TrimmedMean { trim } => RuleSpec::TrimmedMean { trim },
            Self::GeometricMedian => RuleSpec::GeometricMedian,
            Self::ClosestToBarycenter => RuleSpec::ClosestToBarycenter,
            Self::MinDiameterSubset => RuleSpec::MinDiameterSubset,
            Self::ReputationWeighted { eta } => RuleSpec::ReputationWeighted { eta },
            Self::CenteredClip { tau, beta } => RuleSpec::CenteredClip { tau, beta },
        }
    }

    /// Whether this stage carries cross-round state (see
    /// [`RuleSpec::stateful`]).
    pub fn stateful(self) -> bool {
        matches!(
            self,
            Self::ReputationWeighted { .. } | Self::CenteredClip { .. }
        )
    }

    /// The stage form of a top-level spec; `None` when `rule` is itself
    /// hierarchical (stages do not nest).
    pub fn from_rule(rule: RuleSpec) -> Option<Self> {
        match rule {
            RuleSpec::Average => Some(Self::Average),
            RuleSpec::UniformWeightedAverage => Some(Self::UniformWeightedAverage),
            RuleSpec::Krum => Some(Self::Krum),
            RuleSpec::MultiKrum { m } => Some(Self::MultiKrum { m }),
            RuleSpec::Median => Some(Self::Median),
            RuleSpec::TrimmedMean { trim } => Some(Self::TrimmedMean { trim }),
            RuleSpec::GeometricMedian => Some(Self::GeometricMedian),
            RuleSpec::ClosestToBarycenter => Some(Self::ClosestToBarycenter),
            RuleSpec::MinDiameterSubset => Some(Self::MinDiameterSubset),
            RuleSpec::ReputationWeighted { eta } => Some(Self::ReputationWeighted { eta }),
            RuleSpec::CenteredClip { tau, beta } => Some(Self::CenteredClip { tau, beta }),
            RuleSpec::Hierarchical { .. } => None,
        }
    }

    /// Builds the stage rule for a stage of `n` inputs with `f` Byzantine.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when the stage shape is
    /// infeasible for the rule (e.g. Krum with `2f + 2 ≥ n`).
    pub fn build(self, n: usize, f: usize) -> Result<Box<dyn Aggregator>, AggregationError> {
        self.to_rule().build(n, f)
    }
}

impl fmt::Display for StageRule {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_rule().fmt(out)
    }
}

impl FromStr for StageRule {
    type Err = AggregationError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let rule: RuleSpec = spec.parse()?;
        Self::from_rule(rule).ok_or_else(|| {
            AggregationError::config(
                "hierarchical",
                "inner/outer stages cannot themselves be hierarchical",
            )
        })
    }
}

/// Reusable workspace for one [`Hierarchical`] aggregator, stored inside the
/// caller's [`AggregationContext`] (boxed and lazily created — flat rules
/// never pay for it). Holds one sequential sub-context plus member buffers
/// per group, the winner vectors, and the outer stage's context; everything
/// is refilled in place, so steady-state hierarchical rounds on the
/// sequential policy perform zero heap allocations.
#[derive(Debug)]
pub struct HierWorkspace {
    slots: Vec<GroupSlot>,
    winners: Vec<Vector>,
    outer_ctx: AggregationContext,
}

impl Default for HierWorkspace {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            winners: Vec::new(),
            // The outer stage runs over g small winner vectors — fanning it
            // out would cost more than it saves, and sequential keeps the
            // zero-allocation contract.
            outer_ctx: AggregationContext::with_policy(ExecutionPolicy::Sequential),
        }
    }
}

/// Per-group scratch: the inner rule's context, the gathered member
/// proposals, and the round's outcome.
#[derive(Debug)]
struct GroupSlot {
    ctx: AggregationContext,
    members: Vec<Vector>,
    error: Option<AggregationError>,
}

impl Default for GroupSlot {
    fn default() -> Self {
        Self {
            // Group work is already fanned out across groups; nested
            // parallelism inside a group would oversubscribe the pool.
            ctx: AggregationContext::with_policy(ExecutionPolicy::Sequential),
            members: Vec::new(),
            error: None,
        }
    }
}

/// Two-level aggregation: an inner [`StageRule`] per round-robin group, an
/// outer [`StageRule`] over the group winners.
///
/// Built from [`RuleSpec::Hierarchical`]; see the module docs for the
/// sharding scheme and the Byzantine accounting.
pub struct Hierarchical {
    n: usize,
    f: usize,
    inner: StageRule,
    outer: StageRule,
    bounds: HierarchicalBounds,
    /// One inner rule per group (group sizes differ by at most one, so at
    /// most two distinct configurations, but per-group storage keeps the
    /// indexing trivial).
    inner_rules: Vec<Box<dyn Aggregator>>,
    outer_rule: Box<dyn Aggregator>,
    inner_selects: bool,
}

impl fmt::Debug for Hierarchical {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        out.debug_struct("Hierarchical")
            .field("n", &self.n)
            .field("f", &self.f)
            .field("inner", &self.inner)
            .field("outer", &self.outer)
            .field("bounds", &self.bounds)
            .finish()
    }
}

impl Hierarchical {
    /// Creates a hierarchical rule for `n` workers (`f` Byzantine) sharded
    /// into `groups` round-robin groups.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when the sharding is
    /// structurally impossible (`groups < 2`, `groups > n`, `f ≥ n`) or when
    /// either stage rule rejects its per-stage shape — the inner rule is
    /// built for `(n_g, ⌈f/g⌉)` per group, the outer for `(g, ⌊g·f/n⌋)`.
    pub fn new(
        n: usize,
        f: usize,
        groups: usize,
        inner: StageRule,
        outer: StageRule,
    ) -> Result<Self, AggregationError> {
        let bounds = hierarchical_bounds(n, f, groups)?;
        let inner_rules = (0..groups)
            .map(|k| {
                let size = bounds.group_size(k, n);
                inner.build(size, bounds.group_byzantine).map_err(|e| {
                    AggregationError::config(
                        "hierarchical",
                        format!(
                            "inner rule `{inner}` is infeasible for group {k} \
                             (size {size}, {} byzantine per group): {e}",
                            bounds.group_byzantine
                        ),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let outer_rule = outer.build(groups, bounds.outer_byzantine).map_err(|e| {
            AggregationError::config(
                "hierarchical",
                format!(
                    "outer rule `{outer}` is infeasible over {groups} winners \
                     ({} byzantine budget): {e}",
                    bounds.outer_byzantine
                ),
            )
        })?;
        let inner_selects = inner_rules.iter().all(|r| r.is_selection_rule());
        Ok(Self {
            n,
            f,
            inner,
            outer,
            bounds,
            inner_rules,
            outer_rule,
            inner_selects,
        })
    }

    /// Total number of workers `n`.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Number of tolerated Byzantine workers `f`.
    pub fn byzantine(&self) -> usize {
        self.f
    }

    /// Number of round-robin groups `g`.
    pub fn groups(&self) -> usize {
        self.bounds.groups
    }

    /// The per-group and outer-stage Byzantine accounting.
    pub fn bounds(&self) -> &HierarchicalBounds {
        &self.bounds
    }

    /// Number of members of group `k` (sizes differ by at most one).
    fn group_size(&self, k: usize) -> usize {
        self.bounds.group_size(k, self.n)
    }

    /// Gathers group `k`'s members and runs the inner rule; the outcome is
    /// recorded on the slot (shared-nothing, so groups fan out freely).
    fn run_group(&self, k: usize, slot: &mut GroupSlot, proposals: &[Vector]) {
        let groups = self.bounds.groups;
        slot.members
            .resize_with(self.group_size(k), || Vector::zeros(0));
        for (l, member) in slot.members.iter_mut().enumerate() {
            member.assign(proposals[k + l * groups].as_slice());
        }
        slot.error = self.inner_rules[k]
            .aggregate_in(&mut slot.ctx, &slot.members)
            .err();
    }

    /// Runs both stages into the workspace.
    fn run_stages(
        &self,
        ws: &mut HierWorkspace,
        proposals: &[Vector],
        dim: usize,
        parallel: bool,
    ) -> Result<(), AggregationError> {
        let groups = self.bounds.groups;
        ws.slots.resize_with(groups, GroupSlot::default);
        ws.winners.resize_with(groups, || Vector::zeros(0));
        if parallel && groups >= 2 {
            // The vendored pool has no indexed parallel iterators, so pair
            // each slot with its index serially and fan the tuples out.
            let tasks: Vec<(usize, &mut GroupSlot)> = ws.slots.iter_mut().enumerate().collect();
            tasks
                .into_par_iter()
                .for_each(|(k, slot)| self.run_group(k, slot, proposals));
        } else {
            for (k, slot) in ws.slots.iter_mut().enumerate() {
                self.run_group(k, slot, proposals);
            }
        }
        let mut poisoned = 0usize;
        for (slot, winner) in ws.slots.iter().zip(ws.winners.iter_mut()) {
            match &slot.error {
                None => winner.assign(slot.ctx.output().value.as_slice()),
                // A fully poisoned group forfeits: its NaN winner loses every
                // NaN-safe selection in the outer stage.
                Some(AggregationError::AllScoresNonFinite { .. }) => {
                    poisoned += 1;
                    winner.resize(dim, f64::NAN);
                    winner.fill(f64::NAN);
                }
                Some(other) => return Err(other.clone()),
            }
        }
        if poisoned == groups {
            return Err(AggregationError::AllScoresNonFinite {
                rule: "hierarchical",
            });
        }
        self.outer_rule.aggregate_in(&mut ws.outer_ctx, &ws.winners)
    }

    /// Copies the outer result into the caller's context, mapping group-local
    /// selections and scores back to global worker indices.
    fn finish(&self, ctx: &mut AggregationContext, ws: &HierWorkspace) {
        let groups = self.bounds.groups;
        let outer_out = ws.outer_ctx.output();
        ctx.output.value.assign(outer_out.value.as_slice());
        // Scatter per-member inner scores to global indices (poisoned groups
        // keep NaN); drop the scores entirely if any healthy group's inner
        // rule did not produce a full per-member score vector.
        ctx.scores.clear();
        ctx.scores.resize(self.n, f64::NAN);
        let mut have_scores = true;
        for (k, slot) in ws.slots.iter().enumerate() {
            if slot.error.is_some() {
                continue;
            }
            let scores = &slot.ctx.output().scores;
            if scores.len() != self.group_size(k) {
                have_scores = false;
                break;
            }
            for (l, &score) in scores.iter().enumerate() {
                ctx.scores[k + l * groups] = score;
            }
        }
        // Global selection: only meaningful when the inner stage selects
        // actual proposals (then the outer winner *is* proposal
        // `k + local·g` of the chosen group `k`).
        ctx.order.clear();
        if self.inner_selects {
            for &group in &outer_out.selected {
                if let Some(local) = ws.slots[group].ctx.output().selected_index() {
                    ctx.order.push(group + local * groups);
                }
            }
        }
        if !have_scores {
            ctx.scores.clear();
        }
        let output = &mut ctx.output;
        output.set_selection(&ctx.order, &ctx.scores);
    }
}

impl Aggregator for Hierarchical {
    fn aggregate_detailed(
        &self,
        proposals: &[Vector],
    ) -> Result<crate::Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        if proposals.len() != self.n {
            return Err(AggregationError::WrongWorkerCount {
                expected: self.n,
                found: proposals.len(),
            });
        }
        let parallel = ctx.policy().use_parallel(self.bounds.groups);
        // Take the workspace out of the context so the group contexts and
        // the caller's context are independently borrowable (the Box moves,
        // nothing is copied or allocated).
        let mut ws = ctx.hier.take().unwrap_or_default();
        let outcome = self.run_stages(&mut ws, proposals, dim, parallel);
        if outcome.is_ok() {
            self.finish(ctx, &ws);
        }
        ctx.hier = Some(ws);
        outcome
    }

    fn name(&self) -> String {
        format!(
            "hierarchical(n={},f={},g={},inner={},outer={})",
            self.n, self.f, self.bounds.groups, self.inner, self.outer
        )
    }

    fn is_selection_rule(&self) -> bool {
        self.inner_selects && self.outer_rule.is_selection_rule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aggregator, Krum};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// n workers, the last f Byzantine outliers, honest clustered near 1.0.
    fn clustered(n: usize, f: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut proposals: Vec<Vector> = (0..n - f)
            .map(|_| Vector::gaussian(dim, 1.0, 0.05, &mut rng))
            .collect();
        proposals.extend((0..f).map(|_| Vector::gaussian(dim, -80.0, 5.0, &mut rng)));
        proposals
    }

    #[test]
    fn construction_validates_both_stages() {
        // Feasible: n = 24, f = 3, g = 4 → groups of 6 with f_g = 1.
        let h = Hierarchical::new(24, 3, 4, StageRule::Krum, StageRule::Krum).unwrap();
        assert_eq!(h.workers(), 24);
        assert_eq!(h.byzantine(), 3);
        assert_eq!(h.groups(), 4);
        assert_eq!(h.bounds().group_byzantine, 1);
        assert_eq!(h.bounds().outer_byzantine, 0);
        assert!(h.name().contains("g=4"));
        assert!(h.is_selection_rule());
        // Inner Krum infeasible: groups of 4 with f_g = 1 need 2·1+2 < 4.
        let err = Hierarchical::new(16, 4, 4, StageRule::Krum, StageRule::Median).unwrap_err();
        assert!(err.to_string().contains("inner rule"), "{err}");
        // Outer Krum infeasible over 2 winners.
        let err = Hierarchical::new(16, 1, 2, StageRule::Median, StageRule::Krum).unwrap_err();
        assert!(err.to_string().contains("outer rule"), "{err}");
        // Structural rejections.
        assert!(Hierarchical::new(10, 1, 1, StageRule::Median, StageRule::Median).is_err());
        assert!(Hierarchical::new(10, 1, 11, StageRule::Median, StageRule::Median).is_err());
    }

    #[test]
    fn hierarchical_krum_selects_an_honest_worker_under_outliers() {
        let n = 30;
        let f = 4;
        let proposals = clustered(n, f, 8, 7);
        let h = Hierarchical::new(n, f, 5, StageRule::Krum, StageRule::Krum).unwrap();
        let result = h.aggregate_detailed(&proposals).unwrap();
        let idx = result.selected_index().unwrap();
        assert!(idx < n - f, "selected Byzantine worker {idx}");
        assert_eq!(result.value, proposals[idx], "winner is a real proposal");
        assert_eq!(result.scores.len(), n, "inner Krum scores scatter globally");
    }

    #[test]
    fn sequential_and_parallel_agree_bit_for_bit() {
        let proposals = clustered(40, 6, 16, 11);
        let h = Hierarchical::new(40, 6, 8, StageRule::Krum, StageRule::Krum).unwrap();
        let mut seq = AggregationContext::with_policy(ExecutionPolicy::Sequential);
        let mut par = AggregationContext::with_policy(ExecutionPolicy::Parallel);
        h.aggregate_in(&mut seq, &proposals).unwrap();
        h.aggregate_in(&mut par, &proposals).unwrap();
        assert_eq!(seq.output(), par.output());
    }

    #[test]
    fn workspace_is_reused_across_rounds_and_shapes_settle() {
        let h = Hierarchical::new(20, 2, 4, StageRule::Krum, StageRule::Krum).unwrap();
        let mut ctx = AggregationContext::with_policy(ExecutionPolicy::Sequential);
        let first = {
            let proposals = clustered(20, 2, 6, 3);
            h.aggregate_in(&mut ctx, &proposals).unwrap();
            ctx.output().clone()
        };
        // Re-running the same round through the warmed workspace matches a
        // fresh context exactly.
        let proposals = clustered(20, 2, 6, 3);
        h.aggregate_in(&mut ctx, &proposals).unwrap();
        assert_eq!(ctx.output(), &first);
        assert_eq!(ctx.output(), &h.aggregate_detailed(&proposals).unwrap());
    }

    #[test]
    fn poisoned_group_forfeits_and_poisoned_cluster_errors() {
        let n = 20;
        let mut proposals = clustered(n, 2, 4, 13);
        let h = Hierarchical::new(n, 2, 4, StageRule::Krum, StageRule::Krum).unwrap();
        // Poison every member of group 1 (w % 4 == 1): that group forfeits,
        // the aggregation still lands on an honest worker elsewhere.
        for w in (0..n).filter(|w| w % 4 == 1) {
            proposals[w] = Vector::filled(4, f64::NAN);
        }
        let result = h.aggregate_detailed(&proposals).unwrap();
        let idx = result.selected_index().unwrap();
        assert_ne!(idx % 4, 1, "the poisoned group must not win");
        assert!(result.value.is_finite());
        // Poison everything: structured error, not a NaN aggregate.
        let all_nan = vec![Vector::filled(4, f64::NAN); n];
        assert!(matches!(
            h.aggregate_detailed(&all_nan),
            Err(AggregationError::AllScoresNonFinite {
                rule: "hierarchical"
            })
        ));
    }

    #[test]
    fn mixing_stages_produce_mixture_outputs() {
        let proposals = clustered(24, 3, 5, 17);
        let h = Hierarchical::new(24, 3, 4, StageRule::Median, StageRule::Median).unwrap();
        assert!(!h.is_selection_rule());
        let result = h.aggregate_detailed(&proposals).unwrap();
        assert!(result.selected.is_empty());
        assert!(result.value.is_finite());
        // The median-of-medians stays inside the honest cluster.
        assert!(result.value.iter().all(|x| (x - 1.0).abs() < 0.5));
    }

    #[test]
    fn rejects_malformed_input() {
        let h = Hierarchical::new(20, 2, 4, StageRule::Krum, StageRule::Krum).unwrap();
        assert!(matches!(
            h.aggregate(&[]),
            Err(AggregationError::NoProposals)
        ));
        assert!(matches!(
            h.aggregate(&vec![Vector::zeros(3); 19]),
            Err(AggregationError::WrongWorkerCount {
                expected: 20,
                found: 19
            })
        ));
    }

    #[test]
    fn grouping_beats_flat_krum_asymptotics_on_agreement() {
        // Not a perf test — a semantics check: hierarchical Krum agrees with
        // flat Krum on which *side* wins (honest cluster), even though the
        // exact winner index may differ.
        let n = 60;
        let f = 9;
        let proposals = clustered(n, f, 10, 23);
        let flat = Krum::new(n, f).unwrap();
        let flat_idx = flat
            .aggregate_detailed(&proposals)
            .unwrap()
            .selected_index()
            .unwrap();
        let h = Hierarchical::new(n, f, 6, StageRule::Krum, StageRule::Krum).unwrap();
        let hier_idx = h
            .aggregate_detailed(&proposals)
            .unwrap()
            .selected_index()
            .unwrap();
        assert!(flat_idx < n - f);
        assert!(hier_idx < n - f);
    }

    #[test]
    fn stage_rule_round_trips() {
        let stages = [
            StageRule::Average,
            StageRule::UniformWeightedAverage,
            StageRule::Krum,
            StageRule::MultiKrum { m: Some(3) },
            StageRule::MultiKrum { m: None },
            StageRule::Median,
            StageRule::TrimmedMean { trim: Some(1) },
            StageRule::GeometricMedian,
            StageRule::ClosestToBarycenter,
            StageRule::MinDiameterSubset,
            StageRule::ReputationWeighted { eta: 0.25 },
            StageRule::CenteredClip {
                tau: 3.5,
                beta: 0.5,
            },
        ];
        for stage in stages {
            let parsed: StageRule = stage.to_string().parse().unwrap();
            assert_eq!(parsed, stage);
            assert_eq!(StageRule::from_rule(stage.to_rule()), Some(stage));
        }
        assert!("hierarchical:groups=4".parse::<StageRule>().is_err());
        assert_eq!(
            StageRule::from_rule(RuleSpec::Hierarchical {
                groups: 4,
                inner: StageRule::Krum,
                outer: StageRule::Krum,
            }),
            None
        );
    }
}
