//! Stateful defenses: rules whose output depends on previous rounds.
//!
//! Every other rule in this crate is a pure function of one round's
//! proposals. The two rules here answer the *adaptive* adversaries (see
//! `krum-attacks`), which exploit exactly that memorylessness: an inlier
//! attacker is indistinguishable within a single round but leaves a
//! consistent bias across rounds. [`ReputationWeighted`] remembers
//! per-worker distance-to-aggregate scores; [`CenteredClip`] remembers a
//! momentum anchor and clips every deviation against it.
//!
//! The cross-round memory lives in the caller's [`AggregationContext`] as a
//! [`StatefulState`] (so the rules themselves stay `&self`, exactly like the
//! zero-alloc `aggregate_in` contract requires), and is serde-serialisable
//! so server checkpoints can persist it — resume stays bit-identical. A
//! fresh context means fresh state; [`Aggregator::aggregate_detailed`]
//! therefore behaves like the rule's first-ever round.

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::aggregator::{validate_proposals, Aggregator};
use crate::context::AggregationContext;
use crate::error::AggregationError;

/// Weights never decay to exactly zero — a worker can always earn its way
/// back, and the weighted mean stays well-defined.
const MIN_WEIGHT: f64 = 1e-6;
/// Floor for the median-distance scale, so an all-identical round (zero
/// distances) scores everyone 1 instead of dividing by zero.
const MIN_SCALE: f64 = 1e-12;

/// Cross-round memory of the stateful rules, owned by the
/// [`AggregationContext`] and serialised into server checkpoints.
///
/// Both buffers start empty and are (re)initialised lazily by the rule that
/// uses them: `reputation` grows to cover the highest worker id seen (new
/// entries start at weight `1`), `clip_center` is reset whenever the model
/// dimension changes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StatefulState {
    /// Per-worker EWMA reputation weights ([`ReputationWeighted`]).
    pub reputation: Vec<f64>,
    /// Momentum-anchored clipping center ([`CenteredClip`]).
    pub clip_center: Vec<f64>,
}

impl StatefulState {
    /// `max − min` of the reputation weights, `None` while no reputation
    /// has been formed — the `reputation_spread` metrics column.
    pub fn reputation_spread(&self) -> Option<f64> {
        let mut iter = self.reputation.iter();
        let first = *iter.next()?;
        let (mut lo, mut hi) = (first, first);
        for &w in iter {
            lo = lo.min(w);
            hi = hi.max(w);
        }
        Some(hi - lo)
    }
}

/// The layer contract on top of [`Aggregator`] for rules with cross-round
/// state: the state lives in the context, the rule stays `&self`, and the
/// caller can drop the memory explicitly (new job, changed threat model)
/// without rebuilding the rule.
pub trait StatefulAggregator: Aggregator {
    /// Clears this rule's slice of the context's cross-round state; the
    /// next aggregation behaves like the rule's first-ever round.
    fn reset_state(&self, ctx: &mut AggregationContext);
}

/// Reputation-weighted averaging: a per-worker EWMA of agreement with the
/// aggregate.
///
/// Each round, with current weights `r`:
///
/// 1. anchor `A = Σ rᵢ·Vᵢ / Σ rᵢ` over the finite proposals;
/// 2. per-slot distance `dᵢ = ‖Vᵢ − A‖`, scaled by the round's median
///    distance `s`: `scoreᵢ = 1 / (1 + (dᵢ/s)²)` (non-finite proposals
///    score `0`);
/// 3. EWMA update `rᵢ ← (1 − η)·rᵢ + η·scoreᵢ` (floored at `1e-6`);
/// 4. output the mean re-weighted by the *updated* `r`.
///
/// Workers that consistently sit farther from the aggregate than the round
/// median — an inlier drifter steering one direction every round — lose
/// weight geometrically, while one bad round costs an honest worker only
/// `η` of its weight. Weights are keyed by worker id when the caller
/// declares the slot→worker map ([`AggregationContext::set_slot_workers`]);
/// without a map, slot index is used (identical under barrier execution,
/// where slot `i` *is* worker `i`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationWeighted {
    eta: f64,
}

impl ReputationWeighted {
    /// Creates the rule with EWMA step `eta`.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] unless `0 < eta ≤ 1`.
    pub fn new(eta: f64) -> Result<Self, AggregationError> {
        if !(eta > 0.0 && eta <= 1.0) {
            return Err(AggregationError::config(
                "reputation-weighted",
                "eta must be in (0, 1]",
            ));
        }
        Ok(Self { eta })
    }

    /// EWMA step size.
    pub fn eta(&self) -> f64 {
        self.eta
    }
}

impl Aggregator for ReputationWeighted {
    fn aggregate_detailed(
        &self,
        proposals: &[Vector],
    ) -> Result<crate::Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        let n = proposals.len();
        ctx.begin_mixed(dim);
        if ctx.stateful.is_none() {
            ctx.stateful = Some(Box::default());
        }
        // Disjoint field borrows: the state box, the slot→worker map, the
        // output vector and the scratch buffers never alias.
        let Some(state) = ctx.stateful.as_deref_mut() else {
            unreachable!("installed above");
        };
        let slot_workers: &[usize] = if ctx.slot_workers.len() == n {
            &ctx.slot_workers
        } else {
            &[]
        };
        let worker = |slot: usize| -> usize {
            if slot_workers.is_empty() {
                slot
            } else {
                slot_workers[slot]
            }
        };
        let highest = (0..n).map(worker).max().unwrap_or(0);
        if state.reputation.len() <= highest {
            state.reputation.resize(highest + 1, 1.0);
        }

        // Phase 1: anchor = mean weighted by the carried-over reputations.
        let value = &mut ctx.output.value;
        let mut total = 0.0;
        let mut finite = 0usize;
        for (slot, v) in proposals.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let w = state.reputation[worker(slot)];
            for c in 0..dim {
                value[c] += w * v[c];
            }
            total += w;
            finite += 1;
        }
        if finite == 0 {
            return Err(AggregationError::AllScoresNonFinite {
                rule: "reputation-weighted",
            });
        }
        for c in 0..dim {
            value[c] /= total;
        }

        // Phase 2: per-slot distances to the anchor, median-scaled.
        ctx.scratch.clear();
        ctx.scratch.resize(n, f64::NAN);
        for (slot, v) in proposals.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let mut sq = 0.0;
            for c in 0..dim {
                let d = v[c] - value[c];
                sq += d * d;
            }
            ctx.scratch[slot] = sq.sqrt();
        }
        ctx.order.clear();
        ctx.order
            .extend((0..n).filter(|&slot| ctx.scratch[slot].is_finite()));
        let distances = &ctx.scratch;
        ctx.order
            .sort_by(|&a, &b| distances[a].total_cmp(&distances[b]));
        let k = ctx.order.len();
        let median = if k % 2 == 1 {
            distances[ctx.order[k / 2]]
        } else {
            0.5 * (distances[ctx.order[k / 2 - 1]] + distances[ctx.order[k / 2]])
        };
        let scale = median.max(MIN_SCALE);

        // Phase 3: EWMA reputation update for every slot present this round.
        for (slot, &distance) in distances.iter().enumerate() {
            let score = if distance.is_finite() {
                let r = distance / scale;
                1.0 / (1.0 + r * r)
            } else {
                0.0
            };
            let w = &mut state.reputation[worker(slot)];
            *w = ((1.0 - self.eta) * *w + self.eta * score).max(MIN_WEIGHT);
        }

        // Phase 4: the output is the mean re-weighted by the updated
        // reputations.
        value.fill(0.0);
        let mut total = 0.0;
        for (slot, v) in proposals.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let w = state.reputation[worker(slot)];
            for c in 0..dim {
                value[c] += w * v[c];
            }
            total += w;
        }
        for c in 0..dim {
            value[c] /= total;
        }
        Ok(())
    }

    fn name(&self) -> String {
        format!("reputation-weighted(eta={})", self.eta)
    }
}

impl StatefulAggregator for ReputationWeighted {
    fn reset_state(&self, ctx: &mut AggregationContext) {
        if let Some(state) = ctx.stateful.as_deref_mut() {
            state.reputation.clear();
        }
    }
}

/// Centered clipping (Karimireddy et al.-style): deviations from a
/// momentum-carried anchor are norm-clipped at `τ` before averaging.
///
/// With anchor `c` (zero on the first round):
///
/// ```text
/// F = c + (1/k) Σ clip(Vᵢ − c, τ)          over the k finite proposals
/// c ← β·c + (1 − β)·F
/// ```
///
/// where `clip(x, τ)` rescales `x` to norm `τ` when `‖x‖ > τ`. No attacker
/// can move the aggregate by more than `τ·f/n` per round regardless of
/// magnitude, and the anchor's momentum means the bound is anchored to
/// *history*, not to whatever the current round claims the center is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenteredClip {
    tau: f64,
    beta: f64,
}

impl CenteredClip {
    /// Creates the rule with clipping radius `tau` and anchor momentum
    /// `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] unless `tau` is positive
    /// and finite and `0 ≤ beta < 1`.
    pub fn new(tau: f64, beta: f64) -> Result<Self, AggregationError> {
        if !(tau > 0.0 && tau.is_finite()) {
            return Err(AggregationError::config(
                "centered-clip",
                "tau must be positive and finite",
            ));
        }
        if !(0.0..1.0).contains(&beta) {
            return Err(AggregationError::config(
                "centered-clip",
                "beta must be in [0, 1)",
            ));
        }
        Ok(Self { tau, beta })
    }

    /// Clipping radius.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Anchor momentum.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Aggregator for CenteredClip {
    fn aggregate_detailed(
        &self,
        proposals: &[Vector],
    ) -> Result<crate::Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        ctx.begin_mixed(dim);
        if ctx.stateful.is_none() {
            ctx.stateful = Some(Box::default());
        }
        let Some(state) = ctx.stateful.as_deref_mut() else {
            unreachable!("installed above");
        };
        if state.clip_center.len() != dim {
            state.clip_center.clear();
            state.clip_center.resize(dim, 0.0);
        }
        let center = &mut state.clip_center;
        let value = &mut ctx.output.value;
        let mut finite = 0usize;
        for v in proposals {
            if !v.is_finite() {
                continue;
            }
            let mut sq = 0.0;
            for c in 0..dim {
                let d = v[c] - center[c];
                sq += d * d;
            }
            let norm = sq.sqrt();
            let scale = if norm > self.tau {
                self.tau / norm
            } else {
                1.0
            };
            for c in 0..dim {
                value[c] += scale * (v[c] - center[c]);
            }
            finite += 1;
        }
        if finite == 0 {
            return Err(AggregationError::AllScoresNonFinite {
                rule: "centered-clip",
            });
        }
        let inv = 1.0 / finite as f64;
        for c in 0..dim {
            value[c] = center[c] + inv * value[c];
        }
        // Momentum anchor update — finite by induction: the clipped mean is
        // within tau of the (finite) previous anchor.
        for c in 0..dim {
            center[c] = self.beta * center[c] + (1.0 - self.beta) * value[c];
        }
        Ok(())
    }

    fn name(&self) -> String {
        format!("centered-clip(tau={},beta={})", self.tau, self.beta)
    }
}

impl StatefulAggregator for CenteredClip {
    fn reset_state(&self, ctx: &mut AggregationContext) {
        if let Some(state) = ctx.stateful.as_deref_mut() {
            state.clip_center.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecutionPolicy;

    fn cloud(n: usize, dim: usize, fill: f64) -> Vec<Vector> {
        (0..n)
            .map(|i| {
                let mut v = Vector::filled(dim, fill);
                v[0] += i as f64 * 0.01;
                v
            })
            .collect()
    }

    #[test]
    fn reputation_weighted_validates_and_names() {
        assert!(ReputationWeighted::new(0.0).is_err());
        assert!(ReputationWeighted::new(1.5).is_err());
        assert!(ReputationWeighted::new(f64::NAN).is_err());
        let rule = ReputationWeighted::new(0.2).unwrap();
        assert_eq!(rule.eta(), 0.2);
        assert_eq!(rule.name(), "reputation-weighted(eta=0.2)");
        assert!(!rule.is_selection_rule());
    }

    #[test]
    fn reputation_downweights_a_persistent_outlier() {
        let rule = ReputationWeighted::new(0.3).unwrap();
        let mut ctx = AggregationContext::with_policy(ExecutionPolicy::Sequential);
        let mut proposals = cloud(8, 4, 1.0);
        proposals[7] = Vector::filled(4, 5.0); // persistent outlier
        for _ in 0..30 {
            rule.aggregate_in(&mut ctx, &proposals).unwrap();
        }
        let state = ctx.stateful_state().unwrap();
        let outlier = state.reputation[7];
        let honest = state.reputation[0];
        assert!(
            outlier < honest * 0.1,
            "outlier weight {outlier} vs honest {honest}"
        );
        // The aggregate converges toward the honest cluster, not the naive
        // mean (which would sit at 1.5 in every coordinate).
        let out = &ctx.output().value;
        assert!(out[1] < 1.1, "aggregate pulled to {}", out[1]);
        // Spread is reported for the metrics column.
        assert!(state.reputation_spread().unwrap() > 0.5);
    }

    #[test]
    fn reputation_state_survives_rounds_and_resets_explicitly() {
        let rule = ReputationWeighted::new(0.5).unwrap();
        let mut ctx = AggregationContext::new();
        let proposals = cloud(5, 3, 1.0);
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        let after_one = ctx.stateful_state().unwrap().clone();
        assert_eq!(after_one.reputation.len(), 5);
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        assert_ne!(
            ctx.stateful_state().unwrap().reputation,
            after_one.reputation
        );
        rule.reset_state(&mut ctx);
        assert!(ctx.stateful_state().unwrap().reputation.is_empty());
        // Export/import round-trips through the public accessors.
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        let exported = ctx.stateful_state().cloned();
        let mut fresh = AggregationContext::new();
        fresh.set_stateful_state(exported.clone());
        assert_eq!(fresh.stateful_state(), exported.as_ref());
    }

    #[test]
    fn slot_worker_map_keys_reputation_by_worker_id() {
        let rule = ReputationWeighted::new(0.4).unwrap();
        let mut ctx = AggregationContext::new();
        let mut proposals = cloud(4, 3, 1.0);
        proposals[2] = Vector::filled(3, 9.0); // outlier in slot 2
                                               // Slot 2 is worker 7 this round.
        ctx.set_slot_workers(&[0, 1, 7, 3]);
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        let state = ctx.stateful_state().unwrap();
        assert_eq!(state.reputation.len(), 8);
        assert!(state.reputation[7] < state.reputation[0]);
        // Worker 2 never participated — still at the initial weight.
        assert_eq!(state.reputation[2], 1.0);
        // A stale map (wrong length) falls back to slot identity.
        ctx.set_slot_workers(&[0, 1]);
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        assert!(ctx.stateful_state().unwrap().reputation[2] < 1.0);
    }

    #[test]
    fn reputation_weighted_handles_non_finite_proposals() {
        let rule = ReputationWeighted::new(0.2).unwrap();
        let mut ctx = AggregationContext::new();
        let mut proposals = cloud(5, 3, 1.0);
        proposals[4] = Vector::filled(3, f64::NAN);
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        assert!(ctx.output().value.is_finite());
        // The poisoned slot's weight decays.
        assert!(ctx.stateful_state().unwrap().reputation[4] < 1.0);
        // Fully poisoned round is a structured error.
        let all_nan = vec![Vector::filled(3, f64::NAN); 4];
        assert!(matches!(
            rule.aggregate_in(&mut ctx, &all_nan),
            Err(AggregationError::AllScoresNonFinite {
                rule: "reputation-weighted"
            })
        ));
        assert!(matches!(
            rule.aggregate_detailed(&[]),
            Err(AggregationError::NoProposals)
        ));
    }

    #[test]
    fn reputation_weighted_is_deterministic_across_contexts() {
        let rule = ReputationWeighted::new(0.25).unwrap();
        let proposals = cloud(7, 5, 2.0);
        let mut a = AggregationContext::new();
        let mut b = AggregationContext::new();
        for _ in 0..5 {
            rule.aggregate_in(&mut a, &proposals).unwrap();
            rule.aggregate_in(&mut b, &proposals).unwrap();
            assert_eq!(a.output(), b.output());
            assert_eq!(a.stateful_state(), b.stateful_state());
        }
    }

    #[test]
    fn centered_clip_validates_and_names() {
        assert!(CenteredClip::new(0.0, 0.5).is_err());
        assert!(CenteredClip::new(f64::INFINITY, 0.5).is_err());
        assert!(CenteredClip::new(1.0, 1.0).is_err());
        assert!(CenteredClip::new(1.0, -0.1).is_err());
        let rule = CenteredClip::new(2.5, 0.9).unwrap();
        assert_eq!(rule.tau(), 2.5);
        assert_eq!(rule.beta(), 0.9);
        assert_eq!(rule.name(), "centered-clip(tau=2.5,beta=0.9)");
    }

    #[test]
    fn centered_clip_bounds_the_attacker_displacement() {
        // 9 honest at 1.0, one attacker at 1000: with tau = 1 the attacker
        // moves the aggregate by at most tau/n per round.
        let rule = CenteredClip::new(1.0, 0.5).unwrap();
        let mut ctx = AggregationContext::new();
        let mut proposals = cloud(10, 3, 1.0);
        proposals[9] = Vector::filled(3, 1000.0);
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        let first = ctx.output().value.clone();
        assert!(first.norm() < 2.0, "first aggregate {first:?}");
        // Repeated rounds converge near the honest cluster, not the mean
        // (the naive mean sits at ~101).
        for _ in 0..200 {
            rule.aggregate_in(&mut ctx, &proposals).unwrap();
        }
        let out = &ctx.output().value;
        assert!(
            (out[0] - 1.0).abs() < 0.5,
            "converged to {} instead of the honest cluster",
            out[0]
        );
    }

    #[test]
    fn centered_clip_state_and_degenerate_inputs() {
        let rule = CenteredClip::new(5.0, 0.9).unwrap();
        let mut ctx = AggregationContext::new();
        let proposals = cloud(4, 2, 3.0);
        rule.aggregate_in(&mut ctx, &proposals).unwrap();
        let center_1 = ctx.stateful_state().unwrap().clip_center.clone();
        assert_eq!(center_1.len(), 2);
        assert!(center_1.iter().all(|x| x.is_finite() && *x > 0.0));
        // A dimension change resets the anchor rather than mixing spaces.
        let wider = cloud(4, 6, 1.0);
        rule.aggregate_in(&mut ctx, &wider).unwrap();
        assert_eq!(ctx.stateful_state().unwrap().clip_center.len(), 6);
        rule.reset_state(&mut ctx);
        assert!(ctx.stateful_state().unwrap().clip_center.is_empty());
        // Non-finite proposals are skipped; all-poisoned errors.
        let mut mixed = cloud(3, 2, 1.0);
        mixed[0] = Vector::filled(2, f64::NAN);
        let mut ctx = AggregationContext::new();
        rule.aggregate_in(&mut ctx, &mixed).unwrap();
        assert!(ctx.output().value.is_finite());
        assert!(matches!(
            rule.aggregate_in(&mut ctx, &[Vector::filled(2, f64::NAN)]),
            Err(AggregationError::AllScoresNonFinite {
                rule: "centered-clip"
            })
        ));
    }

    #[test]
    fn stateful_rules_behind_the_layer_trait() {
        let rules: Vec<Box<dyn StatefulAggregator>> = vec![
            Box::new(ReputationWeighted::new(0.2).unwrap()),
            Box::new(CenteredClip::new(10.0, 0.9).unwrap()),
        ];
        let proposals = cloud(6, 3, 1.0);
        let mut ctx = AggregationContext::new();
        for rule in &rules {
            rule.aggregate_in(&mut ctx, &proposals).unwrap();
            assert!(ctx.output().value.is_finite());
            assert!(ctx.output().selected.is_empty(), "mixing rules");
            rule.reset_state(&mut ctx);
        }
    }

    #[test]
    fn reputation_spread_reports_none_without_state() {
        assert_eq!(StatefulState::default().reputation_spread(), None);
        let state = StatefulState {
            reputation: vec![1.0, 0.25, 0.5],
            clip_center: Vec::new(),
        };
        assert_eq!(state.reputation_spread(), Some(0.75));
    }
}
