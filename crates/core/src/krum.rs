//! The Krum and Multi-Krum choice functions (Section 4 of the paper).

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::aggregator::{validate_proposals, Aggregation, Aggregator};
use crate::context::AggregationContext;
use crate::error::AggregationError;
use crate::kernel;

/// The Krum choice function.
///
/// For each proposal `V_i`, Krum computes the score
/// `s(i) = Σ_{i→j} ‖V_i − V_j‖²` where the sum ranges over the `n − f − 2`
/// proposals closest to `V_i`, and outputs the proposal with the smallest
/// score. Ties are broken towards the smallest worker identifier (footnote 3
/// of the paper).
///
/// Construction validates the paper's resilience precondition `2f + 2 < n`
/// (Proposition 4.2); the weaker structural requirement `n − f − 2 ≥ 1` is
/// implied by it.
///
/// Complexity: `O(n² · d)` (Lemma 4.1) — the benchmark `krum_scaling`
/// regenerates that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Krum {
    n: usize,
    f: usize,
}

impl Krum {
    /// Creates a Krum rule for `n` workers of which at most `f` are Byzantine.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] unless `2f + 2 < n`.
    pub fn new(n: usize, f: usize) -> Result<Self, AggregationError> {
        if 2 * f + 2 >= n {
            return Err(AggregationError::config(
                "krum",
                format!("Krum requires 2f + 2 < n, got n = {n}, f = {f}"),
            ));
        }
        Ok(Self { n, f })
    }

    /// Total number of workers `n` this rule was configured for.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Number of tolerated Byzantine workers `f`.
    pub fn byzantine(&self) -> usize {
        self.f
    }

    /// Number of neighbours (`n − f − 2`) each score sums over.
    pub fn neighbours(&self) -> usize {
        self.n - self.f - 2
    }

    /// Smallest `n` for which Krum tolerates `f` Byzantine workers
    /// (the `2f + 2 < n` precondition), i.e. `2f + 3`.
    pub fn min_workers(f: usize) -> usize {
        2 * f + 3
    }

    /// Computes the Krum score of every proposal.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError`] for malformed input (see
    /// [`Aggregator::aggregate_detailed`]).
    pub fn scores(&self, proposals: &[Vector]) -> Result<Vec<f64>, AggregationError> {
        self.check(proposals)?;
        let distances = kernel::pairwise_squared_distances(proposals);
        Ok(kernel::scores_from_distances(
            &distances,
            self.n,
            self.neighbours(),
        ))
    }

    fn check(&self, proposals: &[Vector]) -> Result<(), AggregationError> {
        validate_proposals(proposals)?;
        if proposals.len() != self.n {
            return Err(AggregationError::WrongWorkerCount {
                expected: self.n,
                found: proposals.len(),
            });
        }
        Ok(())
    }
}

impl Aggregator for Krum {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        self.check(proposals)?;
        let parallel = ctx.policy().use_parallel(self.n);
        ctx.pairwise_distances_cached(proposals, parallel);
        kernel::scores_from_distances_into(
            &ctx.distances,
            self.n,
            self.neighbours(),
            &mut ctx.scratch,
            &mut ctx.scores,
        );
        let best = kernel::argmin(&ctx.scores)
            .ok_or(AggregationError::AllScoresNonFinite { rule: "krum" })?;
        ctx.output.value.assign(proposals[best].as_slice());
        ctx.output.set_selection(&[best], &ctx.scores);
        Ok(())
    }

    fn name(&self) -> String {
        format!("krum(n={},f={})", self.n, self.f)
    }

    fn is_selection_rule(&self) -> bool {
        true
    }
}

/// The Multi-Krum choice function (extension from the full version of the
/// paper): compute Krum scores, keep the `m` best-scored proposals and output
/// their average. `m = 1` coincides with [`Krum`]; `m = n` coincides with
/// plain averaging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiKrum {
    n: usize,
    f: usize,
    m: usize,
}

impl MultiKrum {
    /// Creates a Multi-Krum rule selecting the `m` best proposals out of `n`,
    /// tolerating `f` Byzantine workers.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] unless `2f + 2 < n` and
    /// `1 ≤ m ≤ n − f` (selecting more than `n − f` proposals would force a
    /// Byzantine one into the average).
    pub fn new(n: usize, f: usize, m: usize) -> Result<Self, AggregationError> {
        if 2 * f + 2 >= n {
            return Err(AggregationError::config(
                "multi-krum",
                format!("Multi-Krum requires 2f + 2 < n, got n = {n}, f = {f}"),
            ));
        }
        if m == 0 || m > n - f {
            return Err(AggregationError::config(
                "multi-krum",
                format!(
                    "Multi-Krum requires 1 <= m <= n - f, got m = {m}, n - f = {}",
                    n - f
                ),
            ));
        }
        Ok(Self { n, f, m })
    }

    /// Total number of workers `n`.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Number of tolerated Byzantine workers `f`.
    pub fn byzantine(&self) -> usize {
        self.f
    }

    /// Number of proposals averaged into the output.
    pub fn selected_count(&self) -> usize {
        self.m
    }
}

impl Aggregator for MultiKrum {
    fn aggregate_detailed(&self, proposals: &[Vector]) -> Result<Aggregation, AggregationError> {
        let mut ctx = AggregationContext::new();
        self.aggregate_in(&mut ctx, proposals)?;
        Ok(ctx.into_output())
    }

    fn aggregate_in(
        &self,
        ctx: &mut AggregationContext,
        proposals: &[Vector],
    ) -> Result<(), AggregationError> {
        let dim = validate_proposals(proposals)?;
        if proposals.len() != self.n {
            return Err(AggregationError::WrongWorkerCount {
                expected: self.n,
                found: proposals.len(),
            });
        }
        let parallel = ctx.policy().use_parallel(self.n);
        ctx.pairwise_distances_cached(proposals, parallel);
        kernel::scores_from_distances_into(
            &ctx.distances,
            self.n,
            self.n - self.f - 2,
            &mut ctx.scratch,
            &mut ctx.scores,
        );
        // The m best worker indices by (score, index) — the same tie-breaking
        // rule as Krum, extended to a set — found by partial selection. A
        // fully NaN score vector has no usable ordering at all: refuse to
        // average poisoned proposals (total_cmp would otherwise pick the
        // first m indices regardless of their content).
        if ctx.scores.iter().all(|s| s.is_nan()) {
            return Err(AggregationError::AllScoresNonFinite { rule: "multi-krum" });
        }
        kernel::smallest_indices_into(&ctx.scores, self.m, &mut ctx.order);
        // Average the selected proposals in place, without cloning them.
        let value = ctx.output.reset_value(dim);
        for &i in &ctx.order {
            value.axpy(1.0, &proposals[i]);
        }
        value.scale(1.0 / ctx.order.len() as f64);
        ctx.output.set_selection(&ctx.order, &ctx.scores);
        Ok(())
    }

    fn name(&self) -> String {
        format!("multi-krum(n={},f={},m={})", self.n, self.f, self.m)
    }

    fn is_selection_rule(&self) -> bool {
        // Only the degenerate m = 1 case returns one of its inputs verbatim.
        self.m == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// n = 7, f = 2: five honest proposals clustered near (1, 0), two
    /// Byzantine outliers far away.
    fn clustered_proposals() -> Vec<Vector> {
        vec![
            Vector::from(vec![1.00, 0.00]),
            Vector::from(vec![1.05, 0.05]),
            Vector::from(vec![0.95, -0.05]),
            Vector::from(vec![1.02, 0.01]),
            Vector::from(vec![0.98, 0.03]),
            Vector::from(vec![40.0, -55.0]),
            Vector::from(vec![-60.0, 70.0]),
        ]
    }

    #[test]
    fn construction_enforces_2f_plus_2_lt_n() {
        assert!(Krum::new(4, 1).is_err());
        assert!(Krum::new(5, 1).is_ok());
        assert!(Krum::new(24, 11).is_err());
        assert!(Krum::new(25, 11).is_ok());
        assert_eq!(Krum::min_workers(1), 5);
        assert_eq!(Krum::min_workers(11), 25);
        let k = Krum::new(7, 2).unwrap();
        assert_eq!(k.workers(), 7);
        assert_eq!(k.byzantine(), 2);
        assert_eq!(k.neighbours(), 3);
    }

    #[test]
    fn krum_selects_an_honest_vector_under_outliers() {
        let proposals = clustered_proposals();
        let krum = Krum::new(7, 2).unwrap();
        let result = krum.aggregate_detailed(&proposals).unwrap();
        let idx = result.selected_index().unwrap();
        assert!(idx < 5, "Krum selected Byzantine proposal {idx}");
        assert_eq!(result.value, proposals[idx]);
        assert!(krum.is_selection_rule());
        assert!(krum.name().contains("f=2"));
    }

    #[test]
    fn krum_scores_are_higher_for_outliers() {
        let proposals = clustered_proposals();
        let krum = Krum::new(7, 2).unwrap();
        let scores = krum.scores(&proposals).unwrap();
        let max_honest = scores[..5].iter().copied().fold(f64::MIN, f64::max);
        let min_byz = scores[5..].iter().copied().fold(f64::MAX, f64::min);
        assert!(
            max_honest < min_byz,
            "every honest score ({max_honest}) should be below every Byzantine score ({min_byz})"
        );
    }

    #[test]
    fn krum_matches_bruteforce_definition() {
        // Independent, literal implementation of the definition in Section 4.
        fn brute_force_krum(proposals: &[Vector], f: usize) -> usize {
            let n = proposals.len();
            let mut best = 0;
            let mut best_score = f64::INFINITY;
            for i in 0..n {
                let mut dists: Vec<f64> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| proposals[i].squared_distance(&proposals[j]))
                    .collect();
                dists.sort_by(f64::total_cmp);
                let score: f64 = dists.iter().take(n - f - 2).sum();
                if score < best_score {
                    best_score = score;
                    best = i;
                }
            }
            best
        }
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for trial in 0..20 {
            let n = 9;
            let f = 3;
            let proposals: Vec<Vector> = (0..n)
                .map(|_| Vector::gaussian(6, 0.0, 1.0 + trial as f64 * 0.1, &mut rng))
                .collect();
            let krum = Krum::new(n, f).unwrap();
            let got = krum
                .aggregate_detailed(&proposals)
                .unwrap()
                .selected_index()
                .unwrap();
            assert_eq!(got, brute_force_krum(&proposals, f), "trial {trial}");
        }
    }

    #[test]
    fn krum_tie_break_prefers_smallest_index() {
        // Two identical clusters; all scores within a cluster are equal, so the
        // winner must be the smallest index overall.
        let proposals = vec![
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.0, 1.0]),
            Vector::from(vec![1.0, 1.0]),
        ];
        let krum = Krum::new(5, 1).unwrap();
        let idx = krum
            .aggregate_detailed(&proposals)
            .unwrap()
            .selected_index()
            .unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn krum_rejects_malformed_input() {
        let krum = Krum::new(5, 1).unwrap();
        assert!(matches!(
            krum.aggregate(&[]),
            Err(AggregationError::NoProposals)
        ));
        let wrong_count = vec![Vector::zeros(2); 4];
        assert!(matches!(
            krum.aggregate(&wrong_count),
            Err(AggregationError::WrongWorkerCount {
                expected: 5,
                found: 4
            })
        ));
        let mut mismatched = vec![Vector::zeros(2); 5];
        mismatched[3] = Vector::zeros(3);
        assert!(matches!(
            krum.aggregate(&mismatched),
            Err(AggregationError::DimensionMismatch { index: 3, .. })
        ));
    }

    #[test]
    fn krum_output_is_always_one_of_the_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let proposals: Vec<Vector> = (0..11)
            .map(|_| Vector::gaussian(8, 0.0, 3.0, &mut rng))
            .collect();
        let krum = Krum::new(11, 4).unwrap();
        let out = krum.aggregate(&proposals).unwrap();
        assert!(proposals.contains(&out));
    }

    #[test]
    fn multi_krum_validation() {
        assert!(MultiKrum::new(4, 1, 1).is_err());
        assert!(MultiKrum::new(7, 2, 0).is_err());
        assert!(MultiKrum::new(7, 2, 6).is_err()); // m > n − f
        let mk = MultiKrum::new(7, 2, 5).unwrap();
        assert_eq!(mk.workers(), 7);
        assert_eq!(mk.byzantine(), 2);
        assert_eq!(mk.selected_count(), 5);
        assert!(!mk.is_selection_rule());
        assert!(MultiKrum::new(7, 2, 1).unwrap().is_selection_rule());
        assert!(mk.name().contains("m=5"));
    }

    #[test]
    fn multi_krum_with_m1_equals_krum() {
        let proposals = clustered_proposals();
        let krum = Krum::new(7, 2).unwrap();
        let mk = MultiKrum::new(7, 2, 1).unwrap();
        assert_eq!(
            krum.aggregate(&proposals).unwrap(),
            mk.aggregate(&proposals).unwrap()
        );
    }

    #[test]
    fn multi_krum_excludes_byzantine_outliers() {
        let proposals = clustered_proposals();
        let mk = MultiKrum::new(7, 2, 4).unwrap();
        let result = mk.aggregate_detailed(&proposals).unwrap();
        assert_eq!(result.selected.len(), 4);
        assert!(result.selected.iter().all(|&i| i < 5));
        // The output is the mean of the selected (honest) proposals, hence
        // close to the honest cluster centre.
        assert!(result.value.distance(&Vector::from(vec![1.0, 0.0])) < 0.2);
    }

    #[test]
    fn multi_krum_with_m_equal_n_minus_f_averages_selected() {
        let proposals = clustered_proposals();
        let mk = MultiKrum::new(7, 2, 5).unwrap();
        let result = mk.aggregate_detailed(&proposals).unwrap();
        let manual = Vector::mean_of(
            &result
                .selected
                .iter()
                .map(|&i| proposals[i].clone())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(result.value, manual);
    }

    #[test]
    fn multi_krum_rejects_wrong_worker_count() {
        let mk = MultiKrum::new(7, 2, 3).unwrap();
        assert!(matches!(
            mk.aggregate(&vec![Vector::zeros(2); 6]),
            Err(AggregationError::WrongWorkerCount { .. })
        ));
    }

    #[test]
    fn scores_from_distances_uses_k_nearest_only() {
        // 4 points on a line: 0, 1, 2, 10. With 1 neighbour, the score of each
        // point is the squared distance to its single nearest neighbour.
        let proposals = vec![
            Vector::from(vec![0.0]),
            Vector::from(vec![1.0]),
            Vector::from(vec![2.0]),
            Vector::from(vec![10.0]),
        ];
        let d = kernel::pairwise_squared_distances(&proposals);
        let s = kernel::scores_from_distances(&d, 4, 1);
        assert_eq!(s, vec![1.0, 1.0, 1.0, 64.0]);
    }

    /// Satellite property test: the optimized Krum/Multi-Krum paths select
    /// exactly the indices the naive (sort-based, per-pair) path selects,
    /// over seeded random proposal sets, and the scores agree to 1e-9.
    #[test]
    fn optimized_paths_match_naive_selection() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for trial in 0..40 {
            let n = 7 + trial % 8; // 7..=14
            let f = (n - 3) / 2;
            let dim = 1 + (trial * 13) % 64;
            let spread = [0.05, 1.0, 25.0][trial % 3];
            let proposals: Vec<Vector> = (0..n)
                .map(|_| Vector::gaussian(dim, 0.5, spread, &mut rng))
                .collect();
            let krum = Krum::new(n, f).unwrap();
            let fast_scores = krum.scores(&proposals).unwrap();
            let naive_scores = crate::kernel::naive::krum_scores(&proposals, n - f - 2);
            for (a, b) in fast_scores.iter().zip(&naive_scores) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-9),
                    "trial {trial}: score {a} vs naive {b}"
                );
            }
            let fast_choice = krum
                .aggregate_detailed(&proposals)
                .unwrap()
                .selected_index()
                .unwrap();
            let naive_choice = crate::kernel::naive::krum_choose(&proposals, f);
            assert_eq!(fast_choice, naive_choice, "trial {trial}");
            // Multi-Krum: the selected set must match the naive full sort.
            let m = (n - f).max(1);
            let mk = MultiKrum::new(n, f, m).unwrap();
            let selected = mk.aggregate_detailed(&proposals).unwrap().selected;
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| naive_scores[a].total_cmp(&naive_scores[b]).then(a.cmp(&b)));
            order.truncate(m);
            assert_eq!(selected, order, "trial {trial}");
        }
    }

    /// Satellite regression test: a NaN proposal at index 0 used to poison
    /// `argmin` (NaN never compares less, so index 0 stayed "best"); the
    /// NaN-safe argmin must skip it for Krum and never select it.
    #[test]
    fn nan_proposal_at_index_zero_is_never_selected() {
        let mut proposals = clustered_proposals();
        proposals[0] = Vector::filled(2, f64::NAN);
        let krum = Krum::new(7, 2).unwrap();
        let result = krum.aggregate_detailed(&proposals).unwrap();
        let idx = result.selected_index().unwrap();
        assert_ne!(idx, 0, "the NaN proposal must not win");
        assert!(result.value.is_finite());
        assert!(result.scores[0].is_nan());
        // Multi-Krum keeps NaN out of the selected set as well.
        let mk = MultiKrum::new(7, 2, 4).unwrap();
        let selected = mk.aggregate_detailed(&proposals).unwrap().selected;
        assert!(!selected.contains(&0));
    }

    /// Satellite regression test: a fully NaN-poisoned round used to make
    /// `argmin` fall back to index 0, silently handing the round to proposal
    /// 0 (which may be Byzantine). It must now come back as a structured
    /// error from both Krum and Multi-Krum.
    #[test]
    fn fully_poisoned_round_is_a_structured_error_not_proposal_zero() {
        let proposals = vec![Vector::filled(2, f64::NAN); 7];
        let krum = Krum::new(7, 2).unwrap();
        assert!(matches!(
            krum.aggregate_detailed(&proposals),
            Err(AggregationError::AllScoresNonFinite { rule: "krum" })
        ));
        let mut ctx = AggregationContext::new();
        assert!(krum.aggregate_in(&mut ctx, &proposals).is_err());
        let mk = MultiKrum::new(7, 2, 3).unwrap();
        assert!(matches!(
            mk.aggregate_detailed(&proposals),
            Err(AggregationError::AllScoresNonFinite { rule: "multi-krum" })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let krum = Krum::new(9, 3).unwrap();
        let json = serde_json::to_string(&krum).unwrap();
        let back: Krum = serde_json::from_str(&json).unwrap();
        assert_eq!(krum, back);
    }
}
