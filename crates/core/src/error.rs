//! Error type for aggregation rules.

use thiserror::Error;

/// Errors raised by aggregation rules.
#[derive(Debug, Clone, PartialEq, Eq, Error)]
pub enum AggregationError {
    /// The rule received no proposals.
    #[error("aggregation requires at least one proposal")]
    NoProposals,
    /// The proposals do not all share the same dimension.
    #[error("proposal {index} has dimension {found} but the first proposal has {expected}")]
    DimensionMismatch {
        /// Index of the offending proposal.
        index: usize,
        /// Dimension of the first proposal.
        expected: usize,
        /// Dimension of the offending proposal.
        found: usize,
    },
    /// The number of proposals does not match the configured cluster size.
    #[error("rule was configured for {expected} workers but received {found} proposals")]
    WrongWorkerCount {
        /// Cluster size the rule was configured for.
        expected: usize,
        /// Number of proposals received.
        found: usize,
    },
    /// The `(n, f)` (or other) configuration is invalid for this rule.
    #[error("invalid configuration for `{rule}`: {message}")]
    InvalidConfig {
        /// Rule that rejected the configuration.
        rule: &'static str,
        /// Explanation of the rejection.
        message: String,
    },
    /// Every candidate score was non-finite — a fully poisoned round. The
    /// rule has no basis to select any proposal (the old behaviour silently
    /// fell back to proposal 0, which may be Byzantine).
    #[error(
        "rule `{rule}`: every candidate score is non-finite (fully poisoned round); \
         refusing to select a proposal"
    )]
    AllScoresNonFinite {
        /// Rule that observed the poisoned round.
        rule: &'static str,
    },
}

impl AggregationError {
    /// Convenience constructor for [`AggregationError::InvalidConfig`].
    pub fn config(rule: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidConfig {
            rule,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AggregationError::DimensionMismatch {
            index: 3,
            expected: 10,
            found: 7,
        };
        let text = e.to_string();
        assert!(text.contains('3') && text.contains("10") && text.contains('7'));
        let e = AggregationError::config("krum", "need 2f + 2 < n");
        assert!(e.to_string().contains("krum"));
        assert!(e.to_string().contains("2f + 2 < n"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<AggregationError>();
    }
}
