//! E3 / Lemma 4.1 — Krum's aggregation cost scales as `O(n² · d)`.
//!
//! Two sweeps: cluster size `n` at fixed dimension, and dimension `d` at fixed
//! cluster size. The reported times should grow roughly quadratically in `n`
//! and linearly in `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use krum_bench::{rng, synthetic_proposals};
use krum_core::{Aggregator, Krum};

fn krum_vs_cluster_size(c: &mut Criterion) {
    let dim = 1_000;
    let mut group = c.benchmark_group("krum_scaling/n");
    group.sample_size(20);
    for &n in &[10usize, 20, 40, 80, 160] {
        let f = (n - 3) / 2;
        let mut r = rng(42);
        let proposals = synthetic_proposals(n, f, dim, 0.2, &mut r);
        let krum = Krum::new(n, f).unwrap();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &proposals, |b, proposals| {
            b.iter(|| krum.aggregate(std::hint::black_box(proposals)).unwrap());
        });
    }
    group.finish();
}

fn krum_vs_dimension(c: &mut Criterion) {
    let n = 20;
    let f = 6;
    let mut group = c.benchmark_group("krum_scaling/d");
    group.sample_size(20);
    for &dim in &[100usize, 1_000, 10_000, 100_000] {
        let mut r = rng(43);
        let proposals = synthetic_proposals(n, f, dim, 0.2, &mut r);
        let krum = Krum::new(n, f).unwrap();
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(dim),
            &proposals,
            |b, proposals| {
                b.iter(|| krum.aggregate(std::hint::black_box(proposals)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = krum_vs_cluster_size, krum_vs_dimension
}
criterion_main!(benches);
