//! E3 / Lemma 4.1 — Krum's aggregation cost scales as `O(n² · d)`.
//!
//! Two sweeps: cluster size `n` at fixed dimension, and dimension `d` at fixed
//! cluster size. The reported times should grow roughly quadratically in `n`
//! and linearly in `d`.
//!
//! The `krum_scaling/n_naive` group times the pre-optimization per-pair path
//! (`krum-core`'s `naive` feature) on the same inputs, so the cached-norm
//! kernel's speedup stays measured; `BENCH_krum_scaling.json` at the repo
//! root records the committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use krum_bench::{rng, synthetic_proposals};
use krum_core::{naive, Aggregator, Krum};

fn krum_vs_cluster_size(c: &mut Criterion) {
    let dim = 1_000;
    let mut group = c.benchmark_group("krum_scaling/n");
    group.sample_size(20);
    for &n in &[10usize, 20, 40, 80, 160] {
        let f = (n - 3) / 2;
        let mut r = rng(42);
        let proposals = synthetic_proposals(n, f, dim, 0.2, &mut r);
        let krum = Krum::new(n, f).unwrap();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &proposals,
            |b, proposals| {
                b.iter(|| krum.aggregate(std::hint::black_box(proposals)).unwrap());
            },
        );
    }
    group.finish();
}

/// The pre-optimization reference path on the same inputs as
/// `krum_vs_cluster_size` — the denominator of the kernel's speedup claim.
fn naive_vs_cluster_size(c: &mut Criterion) {
    let dim = 1_000;
    let mut group = c.benchmark_group("krum_scaling/n_naive");
    group.sample_size(20);
    for &n in &[10usize, 20, 40, 80, 160] {
        let f = (n - 3) / 2;
        let mut r = rng(42);
        let proposals = synthetic_proposals(n, f, dim, 0.2, &mut r);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &proposals,
            |b, proposals| {
                b.iter(|| naive::krum_choose(std::hint::black_box(proposals), f));
            },
        );
    }
    group.finish();
}

fn krum_vs_dimension(c: &mut Criterion) {
    let n = 20;
    let f = 6;
    let mut group = c.benchmark_group("krum_scaling/d");
    group.sample_size(20);
    for &dim in &[100usize, 1_000, 10_000, 100_000] {
        let mut r = rng(43);
        let proposals = synthetic_proposals(n, f, dim, 0.2, &mut r);
        let krum = Krum::new(n, f).unwrap();
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(dim),
            &proposals,
            |b, proposals| {
                b.iter(|| krum.aggregate(std::hint::black_box(proposals)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = krum_vs_cluster_size, naive_vs_cluster_size, krum_vs_dimension
}
criterion_main!(benches);
