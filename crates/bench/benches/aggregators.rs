//! Aggregation-rule comparison at a fixed cluster shape, including the
//! exponential minimum-diameter-subset rule the paper rejects on cost grounds
//! (Section 1): Krum should sit within a small factor of plain averaging,
//! while the subset rule is orders of magnitude slower even at small `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krum_bench::{rng, synthetic_proposals};
use krum_core::{
    Aggregator, Average, ClosestToBarycenter, CoordinateWiseMedian, GeometricMedian, Krum,
    MinimumDiameterSubset, MultiKrum, TrimmedMean,
};

fn rules_at_medium_dimension(c: &mut Criterion) {
    let n = 15;
    let f = 3;
    let dim = 10_000;
    let mut r = rng(7);
    let proposals = synthetic_proposals(n, f, dim, 0.2, &mut r);
    let rules: Vec<(&str, Box<dyn Aggregator>)> = vec![
        ("average", Box::new(Average::new())),
        ("krum", Box::new(Krum::new(n, f).unwrap())),
        ("multi-krum", Box::new(MultiKrum::new(n, f, n - f).unwrap())),
        ("median", Box::new(CoordinateWiseMedian::new())),
        ("trimmed-mean", Box::new(TrimmedMean::new(f))),
        ("geometric-median", Box::new(GeometricMedian::new())),
        (
            "closest-to-barycenter",
            Box::new(ClosestToBarycenter::new()),
        ),
        (
            "min-diameter-subset",
            Box::new(MinimumDiameterSubset::new(n, f).unwrap()),
        ),
    ];
    let mut group = c.benchmark_group("aggregators/n15_f3_d10000");
    group.sample_size(10);
    for (name, rule) in rules {
        group.bench_with_input(BenchmarkId::from_parameter(name), &proposals, |b, p| {
            b.iter(|| rule.aggregate(std::hint::black_box(p)).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = rules_at_medium_dimension
}
criterion_main!(benches);
