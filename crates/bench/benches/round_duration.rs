//! E8 — cost of resilience: duration of one full synchronous round (worker
//! gradient computation + aggregation) for averaging vs Krum, as the cluster
//! grows. Uses the sequential engine so Criterion measures a deterministic
//! code path; the threaded/network variant is reported by the
//! `e8_cost_of_resilience` driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use krum_bench::quadratic_estimators;
use krum_core::{Aggregator, Average, Krum};
use krum_dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum_tensor::Vector;

fn build_trainer(n: usize, f: usize, dim: usize, aggregator: Box<dyn Aggregator>) -> SyncTrainer {
    let cluster = ClusterSpec::new(n, f).expect("valid cluster");
    let config = TrainingConfig {
        rounds: 1,
        schedule: LearningRateSchedule::Constant { gamma: 0.1 },
        seed: 3,
        eval_every: usize::MAX / 2,
        known_optimum: None,
    };
    SyncTrainer::new(
        cluster,
        aggregator,
        Box::new(krum_attacks::GaussianNoise::new(50.0).unwrap()),
        quadratic_estimators(n - f, dim, 0.2),
        config,
    )
    .expect("valid trainer")
}

fn full_round(c: &mut Criterion) {
    let dim = 20_000;
    let mut group = c.benchmark_group("round_duration/d20000");
    group.sample_size(10);
    for &n in &[10usize, 20, 40] {
        let f = (n - 3) / 2;
        let params = Vector::filled(dim, 2.0);
        let mut krum_trainer = build_trainer(n, f, dim, Box::new(Krum::new(n, f).unwrap()));
        let mut avg_trainer = build_trainer(n, f, dim, Box::new(Average::new()));
        group.bench_with_input(BenchmarkId::new("krum", n), &params, |b, params| {
            b.iter(|| {
                krum_trainer
                    .run_round(std::hint::black_box(params), 0)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("average", n), &params, |b, params| {
            b.iter(|| {
                avg_trainer
                    .run_round(std::hint::black_box(params), 0)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = full_round
}
criterion_main!(benches);
