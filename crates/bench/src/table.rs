//! Minimal plain-text table rendering for the experiment drivers.

/// A simple fixed-width text table: a header row plus data rows, printed with
/// right-aligned numeric-looking cells. Keeps the experiment binaries free of
/// ad-hoc `format!` calls.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string (also used by `Display`).
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}"));
                } else {
                    line.push_str(&format!("  {cell:>width$}"));
                }
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_and_rows() {
        let mut t = Table::new(["n", "time (µs)"]);
        t.row(["10", "1.5"]);
        t.row(["100", "150.0"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("time"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("10") && lines[2].contains("1.5"));
        assert!(text == format!("{t}"));
    }

    #[test]
    fn handles_ragged_rows_and_empty_tables() {
        let t = Table::new(["a", "b"]);
        assert!(t.is_empty());
        assert!(t.render().lines().count() >= 2);
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }
}
