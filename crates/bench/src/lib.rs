//! # krum-bench
//!
//! Experiment drivers and benchmarks that regenerate every figure/claim of the
//! paper (see EXPERIMENTS.md for the mapping and the recorded results).
//!
//! * `src/bin/e1_linear_fragility.rs` … `src/bin/e8_cost_of_resilience.rs` —
//!   one runnable driver per experiment, each printing the series/rows of the
//!   corresponding figure;
//! * `src/bin/round_pipeline.rs` — records `BENCH_round_pipeline.json`
//!   (aggregation-path wall time and allocation counts before/after the
//!   `AggregationContext` refactor);
//! * `benches/krum_scaling.rs`, `benches/aggregators.rs`,
//!   `benches/round_duration.rs` — Criterion micro/macro benchmarks backing
//!   E3 and E8.
//!
//! This library crate hosts the small amount of shared plumbing (estimator
//! factories, proposal generators and plain-text table rendering) so the
//! drivers stay focused on the experimental logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use krum_core::Aggregator;
use krum_models::{GaussianEstimator, GradientEstimator, QuadraticCost};
use krum_tensor::Vector;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

mod table;

pub use table::Table;

/// Builds `count` independent Gaussian estimators around an isotropic
/// quadratic cost centred at the origin (the standard synthetic workload of
/// the theory-facing experiments).
pub fn quadratic_estimators(
    count: usize,
    dim: usize,
    sigma: f64,
) -> Vec<Box<dyn GradientEstimator>> {
    (0..count)
        .map(|_| {
            Box::new(
                GaussianEstimator::new(QuadraticCost::isotropic(Vector::zeros(dim), 0.0), sigma)
                    .expect("sigma is validated by the caller"),
            ) as Box<dyn GradientEstimator>
        })
        .collect()
}

/// A deterministic RNG for experiment drivers.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Generates a synthetic round of proposals: `n − f` honest vectors drawn
/// `N(g, σ² I)` plus `f` adversarial vectors far from the honest cluster.
/// Used by the scaling benchmarks, where only the input *shape* matters.
pub fn synthetic_proposals<R: Rng + ?Sized>(
    n: usize,
    f: usize,
    dim: usize,
    sigma: f64,
    rng: &mut R,
) -> Vec<Vector> {
    let g = Vector::filled(dim, 1.0);
    let mut proposals: Vec<Vector> = (0..n - f)
        .map(|_| {
            let mut v = g.clone();
            v.axpy(1.0, &Vector::gaussian(dim, 0.0, sigma, rng));
            v
        })
        .collect();
    for _ in 0..f {
        proposals.push(Vector::gaussian(dim, 0.0, 100.0, rng));
    }
    proposals
}

/// Times a single aggregation call in nanoseconds (used by E3/E8 drivers for
/// coarse measurements; Criterion provides the rigorous ones).
pub fn time_aggregation<A: Aggregator + ?Sized>(aggregator: &A, proposals: &[Vector]) -> u128 {
    let start = std::time::Instant::now();
    let _ = aggregator
        .aggregate(proposals)
        .expect("benchmark proposals are well-formed");
    start.elapsed().as_nanos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_core::Krum;

    #[test]
    fn estimator_factory_produces_requested_count_and_dim() {
        let ests = quadratic_estimators(4, 7, 0.1);
        assert_eq!(ests.len(), 4);
        assert!(ests.iter().all(|e| e.dim() == 7));
    }

    #[test]
    fn synthetic_proposals_have_expected_shape() {
        let mut r = rng(0);
        let proposals = synthetic_proposals(11, 3, 5, 0.2, &mut r);
        assert_eq!(proposals.len(), 11);
        assert!(proposals.iter().all(|p| p.dim() == 5));
        // Honest proposals are near g = (1,…,1); adversarial ones are far.
        let g = Vector::filled(5, 1.0);
        assert!(proposals[0].distance(&g) < 2.0);
        assert!(proposals[10].distance(&g) > 10.0);
    }

    #[test]
    fn timing_helper_runs_the_aggregator() {
        let mut r = rng(1);
        let proposals = synthetic_proposals(9, 2, 10, 0.2, &mut r);
        let nanos = time_aggregation(&Krum::new(9, 2).unwrap(), &proposals);
        assert!(nanos > 0);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(5);
        let mut b = rng(5);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
