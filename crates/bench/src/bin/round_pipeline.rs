//! Records `BENCH_round_pipeline.json`: per-call wall time and heap
//! allocation counts for the aggregation path **before** (a fresh workspace
//! per call — the allocation-per-call pattern behind `aggregate_detailed`)
//! and **after** (`aggregate_in` on one warmed `AggregationContext`), plus
//! the mean full-round time through the shared `RoundEngine`, for krum and
//! median at (n=40, d=10k) and (n=160, d=1k). Both paths run the sequential
//! execution policy so the comparison isolates allocation reuse.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin round_pipeline > BENCH_round_pipeline.json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use krum_bench::{quadratic_estimators, rng, synthetic_proposals};
use krum_core::{AggregationContext, Aggregator, CoordinateWiseMedian, ExecutionPolicy, Krum};
use krum_dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum_tensor::Vector;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts allocations made by the current thread.
///
/// Deliberately duplicated from `tests/allocation_regression.rs` (keep the
/// two in sync): a shared home would have to live in a library crate, and
/// every crate in this workspace forbids `unsafe_code`, which a
/// `GlobalAlloc` impl requires.
struct CountingAllocator;

fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: a pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; `bump` only touches an already-initialized thread-local `Cell`
// and never allocates or unwinds, so every method inherits `System`'s
// guarantees unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the caller's `alloc` obligations are forwarded to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    // SAFETY: the caller's `alloc_zeroed` obligations are forwarded to `System` as-is.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    // SAFETY: the caller's `realloc` obligations (live ptr, matching layout)
    // are forwarded to `System` as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: the caller's `dealloc` obligations (live ptr, matching layout)
    // are forwarded to `System` as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

const REPEATS: usize = 7;
const CALLS_PER_MEASUREMENT: usize = 4;

struct PathStats {
    nanos_per_call: u128,
    allocations_per_call: f64,
}

/// Median-of-repeats wall time and exact allocation count for `call`.
fn measure(mut call: impl FnMut()) -> PathStats {
    // Warm-up.
    call();
    call();
    let alloc_before = allocations();
    let mut times: Vec<u128> = (0..REPEATS)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..CALLS_PER_MEASUREMENT {
                call();
            }
            start.elapsed().as_nanos() / CALLS_PER_MEASUREMENT as u128
        })
        .collect();
    let alloc_after = allocations();
    times.sort_unstable();
    PathStats {
        nanos_per_call: times[REPEATS / 2],
        allocations_per_call: (alloc_after - alloc_before) as f64
            / (REPEATS * CALLS_PER_MEASUREMENT) as f64,
    }
}

/// Mean full-round wall time (ns) through the shared RoundEngine.
fn trainer_round_nanos(n: usize, f: usize, dim: usize, aggregator: Box<dyn Aggregator>) -> f64 {
    let config = TrainingConfig {
        rounds: 1,
        schedule: LearningRateSchedule::Constant { gamma: 0.05 },
        seed: 17,
        eval_every: usize::MAX / 2,
        known_optimum: None,
    };
    let mut trainer = SyncTrainer::new(
        ClusterSpec::new(n, f).expect("valid cluster"),
        aggregator,
        Box::new(krum_attacks::GaussianNoise::new(50.0).expect("std")),
        quadratic_estimators(n - f, dim, 0.2),
        config,
    )
    .expect("valid trainer");
    let params = Vector::filled(dim, 1.0);
    // Warm-up round grows the engine's workspace.
    let _ = trainer.run_round(&params, 0).expect("round");
    let rounds = 5;
    let total: u128 = (0..rounds)
        .map(|r| trainer.run_round(&params, r).expect("round").1.round_nanos)
        .sum();
    total as f64 / rounds as f64
}

fn json_entry(rule: &str, n: usize, f: usize, dim: usize) -> String {
    let proposals = synthetic_proposals(n, f, dim, 0.2, &mut rng(5));
    let aggregator: Box<dyn Aggregator> = match rule {
        "krum" => Box::new(Krum::new(n, f).expect("config")),
        "median" => Box::new(CoordinateWiseMedian::new()),
        other => panic!("unknown rule {other}"),
    };

    // Before: the allocation-per-call pattern — a fresh workspace every
    // call, so every Gram/score/column buffer is reallocated. Pinned to the
    // same sequential policy as the warm path so the comparison isolates
    // allocation reuse (not a parallel-vs-serial execution change), and so
    // the thread-local counter sees every allocation.
    let before = measure(|| {
        let mut fresh = AggregationContext::with_policy(ExecutionPolicy::Sequential);
        aggregator
            .aggregate_in(&mut fresh, &proposals)
            .expect("well-formed proposals");
    });

    // After: the workspace-backed path, sequential policy (the
    // zero-allocation configuration).
    let mut ctx = AggregationContext::with_policy(ExecutionPolicy::Sequential);
    let after = measure(|| {
        aggregator
            .aggregate_in(&mut ctx, &proposals)
            .expect("well-formed proposals");
    });

    let round_nanos = trainer_round_nanos(n, f, dim, aggregator);

    format!(
        r#"    {{
      "rule": "{rule}",
      "n": {n},
      "f": {f},
      "dim": {dim},
      "before_fresh_context_per_call": {{
        "nanos_per_call": {},
        "allocations_per_call": {:.1}
      }},
      "after_aggregate_in_warm": {{
        "nanos_per_call": {},
        "allocations_per_call": {:.1}
      }},
      "engine_round_nanos_mean": {:.0}
    }}"#,
        before.nanos_per_call,
        before.allocations_per_call,
        after.nanos_per_call,
        after.allocations_per_call,
        round_nanos,
    )
}

fn main() {
    let configs = [
        ("krum", 40usize, 18usize, 10_000usize),
        ("median", 40, 18, 10_000),
        ("krum", 160, 78, 1_000),
        ("median", 160, 78, 1_000),
    ];
    let entries: Vec<String> = configs
        .iter()
        .map(|&(rule, n, f, dim)| json_entry(rule, n, f, dim))
        .collect();
    println!(
        r#"{{
  "benchmark": "round_pipeline (crates/bench/src/bin/round_pipeline.rs)",
  "description": "aggregation path before/after the AggregationContext refactor: wall time and heap allocations per call, plus mean full-round time through the shared RoundEngine (sequential strategy, Gaussian-noise attack, quadratic estimators)",
  "method": "median of {REPEATS} repeats x {CALLS_PER_MEASUREMENT} calls; allocations counted with a thread-local counting global allocator; both paths use the sequential execution policy so the comparison isolates allocation reuse: 'before' aggregates into a fresh AggregationContext every call (the allocation-per-call pattern behind aggregate_detailed), 'after' is aggregate_in on one warmed context",
  "configs": [
{}
  ]
}}"#,
        entries.join(",\n")
    );
}
