//! E8 — extension (full-paper Figs. 6–7): the cost of resilience.
//!
//! Using the threaded parameter-server engine with a simulated network, we
//! measure the duration of a synchronous round for averaging vs Krum vs
//! Multi-Krum as (a) the number of workers grows at fixed model size and
//! (b) the model dimension grows at fixed cluster size. Aggregation time is
//! reported separately so the server-side overhead of Krum is visible.

use krum_attacks::GaussianNoise;
use krum_bench::{quadratic_estimators, Table};
use krum_core::{Aggregator, Average, Krum, MultiKrum};
use krum_dist::{
    ClusterSpec, LatencyModel, LearningRateSchedule, NetworkModel, ThreadedTrainer, TrainingConfig,
};
use krum_tensor::Vector;

const ROUNDS: usize = 8;

fn network() -> NetworkModel {
    NetworkModel {
        // 100 µs ± 50 µs one-way latency, ~1 GB/s links.
        latency: LatencyModel::Uniform {
            min_nanos: 50_000,
            max_nanos: 150_000,
        },
        nanos_per_byte: 1.0,
    }
}

struct Timing {
    round_micros: f64,
    propose_micros: f64,
    aggregation_micros: f64,
    network_micros: f64,
}

fn run(n: usize, f: usize, dim: usize, aggregator: Box<dyn Aggregator>) -> Timing {
    let cluster = ClusterSpec::new(n, f).expect("valid cluster");
    let config = TrainingConfig {
        rounds: ROUNDS,
        schedule: LearningRateSchedule::Constant { gamma: 0.05 },
        seed: 9,
        eval_every: ROUNDS, // metrics only at the edges; timing is the point
        known_optimum: None,
    };
    let mut trainer = ThreadedTrainer::new(
        cluster,
        aggregator,
        Box::new(GaussianNoise::new(50.0).expect("std")),
        quadratic_estimators(n - f + 1, dim, 0.2),
        config,
        network(),
    )
    .expect("trainer");
    let (_, history) = trainer.run(Vector::filled(dim, 1.0)).expect("run succeeds");
    Timing {
        round_micros: history.mean_round_nanos() / 1_000.0,
        propose_micros: history.mean_propose_nanos() / 1_000.0,
        aggregation_micros: history.mean_aggregation_nanos() / 1_000.0,
        network_micros: history.mean_network_nanos() / 1_000.0,
    }
}

fn rules(n: usize, f: usize) -> Vec<(&'static str, Box<dyn Aggregator>)> {
    vec![
        ("average", Box::new(Average::new())),
        ("krum", Box::new(Krum::new(n, f).expect("config"))),
        (
            "multi-krum",
            Box::new(MultiKrum::new(n, f, n - f).expect("config")),
        ),
    ]
}

fn main() {
    println!("E8 — cost of resilience (extension; full-paper Figs. 6–7)");
    println!(
        "threaded engine, simulated network (~100 µs latency, ~1 GB/s), {ROUNDS} rounds per cell\n"
    );

    let dim = 20_000;
    let mut table = Table::new([
        "n",
        "f",
        "rule",
        "round (µs)",
        "propose (µs)",
        "aggregation (µs)",
        "network (µs)",
    ]);
    for &n in &[10usize, 20, 40, 80] {
        let f = (n - 3) / 2;
        for (name, rule) in rules(n, f) {
            let t = run(n, f, dim, rule);
            table.row([
                n.to_string(),
                f.to_string(),
                name.to_string(),
                format!("{:.0}", t.round_micros),
                format!("{:.0}", t.propose_micros),
                format!("{:.0}", t.aggregation_micros),
                format!("{:.0}", t.network_micros),
            ]);
        }
    }
    println!("(a) sweep over n at d = {dim}:\n{table}");

    let n = 20;
    let f = 6;
    let mut table = Table::new([
        "d",
        "rule",
        "round (µs)",
        "propose (µs)",
        "aggregation (µs)",
        "network (µs)",
    ]);
    for &dim in &[10_000usize, 50_000, 100_000] {
        for (name, rule) in rules(n, f) {
            let t = run(n, f, dim, rule);
            table.row([
                dim.to_string(),
                name.to_string(),
                format!("{:.0}", t.round_micros),
                format!("{:.0}", t.propose_micros),
                format!("{:.0}", t.aggregation_micros),
                format!("{:.0}", t.network_micros),
            ]);
        }
    }
    println!("(b) sweep over d at n = {n}, f = {f}:\n{table}");
    println!("expected shape: the aggregation column grows quadratically in n and linearly in d");
    println!("for Krum/Multi-Krum while staying linear-in-n for averaging, but it remains a small");
    println!("fraction of the full round (which is dominated by gradient computation and the");
    println!(
        "network), so resilience is cheap at realistic cluster sizes — the full paper's point."
    );
}
