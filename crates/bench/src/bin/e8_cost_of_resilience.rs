//! E8 — extension (full-paper Figs. 6–7): the cost of resilience.
//!
//! Using the threaded execution strategy with a simulated network, we
//! measure the duration of a synchronous round for averaging vs Krum vs
//! Multi-Krum as (a) the number of workers grows at fixed model size and
//! (b) the model dimension grows at fixed cluster size. Aggregation time is
//! reported separately so the server-side overhead of Krum is visible. Each
//! cell is one declarative threaded scenario.

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_core::RuleSpec;
use krum_dist::{LatencyModel, LearningRateSchedule, NetworkModel};
use krum_models::EstimatorSpec;
use krum_scenario::ScenarioBuilder;

const ROUNDS: usize = 8;

fn network() -> NetworkModel {
    NetworkModel {
        // 100 µs ± 50 µs one-way latency, ~1 GB/s links.
        latency: LatencyModel::Uniform {
            min_nanos: 50_000,
            max_nanos: 150_000,
        },
        nanos_per_byte: 1.0,
    }
}

struct Timing {
    round_micros: f64,
    propose_micros: f64,
    aggregation_micros: f64,
    network_micros: f64,
}

fn run(n: usize, f: usize, dim: usize, rule: RuleSpec) -> Timing {
    let report = ScenarioBuilder::new(n, f)
        .rule(rule)
        .attack(AttackSpec::GaussianNoise { std: 50.0 })
        .estimator(EstimatorSpec::GaussianQuadratic { dim, sigma: 0.2 })
        .schedule(LearningRateSchedule::Constant { gamma: 0.05 })
        .threaded(network())
        .rounds(ROUNDS)
        .eval_every(ROUNDS) // metrics only at the edges; timing is the point
        .seed(9)
        .init_fill(1.0)
        .track_optimum(false)
        .run()
        .expect("valid scenario");
    let history = &report.history;
    Timing {
        round_micros: history.mean_round_nanos() / 1_000.0,
        propose_micros: history.mean_propose_nanos() / 1_000.0,
        aggregation_micros: history.mean_aggregation_nanos() / 1_000.0,
        network_micros: history.mean_network_nanos() / 1_000.0,
    }
}

fn rules() -> [(&'static str, RuleSpec); 3] {
    [
        ("average", RuleSpec::Average),
        ("krum", RuleSpec::Krum),
        ("multi-krum", RuleSpec::MultiKrum { m: None }),
    ]
}

fn main() {
    println!("E8 — cost of resilience (extension; full-paper Figs. 6–7)");
    println!(
        "threaded engine, simulated network (~100 µs latency, ~1 GB/s), {ROUNDS} rounds per cell\n"
    );

    let dim = 20_000;
    let mut table = Table::new([
        "n",
        "f",
        "rule",
        "round (µs)",
        "propose (µs)",
        "aggregation (µs)",
        "network (µs)",
    ]);
    for &n in &[10usize, 20, 40, 80] {
        let f = (n - 3) / 2;
        for (name, rule) in rules() {
            let t = run(n, f, dim, rule);
            table.row([
                n.to_string(),
                f.to_string(),
                name.to_string(),
                format!("{:.0}", t.round_micros),
                format!("{:.0}", t.propose_micros),
                format!("{:.0}", t.aggregation_micros),
                format!("{:.0}", t.network_micros),
            ]);
        }
    }
    println!("(a) sweep over n at d = {dim}:\n{table}");

    let n = 20;
    let f = 6;
    let mut table = Table::new([
        "d",
        "rule",
        "round (µs)",
        "propose (µs)",
        "aggregation (µs)",
        "network (µs)",
    ]);
    for &dim in &[10_000usize, 50_000, 100_000] {
        for (name, rule) in rules() {
            let t = run(n, f, dim, rule);
            table.row([
                dim.to_string(),
                name.to_string(),
                format!("{:.0}", t.round_micros),
                format!("{:.0}", t.propose_micros),
                format!("{:.0}", t.aggregation_micros),
                format!("{:.0}", t.network_micros),
            ]);
        }
    }
    println!("(b) sweep over d at n = {n}, f = {f}:\n{table}");
    println!("expected shape: the aggregation column grows quadratically in n and linearly in d");
    println!("for Krum/Multi-Krum while staying linear-in-n for averaging, but it remains a small");
    println!("fraction of the full round (which is dominated by gradient computation and the");
    println!(
        "network), so resilience is cheap at realistic cluster sizes — the full paper's point."
    );
}
