//! E4 — Definition 3.2 / Proposition 4.2: empirical `(α, f)`-Byzantine
//! resilience of Krum.
//!
//! For a grid of noise-to-gradient ratios and `(n, f)` configurations we
//! estimate `⟨E Kr, g⟩` by Monte-Carlo under an omniscient attack and compare
//! it with the theoretical lower bound `(1 − sin α)·‖g‖²`, where
//! `sin α = η(n, f)·√d·σ/‖g‖`. Averaging is evaluated on the same grid as the
//! negative control.

use krum_bench::{rng, Table};
use krum_core::{krum_sin_alpha, ResilienceEstimator, RuleSpec};
use krum_tensor::Vector;

const DIM: usize = 20;
const TRIALS: usize = 400;

fn main() {
    println!("E4 — empirical (α, f)-Byzantine resilience of Krum (Proposition 4.2)");
    println!(
        "d = {DIM}, ‖g‖ fixed, correct estimator N(g, σ²·I), omniscient attack −10·mean(honest)"
    );
    println!("bound: ⟨E F, g⟩ ≥ (1 − sin α)·‖g‖², sin α = η(n,f)·√d·σ/‖g‖\n");

    let g = Vector::filled(DIM, 1.0); // ‖g‖ = √20
    let grad_norm = g.norm();
    let estimator = ResilienceEstimator::new(TRIALS).expect("trials > 0");

    let mut table = Table::new([
        "n",
        "f",
        "σ·√d/‖g‖",
        "sin α",
        "rule",
        "⟨EF,g⟩",
        "bound",
        "cond (i)",
        "E‖F‖²/E‖G‖²",
    ]);

    for &(n, f) in &[(11usize, 2usize), (25, 5), (25, 11), (51, 12)] {
        for &ratio in &[0.01f64, 0.05, 0.2, 0.5] {
            let sigma = ratio * grad_norm / (DIM as f64).sqrt();
            let sin_alpha = krum_sin_alpha(n, f, DIM, sigma, grad_norm).expect("valid config");
            let mut run = |name: &str, rule: &dyn krum_core::Aggregator| {
                let mut r = rng(1_000 + n as u64 * 7 + f as u64);
                let check = estimator
                    .check(
                        rule,
                        &g,
                        sigma,
                        n,
                        f,
                        |correct, rng| {
                            let mean = Vector::mean_of(correct).expect("non-empty");
                            (0..f)
                                .map(|_| {
                                    let mut v = mean.scaled(-10.0);
                                    v.axpy(1.0, &Vector::gaussian(mean.dim(), 0.0, sigma, rng));
                                    v
                                })
                                .collect()
                        },
                        &mut r,
                    )
                    .expect("check succeeds");
                // Three outcomes: the bound holds, the bound is violated, or
                // the premise η√d·σ < ‖g‖ of Proposition 4.2 fails (sin α ≥ 1),
                // in which case the theory makes no promise for this cell.
                let verdict = if sin_alpha >= 1.0 {
                    "n/a (premise fails)"
                } else if check.condition_i {
                    "holds"
                } else {
                    "VIOLATED"
                };
                table.row([
                    n.to_string(),
                    f.to_string(),
                    format!("{ratio:.2}"),
                    format!("{sin_alpha:.3}"),
                    name.to_string(),
                    format!("{:.3}", check.inner_product),
                    format!("{:.3}", check.required_lower_bound),
                    verdict.to_string(),
                    format!("{:.2}", check.moment_ratios[0]),
                ]);
            };
            // Rules built through the typed spec registry.
            let krum = RuleSpec::Krum.build(n, f).expect("2f+2 < n");
            run("krum", krum.as_ref());
            let average = RuleSpec::Average.build(n, f).expect("always valid");
            run("average", average.as_ref());
        }
    }
    println!("{table}");
    println!("expected shape: for Krum, condition (i) holds whenever sin α < 1 (the premise");
    println!("η√d·σ < ‖g‖ of Proposition 4.2); averaging violates it on every attacked row.");
    println!("Moment ratios for Krum stay O(1), as required by condition (ii).");
}
