//! Collates every checked-in `BENCH_*.json` into one trajectory table.
//!
//! Each experiment driver (E3, E8–E12, the criterion scaling sweep, …)
//! leaves a machine-readable `BENCH_<name>.json` at the repo root. This
//! tool is the single place that reads them all back: one row per file,
//! with the headline speedup/ratio figures pulled out of wherever the
//! individual benchmark nested them, so the performance trajectory of the
//! whole PR sequence is visible at a glance (and greppable in CI).
//!
//! ```text
//! cargo run --release -p krum-bench --bin bench_summary [DIR]
//! ```
//!
//! `DIR` defaults to the current directory. Exits non-zero when a
//! `BENCH_*.json` exists but cannot be parsed — a benchmark that wrote
//! garbage should fail loudly, not vanish from the table.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use krum_bench::Table;
use serde::Value;

/// One numeric leaf of a benchmark JSON: its dotted path and value.
struct Leaf {
    path: String,
    value: f64,
}

/// Depth-first collection of every numeric scalar, with dotted paths
/// (`incremental_gram.speedup`, `scaling.1.speedup`, …). Insertion order
/// is document order, which the vendored `Value` preserves.
fn collect_leaves(value: &Value, prefix: &str, out: &mut Vec<Leaf>) {
    let join = |key: &str| {
        if prefix.is_empty() {
            key.to_string()
        } else {
            format!("{prefix}.{key}")
        }
    };
    match value {
        Value::UInt(v) => out.push(Leaf {
            path: prefix.to_string(),
            value: *v as f64,
        }),
        Value::Int(v) => out.push(Leaf {
            path: prefix.to_string(),
            value: *v as f64,
        }),
        Value::Float(v) => out.push(Leaf {
            path: prefix.to_string(),
            value: *v,
        }),
        Value::Array(items) => {
            for (index, item) in items.iter().enumerate() {
                collect_leaves(item, &join(&index.to_string()), out);
            }
        }
        Value::Object(fields) => {
            for (key, item) in fields {
                collect_leaves(item, &join(key), out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Formats a leaf value compactly: integers without a fraction, floats
/// with up to three decimals and trailing zeros trimmed.
fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        return format!("{}", value as i64);
    }
    let mut text = format!("{value:.3}");
    while text.ends_with('0') {
        text.pop();
    }
    if text.ends_with('.') {
        text.pop();
    }
    text
}

/// Picks the headline figures for one benchmark: every leaf whose final
/// path segment mentions `speedup` or `ratio` (capped at three, shallowest
/// first so a top-level claim beats a per-cell breakdown), falling back to
/// the first numeric leaf when a benchmark publishes no speedup at all.
fn headline(leaves: &[Leaf]) -> String {
    let mut picks: Vec<&Leaf> = leaves
        .iter()
        .filter(|leaf| {
            let last = leaf.path.rsplit('.').next().unwrap_or(&leaf.path);
            last.contains("speedup") || last.contains("ratio")
        })
        .collect();
    picks.sort_by_key(|leaf| leaf.path.matches('.').count());
    picks.truncate(3);
    if picks.is_empty() {
        picks.extend(leaves.first());
    }
    if picks.is_empty() {
        return "-".to_string();
    }
    picks
        .iter()
        .map(|leaf| format!("{}={}", leaf.path, format_value(leaf.value)))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Top-level string field, or `None`.
fn string_field<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v str> {
    fields.iter().find_map(|(name, value)| match value {
        Value::Str(text) if name == key => Some(text.as_str()),
        _ => None,
    })
}

fn summarize(dir: &Path) -> Result<Table, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no BENCH_*.json under {}", dir.display()));
    }

    let mut table = Table::new(["file", "benchmark", "date", "metrics", "headline"]);
    for path in &paths {
        let file = path
            .file_name()
            .and_then(|name| name.to_str())
            .unwrap_or_default()
            .to_string();
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {file}: {e}"))?;
        let value = serde_json::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        let Value::Object(fields) = &value else {
            return Err(format!("{file}: top level is not an object"));
        };
        // "e12_hier_scaling (crates/bench/src/bin/e12_hier_scaling.rs)" →
        // keep just the short name; the file column already locates it.
        let benchmark = string_field(fields, "benchmark")
            .map(|name| name.split(" (").next().unwrap_or(name).to_string())
            .unwrap_or_else(|| "-".to_string());
        let date = string_field(fields, "date").unwrap_or("-").to_string();
        let mut leaves = Vec::new();
        collect_leaves(&value, "", &mut leaves);
        table.row([
            file,
            benchmark,
            date,
            leaves.len().to_string(),
            headline(&leaves),
        ]);
    }
    Ok(table)
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    match summarize(Path::new(&dir)) {
        Ok(table) => {
            println!("# benchmark trajectory ({} files)", table.len());
            print!("{table}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("bench_summary: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves_of(json: &str) -> Vec<Leaf> {
        let mut leaves = Vec::new();
        collect_leaves(&serde_json::parse(json).unwrap(), "", &mut leaves);
        leaves
    }

    #[test]
    fn collects_numeric_leaves_with_dotted_paths_in_document_order() {
        let leaves = leaves_of(
            r#"{"a": 1, "b": {"speedup": 2.5, "deep": [{"x": 3}]}, "s": "skip", "ok": true}"#,
        );
        let paths: Vec<&str> = leaves.iter().map(|l| l.path.as_str()).collect();
        assert_eq!(paths, ["a", "b.speedup", "b.deep.0.x"]);
        assert_eq!(leaves[1].value, 2.5);
    }

    #[test]
    fn headline_prefers_shallow_speedups_and_falls_back_to_first_leaf() {
        let leaves = leaves_of(
            r#"{"cells": [{"speedup": 9.0}, {"speedup": 8.0}],
                "top_speedup": 40.27, "io_ratio": 4.29, "n": 2000}"#,
        );
        let line = headline(&leaves);
        assert!(line.starts_with("top_speedup=40.27"), "{line}");
        assert!(line.contains("io_ratio=4.29"), "{line}");
        // Cap of three: two shallow picks + one per-cell breakdown.
        assert!(line.contains("cells.0.speedup=9"), "{line}");
        assert!(!line.contains("cells.1.speedup"), "{line}");

        let none = leaves_of(r#"{"rounds": 20, "note": "text"}"#);
        assert_eq!(headline(&none), "rounds=20");
        assert_eq!(headline(&[]), "-");
    }

    #[test]
    fn format_value_trims_trailing_zeros() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(2.82), "2.82");
        assert_eq!(format_value(112.56), "112.56");
        assert_eq!(format_value(0.977), "0.977");
    }
}
