//! E7 — extension (full-paper Fig. 5): the Multi-Krum trade-off.
//!
//! Multi-Krum averages the `m` best-scored proposals: `m = 1` is Krum
//! (maximally conservative, highest-variance updates), `m = n − f` keeps the
//! variance reduction of averaging while still excluding the `f` worst-scored
//! proposals. We sweep `m` with and without an attack and report both the
//! distance to the optimum and the per-round update variance. Each cell is
//! one declarative scenario; the `m` sweep is a sweep over rule specs.

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_core::RuleSpec;
use krum_dist::LearningRateSchedule;
use krum_models::EstimatorSpec;
use krum_scenario::ScenarioBuilder;
use krum_tensor::OnlineStats;

const N: usize = 20;
const F: usize = 6;
const DIM: usize = 100;
const ROUNDS: usize = 300;
const SIGMA: f64 = 1.0;

struct Outcome {
    final_distance: f64,
    update_noise: f64,
}

fn run(rule: RuleSpec, attacked: bool) -> Outcome {
    // Attacked runs have f Byzantine workers; the clean baseline runs the same
    // aggregator over n fully honest workers (f = 0), so the m-sweep isolates
    // the variance-reduction effect rather than the behaviour of benign
    // Byzantine slots.
    let byzantine = if attacked { F } else { 0 };
    let attack = if attacked {
        AttackSpec::GaussianNoise { std: 200.0 }
    } else {
        AttackSpec::None
    };
    let report = ScenarioBuilder::new(N, byzantine)
        .rule(rule)
        .attack(attack)
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: SIGMA,
        })
        .schedule(LearningRateSchedule::InverseTime {
            gamma: 0.1,
            tau: 100.0,
        })
        .rounds(ROUNDS)
        .eval_every(10)
        .seed(21)
        .init_fill(5.0)
        .run()
        .expect("valid scenario");
    // Update variance proxy: dispersion of the aggregate norm over the last
    // 100 rounds (once the trajectory has settled near the optimum).
    let stats: OnlineStats = report.history.rounds[ROUNDS - 100..]
        .iter()
        .map(|r| r.aggregate_norm)
        .collect();
    Outcome {
        final_distance: report.final_params.norm(),
        update_noise: stats.stddev(),
    }
}

fn main() {
    println!("E7 — Multi-Krum trade-off (extension; full-paper Fig. 5)");
    println!("n = {N}, f = {F}, d = {DIM}, σ = {SIGMA}, Gaussian attack (σ = 200) vs clean, {ROUNDS} rounds\n");
    let mut table = Table::new([
        "aggregator",
        "‖x − x*‖ (attacked)",
        "‖x − x*‖ (clean)",
        "update σ (clean)",
    ]);
    let mut ms: Vec<usize> = vec![1, 2, 5, 10, N - F];
    ms.dedup();
    let mut rules: Vec<RuleSpec> = ms
        .into_iter()
        .map(|m| RuleSpec::MultiKrum { m: Some(m) })
        .collect();
    rules.push(RuleSpec::Average);
    for rule in rules {
        let attacked = run(rule, true);
        let clean = run(rule, false);
        table.row([
            rule.to_string(),
            format!("{:.4}", attacked.final_distance),
            format!("{:.4}", clean.final_distance),
            format!("{:.4}", clean.update_noise),
        ]);
    }
    println!("{table}");
    println!("expected shape: every Multi-Krum variant survives the attack (final distance stays");
    println!("small) and larger m reduces the update noise on clean rounds, approaching the");
    println!("variance of plain averaging — which itself is destroyed by the attack.");
}
