//! E7 — extension (full-paper Fig. 5): the Multi-Krum trade-off.
//!
//! Multi-Krum averages the `m` best-scored proposals: `m = 1` is Krum
//! (maximally conservative, highest-variance updates), `m = n − f` keeps the
//! variance reduction of averaging while still excluding the `f` worst-scored
//! proposals. We sweep `m` with and without an attack and report both the
//! distance to the optimum and the per-round update variance.

use krum_attacks::{Attack, GaussianNoise, NoAttack};
use krum_bench::{quadratic_estimators, Table};
use krum_core::{Aggregator, Average, MultiKrum};
use krum_dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum_tensor::{OnlineStats, Vector};

const N: usize = 20;
const F: usize = 6;
const DIM: usize = 100;
const ROUNDS: usize = 300;
const SIGMA: f64 = 1.0;

struct Outcome {
    final_distance: f64,
    update_noise: f64,
}

fn run(aggregator: Box<dyn Aggregator>, attacked: bool) -> Outcome {
    // Attacked runs have f Byzantine workers; the clean baseline runs the same
    // aggregator over n fully honest workers (f = 0), so the m-sweep isolates
    // the variance-reduction effect rather than the behaviour of benign
    // Byzantine slots.
    let byzantine = if attacked { F } else { 0 };
    let cluster = ClusterSpec::new(N, byzantine).expect("valid cluster");
    let config = TrainingConfig {
        rounds: ROUNDS,
        schedule: LearningRateSchedule::InverseTime {
            gamma: 0.1,
            tau: 100.0,
        },
        seed: 21,
        eval_every: 10,
        known_optimum: Some(Vector::zeros(DIM)),
    };
    let attack: Box<dyn Attack> = if attacked {
        Box::new(GaussianNoise::new(200.0).expect("std"))
    } else {
        Box::new(NoAttack::new())
    };
    let mut trainer = SyncTrainer::new(
        cluster,
        aggregator,
        attack,
        quadratic_estimators(cluster.honest(), DIM, SIGMA),
        config,
    )
    .expect("trainer");
    let (params, history) = trainer.run(Vector::filled(DIM, 5.0)).expect("run succeeds");
    // Update variance proxy: dispersion of the aggregate norm over the last
    // 100 rounds (once the trajectory has settled near the optimum).
    let stats: OnlineStats = history.rounds[ROUNDS - 100..]
        .iter()
        .map(|r| r.aggregate_norm)
        .collect();
    Outcome {
        final_distance: params.norm(),
        update_noise: stats.stddev(),
    }
}

fn main() {
    println!("E7 — Multi-Krum trade-off (extension; full-paper Fig. 5)");
    println!("n = {N}, f = {F}, d = {DIM}, σ = {SIGMA}, Gaussian attack (σ = 200) vs clean, {ROUNDS} rounds\n");
    let mut table = Table::new([
        "aggregator",
        "‖x − x*‖ (attacked)",
        "‖x − x*‖ (clean)",
        "update σ (clean)",
    ]);
    let mut ms: Vec<usize> = vec![1, 2, 5, 10, N - F];
    ms.dedup();
    for m in ms {
        let attacked = run(Box::new(MultiKrum::new(N, F, m).expect("config")), true);
        let clean = run(Box::new(MultiKrum::new(N, F, m).expect("config")), false);
        table.row([
            format!("multi-krum m={m}"),
            format!("{:.4}", attacked.final_distance),
            format!("{:.4}", clean.final_distance),
            format!("{:.4}", clean.update_noise),
        ]);
    }
    let attacked = run(Box::new(Average::new()), true);
    let clean = run(Box::new(Average::new()), false);
    table.row([
        "average".to_string(),
        format!("{:.4}", attacked.final_distance),
        format!("{:.4}", clean.final_distance),
        format!("{:.4}", clean.update_noise),
    ]);
    println!("{table}");
    println!("expected shape: every Multi-Krum variant survives the attack (final distance stays");
    println!("small) and larger m reduces the update noise on clean rounds, approaching the");
    println!("variance of plain averaging — which itself is destroyed by the attack.");
}
