//! E11 — the price of surviving the fleet: worker churn and server
//! crash/resume under the deterministic chaos harness.
//!
//! PR 6 made `krum-server` crash-tolerant: a dead worker is a crash fault
//! (rejoin → bit-identical continuation, or degrade to the quorum), and a
//! killed server resumes from its round checkpoints. This driver measures
//! what recovery *costs* at `n = 9, f = 2, d = 50`: rounds/sec and the
//! recovery latency (the arrival time of the slowest, i.e. faulted, round)
//! for a clean serving vs a mid-job worker drop + rejoin vs a server
//! kill + checkpoint resume — after asserting each faulted trajectory is
//! **bit-identical** to the clean one, so the comparison is recovery
//! overhead and nothing else.
//!
//! Records `BENCH_churn.json`:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin e11_churn > BENCH_churn.json
//! ```
//!
//! (The human-readable table goes to stderr.)

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_core::RuleSpec;
use krum_dist::{ClusterSpec, LearningRateSchedule};
use krum_models::EstimatorSpec;
use krum_scenario::{
    CrashPolicy, ExecutionSpec, FaultAction, FaultPlan, FaultSpec, InitSpec, ProbeSpec,
    ScenarioReport, ScenarioSpec,
};
use krum_server::{run_chaos, run_loopback, ChaosOptions};

const N: usize = 9;
const F: usize = 2;
const DIM: usize = 50;
const ROUNDS: usize = 8;

fn spec(fault_plan: Option<FaultPlan>) -> ScenarioSpec {
    ScenarioSpec {
        name: "e11-churn".into(),
        cluster: ClusterSpec::new(N, F).expect("valid cluster"),
        rule: RuleSpec::Krum,
        attack: AttackSpec::SignFlip { scale: 3.0 },
        estimator: EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: 0.2,
        },
        schedule: LearningRateSchedule::Constant { gamma: 0.1 },
        execution: ExecutionSpec::Remote {
            quorum: None,
            max_staleness: 0,
            round_timeout_secs: 60,
            handshake_timeout_secs: 10,
            staffing_timeout_secs: 60,
            heartbeat_secs: 1,
            on_crash: CrashPolicy::WaitForRejoin,
        },
        rounds: ROUNDS,
        eval_every: ROUNDS,
        seed: 47,
        init: InitSpec::Fill { value: 1.0 },
        probes: ProbeSpec::default(),
        fault_plan,
        compression: None,
    }
}

/// The arrival time of the slowest round — under a fault plan this is the
/// faulted round, so it *is* the recovery latency (detection + backoff +
/// rejoin + re-broadcast, or kill + resume + re-staff).
fn slowest_round_millis(report: &ScenarioReport) -> f64 {
    report
        .history
        .rounds
        .iter()
        .filter_map(|r| r.arrival_nanos)
        .fold(0.0f64, |acc, nanos| acc.max(nanos as f64))
        / 1e6
}

fn assert_bit_identical(faulted: &ScenarioReport, clean: &ScenarioReport, label: &str) {
    assert_eq!(
        faulted.final_params, clean.final_params,
        "{label}: recovery must be invisible in the final parameters"
    );
    for (s, p) in faulted.history.rounds.iter().zip(&clean.history.rounds) {
        assert_eq!(
            s.aggregate_norm, p.aggregate_norm,
            "{label} round {}",
            s.round
        );
        assert_eq!(
            s.selected_worker, p.selected_worker,
            "{label} round {}",
            s.round
        );
    }
}

struct Cell {
    label: String,
    rounds_per_sec: f64,
    recovery_millis: f64,
    reconnects: u64,
    degraded_rounds: u64,
    server_resumed: bool,
}

fn main() {
    // The clean reference: the same Remote spec served without faults.
    let clean = run_loopback(spec(None)).expect("clean serving succeeds");
    let clean_cell = Cell {
        label: "clean serving".into(),
        rounds_per_sec: ROUNDS as f64 / (clean.wall_nanos as f64 / 1e9),
        recovery_millis: slowest_round_millis(&clean),
        reconnects: 0,
        degraded_rounds: 0,
        server_resumed: false,
    };

    // Worker churn: sever honest connection 2's socket mid-round 3; the
    // worker detects the death, backs off, rejoins its old slot and the
    // answered-frame cache replays the round.
    let drop_plan = FaultPlan {
        description: "sever honest worker 2 at its round-2 proposal".into(),
        faults: vec![FaultSpec {
            conn: 2,
            at_frame: 3,
            action: FaultAction::Drop,
        }],
        kill_server_after_round: None,
    };
    let churn = run_chaos(spec(Some(drop_plan)), ChaosOptions::default())
        .expect("churn serving survives the drop");
    assert_bit_identical(&churn.report, &clean, "drop + rejoin");
    assert!(churn.worker_reconnects >= 1, "the worker must rejoin");
    let churn_cell = Cell {
        label: "worker drop + rejoin".into(),
        rounds_per_sec: ROUNDS as f64 / (churn.report.wall_nanos as f64 / 1e9),
        recovery_millis: slowest_round_millis(&churn.report),
        reconnects: churn.worker_reconnects,
        degraded_rounds: churn.report.history.total_degraded_rounds(),
        server_resumed: churn.server_resumed,
    };

    // Server crash: kill the server after round 3 and resume from the
    // round checkpoints; every worker rejoins the resumed process.
    let kill_plan = FaultPlan {
        description: "kill the server after round 3, resume from checkpoints".into(),
        faults: Vec::new(),
        kill_server_after_round: Some(3),
    };
    let resumed = run_chaos(spec(Some(kill_plan)), ChaosOptions::default())
        .expect("kill + resume serving survives");
    assert_bit_identical(&resumed.report, &clean, "kill + resume");
    assert!(resumed.server_resumed, "the server must have resumed");
    let resume_cell = Cell {
        label: "server kill + resume".into(),
        rounds_per_sec: ROUNDS as f64 / (resumed.report.wall_nanos as f64 / 1e9),
        recovery_millis: slowest_round_millis(&resumed.report),
        reconnects: resumed.worker_reconnects,
        degraded_rounds: resumed.report.history.total_degraded_rounds(),
        server_resumed: true,
    };

    let cells = [clean_cell, churn_cell, resume_cell];
    let mut table = Table::new([
        "scenario",
        "rounds/sec",
        "recovery ms",
        "reconnects",
        "degraded",
        "resumed",
    ]);
    for cell in &cells {
        table.row([
            cell.label.clone(),
            format!("{:.1}", cell.rounds_per_sec),
            format!("{:.1}", cell.recovery_millis),
            cell.reconnects.to_string(),
            cell.degraded_rounds.to_string(),
            if cell.server_resumed { "yes" } else { "-" }.to_string(),
        ]);
    }
    eprintln!("{table}");
    eprintln!(
        "every faulted run above produced the bit-identical trajectory of the clean serving \
         (asserted) at n = {N}, f = {F}, d = {DIM}\n"
    );

    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                r#"    {{
      "scenario": "{}",
      "rounds_per_sec": {:.2},
      "recovery_latency_millis": {:.2},
      "worker_reconnects": {},
      "degraded_rounds": {},
      "server_resumed": {}
    }}"#,
                c.label,
                c.rounds_per_sec,
                c.recovery_millis,
                c.reconnects,
                c.degraded_rounds,
                c.server_resumed,
            )
        })
        .collect();
    println!(
        r#"{{
  "benchmark": "e11_churn (crates/bench/src/bin/e11_churn.rs)",
  "description": "recovery cost of the PR-6 fault-tolerance machinery: one scenario (krum vs sign-flip, n = {N}, f = {F}, d = {DIM}, {ROUNDS} rounds, seed 47, heartbeat 1s, on_crash = WaitForRejoin) served cleanly, with an honest worker's socket severed mid-job (deterministic chaos proxy), and with the server killed after round 3 and resumed from its round checkpoints",
  "method": "all three runs execute the identical ScenarioSpec behind the in-process ChaosProxy harness; the driver asserts the faulted trajectories are bit-identical to the clean one before comparing, so the numbers are pure recovery overhead. recovery_latency_millis is the arrival time of the slowest round (the faulted round: death detection + deterministic backoff + Rejoin handshake + replay, or checkpoint resume + re-staffing)",
  "claims": [
    "a severed honest worker rejoins its old slot and the run continues bit-identically (asserted at runtime)",
    "a SIGKILL-equivalent server death resumes from round checkpoints with every worker rejoining, bit-identically (asserted at runtime)",
    "recovery latency is dominated by the worker backoff schedule (~50-100 ms first attempt) and stays far below the 1 s heartbeat liveness probe"
  ],
  "configs": [
{}
  ]
}}"#,
        entries.join(",\n")
    );
}
