//! E9 — async partial-quorum rounds vs the synchronous barrier.
//!
//! Under a heavy-tailed (Pareto) straggler network, the synchronous barrier
//! waits for the slowest of `n` workers every round, while the async-quorum
//! strategy closes each round at the `quorum`-th arrival and carries the
//! stragglers forward (bounded staleness). This driver measures, at
//! `n = 40`, the simulated per-round network cost of barrier vs quorum
//! execution, the accuracy cost of aggregating a partial (and partially
//! stale) set, and the staleness profile under a deliberately straggling
//! adversary.
//!
//! Records `BENCH_async_quorum.json`:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin e9_async_quorum > BENCH_async_quorum.json
//! ```
//!
//! (The human-readable table goes to stderr.)

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_dist::{LatencyModel, LearningRateSchedule, NetworkModel};
use krum_models::EstimatorSpec;
use krum_scenario::{ScenarioBuilder, ScenarioReport};

const N: usize = 40;
const F: usize = 4;
const DIM: usize = 1_000;
const ROUNDS: usize = 40;
const MAX_STALENESS: usize = 2;

/// Heavy-tailed straggler network: the bulk of the workers answer in
/// ~100 µs, the Pareto tail (α = 1.1) produces stragglers 10–1000× slower.
fn straggler_network() -> NetworkModel {
    NetworkModel {
        latency: LatencyModel::Pareto {
            min_nanos: 50_000,
            alpha: 1.1,
        },
        nanos_per_byte: 0.05,
    }
}

fn base(attack: AttackSpec) -> ScenarioBuilder {
    ScenarioBuilder::new(N, F)
        .attack(attack)
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: 0.2,
        })
        .schedule(LearningRateSchedule::Constant { gamma: 0.1 })
        .rounds(ROUNDS)
        .eval_every(ROUNDS)
        .seed(29)
        .init_fill(1.0)
}

struct Cell {
    label: String,
    network_micros: f64,
    quorum: f64,
    stale: f64,
    dropped: usize,
    final_distance: f64,
    byz_rate: f64,
}

fn measure(label: &str, report: &ScenarioReport) -> Cell {
    let history = &report.history;
    let final_distance = history
        .last()
        .and_then(|r| r.distance_to_optimum)
        .unwrap_or(f64::NAN);
    Cell {
        label: label.to_string(),
        network_micros: history.mean_network_nanos() / 1_000.0,
        quorum: history.mean_quorum_size(),
        stale: history.mean_stale_in_quorum(),
        dropped: history.total_dropped_stale(),
        final_distance,
        byz_rate: history.selection_stats().byzantine_rate(),
    }
}

fn main() {
    eprintln!("E9 — async partial-quorum rounds vs the synchronous barrier");
    eprintln!(
        "n={N}, f={F}, d={DIM}, krum, {ROUNDS} rounds, heavy-tailed Pareto network \
         (min 50 µs, alpha 1.1)\n"
    );

    let network = straggler_network();
    let quorum = N - F;

    // Barrier: the threaded engine charges the slowest worker's round trip.
    let barrier = base(AttackSpec::SignFlip { scale: 3.0 })
        .threaded(network)
        .run()
        .expect("barrier scenario runs");
    // Quorum: close each round at the (n − f)-th arrival.
    let quorum_run = base(AttackSpec::SignFlip { scale: 3.0 })
        .async_quorum(quorum, MAX_STALENESS, network)
        .run()
        .expect("quorum scenario runs");
    // Quorum under a deliberately straggling adversary: the Byzantine
    // proposals always miss the quorum and land stale (or get dropped).
    let straggler_run = base(AttackSpec::Straggler { scale: 3.0 })
        .async_quorum(quorum, MAX_STALENESS, network)
        .run()
        .expect("straggler scenario runs");

    let cells = [
        measure("barrier (threaded)", &barrier),
        measure(&format!("quorum={quorum} sign-flip"), &quorum_run),
        measure(&format!("quorum={quorum} straggler"), &straggler_run),
    ];

    let mut table = Table::new([
        "execution",
        "network/round (µs)",
        "mean quorum",
        "mean stale",
        "dropped",
        "|x-x*| final",
        "byz-pick",
    ]);
    for cell in &cells {
        table.row([
            cell.label.clone(),
            format!("{:.1}", cell.network_micros),
            if cell.quorum > 0.0 {
                format!("{:.1}", cell.quorum)
            } else {
                format!("{N} (barrier)")
            },
            format!("{:.2}", cell.stale),
            cell.dropped.to_string(),
            format!("{:.4}", cell.final_distance),
            format!("{:.1}%", 100.0 * cell.byz_rate),
        ]);
    }
    eprintln!("{table}");

    let speedup = cells[0].network_micros / cells[1].network_micros;
    eprintln!(
        "barrier waits {speedup:.1}x longer on the network per round than the \
         {quorum}-of-{N} quorum under this tail\n"
    );

    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                r#"    {{
      "execution": "{}",
      "mean_network_nanos_per_round": {:.0},
      "mean_quorum_size": {:.2},
      "mean_stale_in_quorum": {:.3},
      "total_dropped_stale": {},
      "final_distance_to_optimum": {:.6},
      "byzantine_selection_rate": {:.4}
    }}"#,
                c.label,
                c.network_micros * 1_000.0,
                if c.quorum > 0.0 { c.quorum } else { N as f64 },
                c.stale,
                c.dropped,
                c.final_distance,
                c.byz_rate,
            )
        })
        .collect();
    println!(
        r#"{{
  "benchmark": "e9_async_quorum (crates/bench/src/bin/e9_async_quorum.rs)",
  "description": "simulated per-round network cost and trajectory quality of the synchronous barrier (threaded engine, waits for the slowest of n workers) vs async partial-quorum execution (closes each round at the quorum-th arrival, carries stragglers with staleness <= {MAX_STALENESS}) at n = {N}, f = {F}, d = {DIM}, krum, {ROUNDS} rounds, under a heavy-tailed Pareto straggler network (min 50 us one-way, alpha 1.1, 0.05 ns/byte)",
  "method": "mean simulated network nanos per round from the RoundRecord network_nanos column; trajectory quality is the final distance to the quadratic optimum; all runs are deterministic functions of seed 29",
  "claims": [
    "the barrier's per-round network cost is a multiple of the quorum's under a heavy tail (it always pays for the slowest straggler)",
    "the (n - f)-of-n quorum trajectory stays close to the barrier trajectory (same seed, partial aggregation)",
    "a deliberately straggling adversary lands only as stale carry-overs and its selection rate stays low under quorum-validated krum"
  ],
  "barrier_over_quorum_network_ratio": {speedup:.2},
  "configs": [
{}
  ]
}}"#,
        entries.join(",\n")
    );
}
