//! E12 — scaling Krum past n = 160: hierarchical group aggregation and
//! incremental Gram reuse.
//!
//! Three measurements, three claims:
//!
//! 1. **Hierarchical vs flat Krum** at n = 1000–4000, d = 64: sharding the
//!    cluster into `g` round-robin groups (Krum inside each group, Krum
//!    over the g winners) replaces the flat `O(n²d)` Gram with
//!    `O(n²d/g + g²d)` — and the groups run in parallel on top of that.
//! 2. **Incremental Gram reuse** on reuse-mode async-quorum rounds: with
//!    12.5% fresh arrivals per round (quorum = n/8 refreshes, the rest of
//!    the latest-proposal table carried), the generation-keyed cache
//!    recomputes only the refreshed rows and the trajectory stays
//!    **bit-identical** to full recomputation (asserted here, not assumed).
//! 3. **SIMD parity**: the 32-lane ILP dot the kernels build on matches an
//!    explicit std::simd-style chunked implementation bit-for-bit and sits
//!    at throughput parity with it — the ILP formulation leaves no
//!    vectorization on the table.
//!
//! Records `BENCH_hier_scaling.json`:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin e12_hier_scaling > BENCH_hier_scaling.json
//! ```
//!
//! (The human-readable table goes to stderr.)

use std::time::Instant;

use krum_attacks::SignFlip;
use krum_bench::Table;
use krum_core::{AggregationContext, Aggregator, ExecutionPolicy, Hierarchical, Krum, StageRule};
use krum_dist::{
    ClusterSpec, ExecutionStrategy, LatencyModel, LearningRateSchedule, NetworkModel, RoundEngine,
    TrainingConfig,
};
use krum_models::{GaussianEstimator, GradientEstimator, QuadraticCost};
use krum_tensor::Vector;

const DIM: usize = 64;
const GROUPS: usize = 40;

/// Deterministic pseudo-random proposals (no RNG involvement: the measured
/// region must be a pure function of the shape).
fn proposals(n: usize, dim: usize) -> Vec<Vector> {
    (0..n)
        .map(|w| {
            Vector::from(
                (0..dim)
                    .map(|c| {
                        let x = (w * 31 + c * 7 + 13) as f64;
                        (x * 0.618_033_988_749).fract() * 2.0 - 1.0
                    })
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

/// Seconds per warm `aggregate_in` call (auto policy: both sides get the
/// thread pool), measured until at least 0.4 s or 3 calls accumulate.
fn secs_per_round(rule: &dyn Aggregator, ps: &[Vector]) -> f64 {
    let mut ctx = AggregationContext::new();
    rule.aggregate_in(&mut ctx, ps).expect("warm-up aggregates");
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        rule.aggregate_in(&mut ctx, ps).expect("timed aggregate");
        iters += 1;
        if iters >= 3 && start.elapsed().as_secs_f64() >= 0.4 {
            break;
        }
        if iters >= 200 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(iters)
}

struct ScalingCell {
    n: usize,
    f: usize,
    flat_rps: f64,
    hier_rps: f64,
}

fn scaling_cell(n: usize) -> ScalingCell {
    let f = n / 20;
    let ps = proposals(n, DIM);
    let flat = Krum::new(n, f).expect("flat krum feasible");
    let hier =
        Hierarchical::new(n, f, GROUPS, StageRule::Krum, StageRule::Krum).expect("bounds hold");
    ScalingCell {
        n,
        f,
        flat_rps: 1.0 / secs_per_round(&flat, &ps),
        hier_rps: 1.0 / secs_per_round(&hier, &ps),
    }
}

struct ReuseRun {
    params: Vector,
    norm_bits: Vec<u64>,
    mean_agg_nanos: f64,
}

/// One reuse-mode async run at n = 1024 with quorum = n/8 fresh refreshes
/// per round (12.5% fresh, the remaining 87.5% of the table carried), with
/// the generation-keyed Gram cache on or off. Sequential aggregation policy
/// on both sides so the comparison isolates the algorithmic saving. Runs at
/// its own (larger) dimension: the Gram is what the cache skips, so `dim`
/// sets its weight against the uncacheable per-round score sort.
fn reuse_run(n: usize, dim: usize, rounds: usize, gram_cache: bool) -> ReuseRun {
    let f = n / 16;
    let quorum = n / 8;
    let estimators: Vec<Box<dyn GradientEstimator>> = (0..n - f)
        .map(|_| {
            Box::new(
                GaussianEstimator::new(QuadraticCost::isotropic(Vector::zeros(dim), 0.0), 0.3)
                    .unwrap(),
            ) as Box<dyn GradientEstimator>
        })
        .collect();
    let mut engine = RoundEngine::new(
        ClusterSpec::new(n, f).unwrap(),
        Box::new(Krum::new(n, f).unwrap()),
        Box::new(SignFlip::new(3.0).unwrap()),
        estimators,
        None,
        TrainingConfig {
            rounds,
            schedule: LearningRateSchedule::Constant { gamma: 0.1 },
            seed: 12,
            eval_every: rounds,
            known_optimum: Some(Vector::zeros(dim)),
        },
        ExecutionStrategy::AsyncQuorum {
            quorum,
            max_staleness: 4 * rounds, // never force a refresh past the cold start
            network: NetworkModel {
                latency: LatencyModel::Uniform {
                    min_nanos: 1_000,
                    max_nanos: 100_000,
                },
                nanos_per_byte: 0.0,
            },
            reuse_stale: true,
        },
    )
    .unwrap();
    engine.set_aggregation_policy(ExecutionPolicy::Sequential);
    engine.set_gram_cache(gram_cache);
    let (params, history) = engine.run(Vector::filled(dim, 1.0)).unwrap();
    ReuseRun {
        params,
        norm_bits: history
            .rounds
            .iter()
            .map(|r| r.aggregate_norm.to_bits())
            .collect(),
        mean_agg_nanos: history.mean_aggregation_nanos(),
    }
}

/// Explicit std::simd-style dot: four 8-wide "vector registers" carried
/// across the chunks, folded in exactly the ILP kernel's lane layout and
/// reduction order so the two formulations must agree bit-for-bit.
fn chunked_simd_dot(a: &[f64], b: &[f64]) -> f64 {
    const WIDTH: usize = 8;
    const VECS: usize = 4;
    const LANES: usize = WIDTH * VECS;
    let main = a.len() - a.len() % LANES;
    let mut vacc = [[0.0f64; WIDTH]; VECS];
    for (ca, cb) in a[..main]
        .chunks_exact(LANES)
        .zip(b[..main].chunks_exact(LANES))
    {
        for (v, acc) in vacc.iter_mut().enumerate() {
            for (lane, slot) in acc.iter_mut().enumerate() {
                *slot += ca[v * WIDTH + lane] * cb[v * WIDTH + lane];
            }
        }
    }
    // Flatten to the ILP kernel's 32-lane layout and reduce pairwise.
    let mut acc = [0.0f64; LANES];
    for (v, vec) in vacc.iter().enumerate() {
        acc[v * WIDTH..(v + 1) * WIDTH].copy_from_slice(vec);
    }
    let mut width = LANES / 2;
    while width > 0 {
        for lane in 0..width {
            acc[lane] += acc[lane + width];
        }
        width /= 2;
    }
    let mut sum = acc[0];
    for (x, y) in a[main..].iter().zip(&b[main..]) {
        sum += x * y;
    }
    sum
}

/// GFLOP/s of one dot formulation over repeated long-vector products.
fn dot_gflops(dot: impl Fn(&[f64], &[f64]) -> f64, a: &[f64], b: &[f64]) -> f64 {
    let mut sink = 0.0;
    // Warm-up.
    for _ in 0..16 {
        sink += dot(a, b);
    }
    let mut iters = 0u64;
    let start = Instant::now();
    while iters < 20_000 && start.elapsed().as_secs_f64() < 0.4 {
        sink += dot(a, b);
        iters += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    assert!(sink.is_finite());
    (2.0 * a.len() as f64 * iters as f64) / secs / 1e9
}

fn main() {
    eprintln!("E12 — hierarchical group aggregation + incremental Gram reuse");
    eprintln!("d={DIM}, f=n/20, g={GROUPS} round-robin groups, krum inside and over groups\n");

    // Part 1: flat vs hierarchical at n = 1000..4000.
    let cells: Vec<ScalingCell> = [1000, 2000, 4000].into_iter().map(scaling_cell).collect();
    let mut table = Table::new(["n", "f", "flat rounds/s", "hier rounds/s", "speedup"]);
    for c in &cells {
        table.row([
            c.n.to_string(),
            c.f.to_string(),
            format!("{:.2}", c.flat_rps),
            format!("{:.2}", c.hier_rps),
            format!("{:.1}x", c.hier_rps / c.flat_rps),
        ]);
    }
    eprintln!("{table}");

    let at_2000 = cells.iter().find(|c| c.n == 2000).expect("n=2000 cell");
    let speedup_2000 = at_2000.hier_rps / at_2000.flat_rps;
    assert!(
        speedup_2000 >= 5.0,
        "hierarchical krum must be >= 5x flat at n=2000, got {speedup_2000:.1}x"
    );

    // Part 2: incremental Gram reuse on reuse-mode async rounds.
    let (reuse_n, reuse_dim, reuse_rounds) = (1024, 256, 12);
    let cached = reuse_run(reuse_n, reuse_dim, reuse_rounds, true);
    let full = reuse_run(reuse_n, reuse_dim, reuse_rounds, false);
    assert_eq!(
        cached.norm_bits, full.norm_bits,
        "incremental Gram changed the trajectory"
    );
    assert_eq!(cached.params.dim(), full.params.dim());
    for (a, b) in cached.params.as_slice().iter().zip(full.params.as_slice()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "incremental Gram changed the final parameters"
        );
    }
    let cached_rps = 1e9 / cached.mean_agg_nanos;
    let full_rps = 1e9 / full.mean_agg_nanos;
    let reuse_speedup = cached_rps / full_rps;
    eprintln!(
        "incremental Gram @ n={reuse_n}, d={reuse_dim}, 12.5% fresh/round: {full_rps:.1} -> {cached_rps:.1} \
         aggregation rounds/s ({reuse_speedup:.1}x), trajectories bit-identical\n"
    );
    assert!(
        reuse_speedup >= 2.0,
        "incremental Gram must be >= 2x with 12.5% fresh arrivals, got {reuse_speedup:.1}x"
    );

    // Part 3: the 32-lane ILP dot vs explicit std::simd-style chunking.
    let a: Vec<f64> = (0..4096).map(|i| ((i * 37 + 11) as f64).sin()).collect();
    let b: Vec<f64> = (0..4096).map(|i| ((i * 53 + 29) as f64).cos()).collect();
    for len in [0, 1, 31, 32, 33, 64, 257, 4096] {
        assert_eq!(
            krum_core::ilp_dot(&a[..len], &b[..len]).to_bits(),
            chunked_simd_dot(&a[..len], &b[..len]).to_bits(),
            "ILP and chunked dots diverged at len {len}"
        );
    }
    let ilp_gflops = dot_gflops(krum_core::ilp_dot, &a, &b);
    let chunked_gflops = dot_gflops(chunked_simd_dot, &a, &b);
    let dot_ratio = ilp_gflops / chunked_gflops;
    eprintln!(
        "dot d=4096: ilp {ilp_gflops:.2} GFLOP/s vs chunked-simd {chunked_gflops:.2} GFLOP/s \
         (ratio {dot_ratio:.2}, bit-identical on all tested lengths)\n"
    );
    assert!(
        dot_ratio >= 0.5,
        "the ILP dot fell behind explicit chunking by more than 2x: ratio {dot_ratio:.2}"
    );

    let scaling_entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                r#"    {{
      "n": {},
      "f": {},
      "groups": {GROUPS},
      "flat_rounds_per_sec": {:.3},
      "hierarchical_rounds_per_sec": {:.3},
      "speedup": {:.2}
    }}"#,
                c.n,
                c.f,
                c.flat_rps,
                c.hier_rps,
                c.hier_rps / c.flat_rps,
            )
        })
        .collect();
    println!(
        r#"{{
  "benchmark": "e12_hier_scaling (crates/bench/src/bin/e12_hier_scaling.rs)",
  "description": "scaling krum past n = 160: (1) hierarchical group aggregation (krum per round-robin group, krum over the {GROUPS} winners) vs flat krum at n = 1000-4000, d = {DIM}; (2) generation-keyed incremental Gram reuse on reuse-mode async-quorum rounds at n = 1024, d = 256 with 12.5% fresh arrivals per round; (3) the 32-lane ILP dot vs explicit std::simd-style chunking",
  "method": "rounds/sec over warm aggregate_in calls on a reusable workspace (auto execution policy: flat and hierarchical both use the thread pool); the reuse comparison runs the full async engine with the aggregation policy forced sequential on both sides and reports 1e9 / mean aggregation_nanos; trajectory bit-identity (aggregate norms and final parameters) is asserted in-process before these numbers are printed",
  "claims": [
    "hierarchical krum is >= 5x flat krum rounds/sec at n = 2000 (asserted)",
    "incremental Gram reuse is >= 2x on async-quorum rounds with <= 25% fresh arrivals, with bit-identical trajectories (asserted)",
    "the 32-lane ILP dot is bit-identical to explicit simd-style chunking and within 2x of its throughput (asserted)"
  ],
  "hierarchical_speedup_at_n2000": {speedup_2000:.2},
  "incremental_gram": {{
    "n": {reuse_n},
    "dim": {reuse_dim},
    "quorum": {},
    "fresh_fraction": 0.125,
    "rounds": {reuse_rounds},
    "full_aggregation_rounds_per_sec": {full_rps:.3},
    "cached_aggregation_rounds_per_sec": {cached_rps:.3},
    "speedup": {reuse_speedup:.2},
    "bit_identical_trajectory": true
  }},
  "ilp_dot": {{
    "dim": 4096,
    "ilp_gflops": {ilp_gflops:.3},
    "chunked_simd_gflops": {chunked_gflops:.3},
    "ratio": {dot_ratio:.3},
    "bit_identical": true
  }},
  "scaling": [
{}
  ]
}}"#,
        reuse_n / 8,
        scaling_entries.join(",\n")
    );
}
