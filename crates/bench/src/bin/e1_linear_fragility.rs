//! E1 — Lemma 3.1: no linear aggregation rule tolerates a single Byzantine
//! worker. A lone attacker forces the average to equal an arbitrary target
//! vector `U` every round, so SGD with averaging is driven wherever the
//! adversary wants, while Krum in the same run converges to the optimum.
//!
//! Regenerates the claim behind Figure 1 / Lemma 3.1 of the paper.

use krum_attacks::{AttackSpec, ConstantTarget};
use krum_bench::Table;
use krum_core::{Aggregator, Average, Krum, RuleSpec, WeightedAverage};
use krum_dist::LearningRateSchedule;
use krum_models::EstimatorSpec;
use krum_scenario::ScenarioBuilder;
use krum_tensor::Vector;

const N: usize = 25;
const F: usize = 1;
const DIM: usize = 100;
const ROUNDS: usize = 200;
const SIGMA: f64 = 0.2;
const TARGET_FILL: f64 = 10.0;

fn run(rule: RuleSpec) -> (f64, f64) {
    let report = ScenarioBuilder::new(N, F)
        .rule(rule)
        .attack(AttackSpec::ConstantTarget { fill: TARGET_FILL })
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: SIGMA,
        })
        .schedule(LearningRateSchedule::Constant { gamma: 0.05 })
        .rounds(ROUNDS)
        .eval_every(20)
        .seed(1)
        .init_fill(2.0)
        .run()
        .expect("valid scenario");
    (
        report.final_params.norm(),
        report.summary().final_loss.unwrap_or(f64::NAN),
    )
}

fn main() {
    println!("E1 — Lemma 3.1: one Byzantine worker controls any linear rule");
    println!("setting: n = {N}, f = {F}, d = {DIM}, quadratic cost with optimum at 0, σ = {SIGMA}");
    println!("attack: the single Byzantine worker solves for the proposal that makes the");
    println!("        *average* of all n proposals equal U = (10, …, 10) every round.\n");

    // Static, single-round demonstration first: the attacker's control is exact.
    let mut rng = krum_bench::rng(0);
    let honest: Vec<Vector> = (0..N - F)
        .map(|_| {
            let mut v = Vector::filled(DIM, 1.0);
            v.axpy(1.0, &Vector::gaussian(DIM, 0.0, SIGMA, &mut rng));
            v
        })
        .collect();
    let target = Vector::filled(DIM, TARGET_FILL);
    let attack = ConstantTarget::new(target.clone());
    let ctx = krum_attacks::AttackContext {
        honest_proposals: &honest,
        current_params: &Vector::zeros(DIM),
        true_gradient: None,
        byzantine_count: F,
        total_workers: N,
        round: 0,
        aggregator_name: "average",
    };
    use krum_attacks::Attack;
    let forged = attack.forge(&ctx, &mut rng).expect("forge succeeds");
    let mut all = honest.clone();
    all.extend(forged);
    let avg_out = Average::new().aggregate(&all).expect("aggregate");
    let weighted = WeightedAverage::uniform(N).expect("weights");
    let weighted_out = weighted.aggregate(&all).expect("aggregate");
    let krum_out = Krum::new(N, F)
        .expect("config")
        .aggregate(&all)
        .expect("aggregate");
    let mut single = Table::new([
        "rule",
        "‖F − U‖ (U = attacker target)",
        "‖F − g‖ (g = honest mean)",
    ]);
    let honest_mean = Vector::mean_of(&honest).expect("non-empty");
    for (name, out) in [
        ("average", &avg_out),
        ("uniform weighted-average", &weighted_out),
        ("krum", &krum_out),
    ] {
        single.row([
            name.to_string(),
            format!("{:.6}", out.distance(&target)),
            format!("{:.6}", out.distance(&honest_mean)),
        ]);
    }
    println!("single-round control (lower first column = attacker wins):\n{single}");

    // Dynamic demonstration: full SGD trajectories, one declarative
    // scenario per rule.
    let mut table = Table::new(["aggregator", "final ‖x − x*‖", "final loss Q(x)", "verdict"]);
    for rule in [RuleSpec::Average, RuleSpec::Krum] {
        let (dist, loss) = run(rule);
        let verdict = if dist < 1.0 { "converged" } else { "hijacked" };
        table.row([
            rule.to_string(),
            format!("{dist:.4}"),
            format!("{loss:.4}"),
            verdict.to_string(),
        ]);
    }
    println!("full SGD run ({ROUNDS} rounds, γ = 0.05):\n{table}");
    println!("paper claim: a single Byzantine worker prevents convergence of any linear rule;");
    println!("Krum (2f + 2 = 4 < n = 25) is unaffected.");
}
