//! E5 — Proposition 4.3: SGD driven by Krum converges (the true gradient norm
//! reaches a small basin) despite `f` Byzantine workers, for `f` up to just
//! under `(n − 2)/2`; SGD driven by averaging does not.
//!
//! Workloads: the synthetic quadratic cost (where `∇Q` is exact) and logistic
//! regression on synthetic data. Attack: omniscient negated gradient. Every
//! cell of the table is one declarative scenario — only the rule spec, the
//! attack spec and `f` change between cells.

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_core::RuleSpec;
use krum_dist::LearningRateSchedule;
use krum_models::{DataSpec, EstimatorSpec, ModelSpec};
use krum_scenario::{ScenarioBuilder, ScenarioReport};

const N: usize = 25;
const DIM: usize = 50;
const ROUNDS: usize = 400;
const SIGMA: f64 = 0.5;

fn attack_for(f: usize) -> AttackSpec {
    if f == 0 {
        AttackSpec::None
    } else {
        AttackSpec::OmniscientNegative { scale: 4.0 }
    }
}

fn quadratic_run(rule: RuleSpec, f: usize) -> ScenarioReport {
    ScenarioBuilder::new(N, f)
        .rule(rule)
        .attack(attack_for(f))
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: SIGMA,
        })
        .schedule(LearningRateSchedule::InverseTime {
            gamma: 0.2,
            tau: 100.0,
        })
        .rounds(ROUNDS)
        .eval_every(10)
        .seed(5)
        .init_fill(4.0)
        .run()
        .expect("valid scenario")
}

fn logistic_run(rule: RuleSpec, f: usize) -> ScenarioReport {
    const FEATURES: usize = 30;
    ScenarioBuilder::new(N, f)
        .rule(rule)
        .attack(attack_for(f))
        .estimator(EstimatorSpec::Synthetic {
            model: ModelSpec::Logistic { features: FEATURES },
            data: DataSpec::LogisticRegression { samples: 4_000 },
            batch: 32,
            holdout: 0.0,
        })
        .schedule(LearningRateSchedule::InverseTime {
            gamma: 0.5,
            tau: 100.0,
        })
        .rounds(ROUNDS)
        .eval_every(50)
        .seed(5)
        .run()
        .expect("valid scenario")
}

fn main() {
    println!("E5 — Proposition 4.3: convergence of Krum-driven SGD under Byzantine workers");
    println!("n = {N}, omniscient attack (−4·∇Q), γ_t = γ₀/(1 + t/τ), {ROUNDS} rounds\n");

    println!(
        "(a) quadratic cost, d = {DIM}, σ = {SIGMA} (optimum at 0, start at ‖x‖ = {:.1}):",
        4.0 * (DIM as f64).sqrt()
    );
    let mut table = Table::new([
        "f",
        "aggregator",
        "final ‖x − x*‖",
        "min ‖∇Q(x_t)‖",
        "diverged",
    ]);
    for &f in &[0usize, 5, 11] {
        for rule in [RuleSpec::Average, RuleSpec::Krum, RuleSpec::Median] {
            let report = quadratic_run(rule, f);
            let summary = report.summary();
            table.row([
                f.to_string(),
                rule.to_string(),
                format!("{:.3}", report.final_params.norm()),
                format!("{:.3}", summary.min_gradient_norm.unwrap_or(f64::NAN)),
                if summary.diverged { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    println!("{table}");

    println!("(b) logistic regression, 30 features, mini-batch workers:");
    let mut table = Table::new(["f", "aggregator", "final loss", "min ‖∇Q‖"]);
    for &f in &[0usize, 5, 11] {
        for rule in [RuleSpec::Average, RuleSpec::Krum] {
            let report = logistic_run(rule, f);
            let summary = report.summary();
            table.row([
                f.to_string(),
                rule.to_string(),
                format!("{:.4}", summary.final_loss.unwrap_or(f64::NAN)),
                format!("{:.4}", summary.min_gradient_norm.unwrap_or(f64::NAN)),
            ]);
        }
    }
    println!("{table}");
    println!("expected shape: with f = 0 both rules converge; with f ∈ {{5, 11}} (up to just");
    println!("under (n−2)/2 = 11.5) Krum still drives ‖∇Q‖ into a small basin while averaging");
    println!("is pushed away from the optimum (its loss grows or stalls).");
}
