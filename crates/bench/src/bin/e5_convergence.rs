//! E5 — Proposition 4.3: SGD driven by Krum converges (the true gradient norm
//! reaches a small basin) despite `f` Byzantine workers, for `f` up to just
//! under `(n − 2)/2`; SGD driven by averaging does not.
//!
//! Workloads: the synthetic quadratic cost (where `∇Q` is exact) and logistic
//! regression on synthetic data. Attack: omniscient negated gradient.

use krum_attacks::{Attack, NoAttack, OmniscientNegative};
use krum_bench::{quadratic_estimators, Table};
use krum_core::{Aggregator, Average, CoordinateWiseMedian, Krum};
use krum_data::{generators, partition, BatchSampler};
use krum_dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum_models::{BatchGradientEstimator, GradientEstimator, LogisticRegression};
use krum_tensor::Vector;

const N: usize = 25;
const DIM: usize = 50;
const ROUNDS: usize = 400;
const SIGMA: f64 = 0.5;

fn attack_for(f: usize) -> Box<dyn Attack> {
    if f == 0 {
        Box::new(NoAttack::new())
    } else {
        Box::new(OmniscientNegative::new(4.0).expect("valid scale"))
    }
}

fn quadratic_run(aggregator: Box<dyn Aggregator>, f: usize) -> (f64, f64, bool) {
    let cluster = ClusterSpec::new(N, f).expect("valid cluster");
    let config = TrainingConfig {
        rounds: ROUNDS,
        schedule: LearningRateSchedule::InverseTime {
            gamma: 0.2,
            tau: 100.0,
        },
        seed: 5,
        eval_every: 10,
        known_optimum: Some(Vector::zeros(DIM)),
    };
    let mut trainer = SyncTrainer::new(
        cluster,
        aggregator,
        attack_for(f),
        quadratic_estimators(N - f, DIM, SIGMA),
        config,
    )
    .expect("valid trainer");
    let (params, history) = trainer.run(Vector::filled(DIM, 4.0)).expect("run succeeds");
    let summary = history.summary();
    (
        params.norm(),
        summary.min_gradient_norm.unwrap_or(f64::NAN),
        summary.diverged,
    )
}

fn logistic_run(aggregator: Box<dyn Aggregator>, f: usize) -> (f64, f64) {
    const FEATURES: usize = 30;
    let mut rng = krum_bench::rng(17);
    let (dataset, _, _) =
        generators::logistic_regression(4_000, FEATURES, &mut rng).expect("valid generator");
    let cluster = ClusterSpec::new(N, f).expect("valid cluster");
    let shards = partition::iid_shards(&dataset, cluster.honest(), &mut rng).expect("shards");
    let estimators: Vec<Box<dyn GradientEstimator>> = shards
        .into_iter()
        .map(|shard| {
            let sampler = BatchSampler::new(shard, 32).expect("non-empty");
            Box::new(
                BatchGradientEstimator::new(LogisticRegression::new(FEATURES), sampler)
                    .expect("estimator"),
            ) as Box<dyn GradientEstimator>
        })
        .collect();
    let config = TrainingConfig {
        rounds: ROUNDS,
        schedule: LearningRateSchedule::InverseTime {
            gamma: 0.5,
            tau: 100.0,
        },
        seed: 5,
        eval_every: 50,
        known_optimum: None,
    };
    let mut trainer =
        SyncTrainer::new(cluster, aggregator, attack_for(f), estimators, config).expect("trainer");
    let (_, history) = trainer
        .run(Vector::zeros(FEATURES + 1))
        .expect("run succeeds");
    let summary = history.summary();
    (
        summary.final_loss.unwrap_or(f64::NAN),
        summary.min_gradient_norm.unwrap_or(f64::NAN),
    )
}

fn main() {
    println!("E5 — Proposition 4.3: convergence of Krum-driven SGD under Byzantine workers");
    println!("n = {N}, omniscient attack (−4·∇Q), γ_t = γ₀/(1 + t/τ), {ROUNDS} rounds\n");

    println!(
        "(a) quadratic cost, d = {DIM}, σ = {SIGMA} (optimum at 0, start at ‖x‖ = {:.1}):",
        4.0 * (DIM as f64).sqrt()
    );
    let mut table = Table::new([
        "f",
        "aggregator",
        "final ‖x − x*‖",
        "min ‖∇Q(x_t)‖",
        "diverged",
    ]);
    for &f in &[0usize, 5, 11] {
        let rules: Vec<(&str, Box<dyn Aggregator>)> = vec![
            ("average", Box::new(Average::new())),
            (
                "krum",
                Box::new(Krum::new(N, f.clamp(1, (N - 3) / 2)).expect("config")),
            ),
            ("median", Box::new(CoordinateWiseMedian::new())),
        ];
        for (name, rule) in rules {
            let (dist, min_grad, diverged) = quadratic_run(rule, f);
            table.row([
                f.to_string(),
                name.to_string(),
                format!("{dist:.3}"),
                format!("{min_grad:.3}"),
                if diverged { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    println!("{table}");

    println!("(b) logistic regression, 30 features, mini-batch workers:");
    let mut table = Table::new(["f", "aggregator", "final loss", "min ‖∇Q‖"]);
    for &f in &[0usize, 5, 11] {
        let rules: Vec<(&str, Box<dyn Aggregator>)> = vec![
            ("average", Box::new(Average::new())),
            (
                "krum",
                Box::new(Krum::new(N, f.clamp(1, (N - 3) / 2)).expect("config")),
            ),
        ];
        for (name, rule) in rules {
            let (loss, min_grad) = logistic_run(rule, f);
            table.row([
                f.to_string(),
                name.to_string(),
                format!("{loss:.4}"),
                format!("{min_grad:.4}"),
            ]);
        }
    }
    println!("{table}");
    println!("expected shape: with f = 0 both rules converge; with f ∈ {{5, 11}} (up to just");
    println!("under (n−2)/2 = 11.5) Krum still drives ‖∇Q‖ into a small basin while averaging");
    println!("is pushed away from the optimum (its loss grows or stalls).");
}
