//! E6 — extension (full-paper Fig. 4): MLP classification on the MNIST-like
//! synthetic digit task, with 0% and 33% Byzantine workers running the
//! Gaussian and omniscient attacks. Reports cross-entropy and test accuracy
//! at a few checkpoints for averaging, Krum and Multi-Krum.

use krum_attacks::{Attack, GaussianNoise, NoAttack, OmniscientNegative};
use krum_bench::Table;
use krum_core::{Aggregator, Average, Krum, MultiKrum};
use krum_data::{generators, partition, BatchSampler, Dataset};
use krum_dist::{ClusterSpec, LearningRateSchedule, SyncTrainer, TrainingConfig};
use krum_models::{accuracy, BatchGradientEstimator, GradientEstimator, Mlp, MlpBuilder, Model};
use krum_tensor::{InitStrategy, Vector};
use std::sync::Arc;

const SIDE: usize = 12;
const HIDDEN: usize = 48;
const WORKERS: usize = 18;
const BYZANTINE: usize = 6; // 33 %
const ROUNDS: usize = 200;
const BATCH: usize = 32;

fn mlp() -> Mlp {
    MlpBuilder::new(SIDE * SIDE, 10)
        .hidden_layer(HIDDEN)
        .build()
        .expect("valid architecture")
}

fn estimators(train: &Dataset, honest: usize, seed: u64) -> Vec<Box<dyn GradientEstimator>> {
    let mut rng = krum_bench::rng(seed);
    partition::iid_shards(train, honest, &mut rng)
        .expect("shards")
        .into_iter()
        .map(|shard| {
            let sampler = BatchSampler::new(shard, BATCH).expect("non-empty");
            Box::new(BatchGradientEstimator::new(mlp(), sampler).expect("estimator"))
                as Box<dyn GradientEstimator>
        })
        .collect()
}

fn attack_by_name(name: &str) -> Box<dyn Attack> {
    match name {
        "none" => Box::new(NoAttack::new()),
        "gaussian" => Box::new(GaussianNoise::new(100.0).expect("std")),
        "omniscient" => Box::new(OmniscientNegative::new(2.0).expect("scale")),
        other => unreachable!("unknown attack {other}"),
    }
}

fn main() {
    println!("E6 — extension of the full paper's MLP evaluation (Fig. 4), on synthetic digits");
    println!(
        "MLP {}-{HIDDEN}-10 (d = {} parameters), n = {WORKERS} workers, f = {BYZANTINE} Byzantine (33%), {ROUNDS} rounds\n",
        SIDE * SIDE,
        mlp().dim()
    );

    let mut data_rng = krum_bench::rng(2017);
    let dataset =
        generators::synthetic_digits(4_000, SIDE, 0.25, &mut data_rng).expect("generator succeeds");
    let (train, test) = dataset.shuffled(&mut data_rng).split(0.8).expect("split");
    let test = Arc::new(test);
    let model = mlp();
    let mut init_rng = krum_bench::rng(3);
    let initial = model.init_parameters(InitStrategy::XavierUniform, &mut init_rng);

    let mut table = Table::new([
        "attack",
        "f",
        "aggregator",
        "loss@50",
        "loss@final",
        "test acc",
        "byz-pick%",
    ]);

    for &(attack_name, f) in &[
        ("none", 0usize),
        ("gaussian", BYZANTINE),
        ("omniscient", BYZANTINE),
    ] {
        let cluster = ClusterSpec::new(WORKERS, f).expect("valid cluster");
        let rules: Vec<(&str, Box<dyn Aggregator>)> = vec![
            ("average", Box::new(Average::new())),
            (
                "krum",
                Box::new(Krum::new(WORKERS, BYZANTINE).expect("config")),
            ),
            (
                "multi-krum",
                Box::new(MultiKrum::new(WORKERS, BYZANTINE, WORKERS - BYZANTINE).expect("config")),
            ),
        ];
        for (rule_name, rule) in rules {
            let config = TrainingConfig {
                rounds: ROUNDS,
                schedule: LearningRateSchedule::InverseTime {
                    gamma: 0.5,
                    tau: 150.0,
                },
                seed: 11,
                eval_every: 50,
                known_optimum: None,
            };
            let test_probe = Arc::clone(&test);
            let probe_model = mlp();
            let mut trainer = SyncTrainer::new(
                cluster,
                rule,
                attack_by_name(attack_name),
                estimators(&train, cluster.honest(), 77),
                config,
            )
            .expect("trainer")
            .with_accuracy_probe(move |params: &Vector| {
                accuracy(&probe_model, params, &test_probe).ok().flatten()
            });
            let (_, history) = trainer.run(initial.clone()).expect("run succeeds");
            let loss_at = |round: usize| {
                history
                    .rounds
                    .iter()
                    .filter(|r| r.round >= round)
                    .find_map(|r| r.loss)
                    .unwrap_or(f64::NAN)
            };
            let summary = history.summary();
            table.row([
                attack_name.to_string(),
                f.to_string(),
                rule_name.to_string(),
                format!("{:.3}", loss_at(50)),
                format!("{:.3}", summary.final_loss.unwrap_or(f64::NAN)),
                format!("{:.1}%", 100.0 * summary.final_accuracy.unwrap_or(f64::NAN)),
                format!("{:.0}%", 100.0 * history.selection_stats().byzantine_rate()),
            ]);
        }
    }
    println!("{table}");
    println!("expected shape (full paper, Fig. 4): without attack all rules behave similarly;");
    println!("with 33% Byzantine workers averaging stalls (gaussian) or is driven up the loss");
    println!("surface (omniscient) while Krum and Multi-Krum stay close to the clean baseline.");
}
