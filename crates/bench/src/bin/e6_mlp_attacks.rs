//! E6 — extension (full-paper Fig. 4): MLP classification on the MNIST-like
//! synthetic digit task, with 0% and 33% Byzantine workers running the
//! Gaussian and omniscient attacks. Reports cross-entropy and test accuracy
//! at a few checkpoints for averaging, Krum and Multi-Krum.
//!
//! Each table row is one declarative scenario: the MLP-on-digits workload is
//! a single `EstimatorSpec` (data generation, sharding and the held-out
//! accuracy probe included) and only the rule/attack specs vary.

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_core::RuleSpec;
use krum_dist::LearningRateSchedule;
use krum_models::{DataSpec, EstimatorSpec, ModelSpec};
use krum_scenario::ScenarioBuilder;
use krum_tensor::InitStrategy;

const SIDE: usize = 12;
const HIDDEN: usize = 48;
const WORKERS: usize = 18;
const BYZANTINE: usize = 6; // 33 %
const ROUNDS: usize = 200;
const BATCH: usize = 32;

fn workload() -> EstimatorSpec {
    EstimatorSpec::Synthetic {
        model: ModelSpec::Mlp {
            inputs: SIDE * SIDE,
            hidden: vec![HIDDEN],
            classes: 10,
        },
        data: DataSpec::SyntheticDigits {
            samples: 4_000,
            noise: 0.25,
        },
        batch: BATCH,
        holdout: 0.2,
    }
}

fn main() {
    println!("E6 — extension of the full paper's MLP evaluation (Fig. 4), on synthetic digits");
    println!(
        "MLP {}-{HIDDEN}-10 (d = {} parameters), n = {WORKERS} workers, f = {BYZANTINE} Byzantine (33%), {ROUNDS} rounds\n",
        SIDE * SIDE,
        workload().dim().expect("valid architecture")
    );

    let mut table = Table::new([
        "attack",
        "f",
        "aggregator",
        "loss@50",
        "loss@final",
        "test acc",
        "byz-pick%",
    ]);

    let attacks: [(&str, AttackSpec, usize); 3] = [
        ("none", AttackSpec::None, 0),
        (
            "gaussian",
            AttackSpec::GaussianNoise { std: 100.0 },
            BYZANTINE,
        ),
        (
            "omniscient",
            AttackSpec::OmniscientNegative { scale: 2.0 },
            BYZANTINE,
        ),
    ];
    for (attack_name, attack, f) in attacks {
        let rules = [
            ("average", RuleSpec::Average),
            ("krum", RuleSpec::Krum),
            ("multi-krum", RuleSpec::MultiKrum { m: None }),
        ];
        for (rule_name, rule) in rules {
            let report = ScenarioBuilder::new(WORKERS, f)
                .rule(rule)
                .attack(attack)
                .estimator(workload())
                .schedule(LearningRateSchedule::InverseTime {
                    gamma: 0.5,
                    tau: 150.0,
                })
                .rounds(ROUNDS)
                .eval_every(50)
                .seed(11)
                .init_sample(InitStrategy::XavierUniform, 3)
                .run()
                .expect("valid scenario");
            let history = &report.history;
            let loss_at = |round: usize| {
                history
                    .rounds
                    .iter()
                    .filter(|r| r.round >= round)
                    .find_map(|r| r.loss)
                    .unwrap_or(f64::NAN)
            };
            let summary = report.summary();
            table.row([
                attack_name.to_string(),
                f.to_string(),
                rule_name.to_string(),
                format!("{:.3}", loss_at(50)),
                format!("{:.3}", summary.final_loss.unwrap_or(f64::NAN)),
                format!("{:.1}%", 100.0 * summary.final_accuracy.unwrap_or(f64::NAN)),
                format!("{:.0}%", 100.0 * history.selection_stats().byzantine_rate()),
            ]);
        }
    }
    println!("{table}");
    println!("expected shape (full paper, Fig. 4): without attack all rules behave similarly;");
    println!("with 33% Byzantine workers averaging stalls (gaussian) or is driven up the loss");
    println!("surface (omniscient) while Krum and Multi-Krum stay close to the clean baseline.");
}
