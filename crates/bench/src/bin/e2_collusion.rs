//! E2 — Figure 2: the distance-based rule that selects the proposal minimising
//! the sum of squared distances to *all* proposals is defeated by `f ≥ 2`
//! colluding Byzantine workers, while Krum is not.
//!
//! We measure, over many independent rounds, how often each rule selects a
//! Byzantine proposal, and how far the selected vector lies from the honest
//! mean.

use krum_attacks::{Attack, AttackContext, Collusion};
use krum_bench::{rng, Table};
use krum_core::{build_aggregator, Aggregator};
use krum_tensor::Vector;

const N: usize = 20;
const DIM: usize = 50;
const TRIALS: usize = 500;
const SIGMA: f64 = 0.2;
const MAGNITUDE: f64 = 1_000.0;

struct Outcome {
    byzantine_rate: f64,
    mean_distance_to_honest: f64,
}

fn evaluate<A: Aggregator>(rule: &A, f: usize, seed: u64) -> Outcome {
    let mut rng = rng(seed);
    let attack = Collusion::new(MAGNITUDE).expect("valid magnitude");
    let g = Vector::filled(DIM, 1.0);
    let mut byz_selected = 0usize;
    let mut distance_sum = 0.0;
    for _ in 0..TRIALS {
        let honest: Vec<Vector> = (0..N - f)
            .map(|_| {
                let mut v = g.clone();
                v.axpy(1.0, &Vector::gaussian(DIM, 0.0, SIGMA, &mut rng));
                v
            })
            .collect();
        let ctx = AttackContext {
            honest_proposals: &honest,
            current_params: &Vector::zeros(DIM),
            true_gradient: Some(&g),
            byzantine_count: f,
            total_workers: N,
            round: 0,
            aggregator_name: "under-test",
        };
        let forged = attack.forge(&ctx, &mut rng).expect("forge succeeds");
        let mut proposals = honest.clone();
        proposals.extend(forged);
        let result = rule.aggregate_detailed(&proposals).expect("aggregate");
        if let Some(idx) = result.selected_index() {
            if idx >= N - f {
                byz_selected += 1;
            }
        }
        let honest_mean = Vector::mean_of(&honest).expect("non-empty");
        distance_sum += result.value.distance(&honest_mean);
    }
    Outcome {
        byzantine_rate: byz_selected as f64 / TRIALS as f64,
        mean_distance_to_honest: distance_sum / TRIALS as f64,
    }
}

fn main() {
    println!("E2 — Figure 2: collusion against the closest-to-barycenter rule");
    println!(
        "setting: n = {N}, d = {DIM}, honest gradients N(g, {SIGMA}²·I), decoys at distance {MAGNITUDE}, {TRIALS} independent rounds\n"
    );
    let mut table = Table::new(["f", "rule", "byzantine selected", "mean ‖F − mean(honest)‖"]);
    for &f in &[2usize, 4, 6] {
        // The rules under test come straight from the string registry — the
        // same specs a scenario file or `krum sweep --rule …` would use.
        let rules: Vec<(&str, Box<dyn Aggregator>)> =
            ["closest-to-barycenter", "krum", "min-diameter-subset"]
                .map(|spec| (spec, build_aggregator(spec, N, f).expect("valid spec")))
                .into_iter()
                .collect();
        for (name, rule) in rules {
            let outcome = evaluate(&rule, f, 100 + f as u64);
            table.row([
                f.to_string(),
                name.to_string(),
                format!("{:.1}%", 100.0 * outcome.byzantine_rate),
                format!("{:.3}", outcome.mean_distance_to_honest),
            ]);
        }
    }
    println!("{table}");
    println!("paper claim (Fig. 2): with f ≥ 2 the colluders force the flawed rule to select a");
    println!("Byzantine vector essentially every round; Krum (and the exponential subset rule)");
    println!("keep selecting vectors close to the honest gradient.");
}
