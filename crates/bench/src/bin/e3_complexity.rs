//! E3 — Lemma 4.1: Krum runs in `O(n² · d)` time at the parameter server.
//!
//! Coarse wall-clock sweep over `n` (at fixed `d`) and `d` (at fixed `n`),
//! reporting the measured time and the ratio to the previous row — the `n`
//! ratios should approach 4 when `n` doubles, the `d` ratios should approach 2
//! when `d` doubles. (`cargo bench -p krum-bench --bench krum_scaling` runs
//! the statistically rigorous version.)

use krum_bench::{rng, synthetic_proposals, time_aggregation, Table};
use krum_core::Krum;

const REPEATS: usize = 5;

fn measure(n: usize, f: usize, dim: usize) -> f64 {
    let mut r = rng(7);
    let proposals = synthetic_proposals(n, f, dim, 0.2, &mut r);
    let krum = Krum::new(n, f).expect("2f + 2 < n");
    // Warm-up run, then the median of a few repeats.
    let _ = time_aggregation(&krum, &proposals);
    let mut times: Vec<u128> = (0..REPEATS)
        .map(|_| time_aggregation(&krum, &proposals))
        .collect();
    times.sort_unstable();
    times[REPEATS / 2] as f64 / 1_000.0 // microseconds
}

fn main() {
    println!("E3 — Lemma 4.1: Krum computation time is O(n² · d)\n");

    let dim = 1_000;
    let mut table = Table::new(["n", "f=(n-3)/2", "time (µs)", "ratio vs previous n"]);
    let mut previous: Option<f64> = None;
    for &n in &[10usize, 20, 40, 80, 160] {
        let f = (n - 3) / 2;
        let t = measure(n, f, dim);
        let ratio = previous
            .map(|p| format!("{:.2}x", t / p))
            .unwrap_or_else(|| "-".into());
        table.row([n.to_string(), f.to_string(), format!("{t:.1}"), ratio]);
        previous = Some(t);
    }
    println!("sweep over n at d = {dim} (each doubling of n should cost ~4x):\n{table}");

    let n = 20;
    let f = 6;
    let mut table = Table::new(["d", "time (µs)", "ratio vs previous d"]);
    let mut previous: Option<f64> = None;
    for &dim in &[1_000usize, 2_000, 4_000, 8_000, 16_000, 100_000] {
        let t = measure(n, f, dim);
        let ratio = previous
            .map(|p| format!("{:.2}x", t / p))
            .unwrap_or_else(|| "-".into());
        table.row([dim.to_string(), format!("{t:.1}"), ratio]);
        previous = Some(t);
    }
    println!("sweep over d at n = {n}, f = {f} (each doubling of d should cost ~2x):\n{table}");
    println!("paper claim (Lemma 4.1): Krum is computed in O(n²·d) time — quadratic in the");
    println!("number of workers, linear in the model dimension.");
}
