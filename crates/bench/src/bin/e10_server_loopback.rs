//! E10 — the networked aggregation service vs the in-process engine.
//!
//! `krum-server` moves the paper's parameter server onto real sockets:
//! proposals travel as length-framed bytes (`krum-wire`), rounds close on
//! real arrival order, and the omniscient adversary is an explicit
//! observation relay. This driver measures what that costs at
//! `n = 40, f = 4, d = 1000`: rounds/sec of a loopback serving (server +
//! 37 worker threads over localhost TCP) vs the in-process Sequential
//! engine on the *same spec and seed*, the wire traffic per round, and the
//! broadcast-to-quorum-close arrival latency — after asserting that the
//! two worlds produced **bit-identical** trajectories, so the comparison
//! is overhead and nothing else.
//!
//! Records `BENCH_server_loopback.json`:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin e10_server_loopback > BENCH_server_loopback.json
//! ```
//!
//! (The human-readable table goes to stderr.)

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_dist::LearningRateSchedule;
use krum_models::EstimatorSpec;
use krum_scenario::{Scenario, ScenarioBuilder, ScenarioSpec};
use krum_server::run_loopback;

const N: usize = 40;
const F: usize = 4;
const DIM: usize = 1_000;
const ROUNDS: usize = 30;

fn spec() -> ScenarioSpec {
    ScenarioBuilder::new(N, F)
        .name("e10-server-loopback")
        .attack(AttackSpec::SignFlip { scale: 3.0 })
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: 0.2,
        })
        .schedule(LearningRateSchedule::Constant { gamma: 0.1 })
        .rounds(ROUNDS)
        .eval_every(ROUNDS)
        .seed(31)
        .init_fill(1.0)
        .spec()
        .expect("the e10 spec is valid")
}

struct Cell {
    label: String,
    rounds_per_sec: f64,
    micros_per_round: f64,
    bytes_per_round: f64,
    arrival_micros: f64,
}

fn main() {
    // In-process reference.
    let in_process = Scenario::from_spec(spec())
        .expect("spec builds")
        .run()
        .expect("in-process run succeeds");
    let in_wall = in_process.wall_nanos as f64;

    // The same spec served over loopback sockets.
    let served = run_loopback(spec()).expect("loopback serving succeeds");
    let served_wall = served.wall_nanos as f64;

    // The benchmark is only meaningful if both worlds did the same math.
    assert_eq!(
        served.final_params, in_process.final_params,
        "loopback must reproduce the in-process trajectory bit-for-bit"
    );

    let cells = [
        Cell {
            label: "in-process (sequential)".into(),
            rounds_per_sec: ROUNDS as f64 / (in_wall / 1e9),
            micros_per_round: in_wall / ROUNDS as f64 / 1e3,
            bytes_per_round: 0.0,
            arrival_micros: 0.0,
        },
        Cell {
            label: "loopback server (TCP)".into(),
            rounds_per_sec: ROUNDS as f64 / (served_wall / 1e9),
            micros_per_round: served_wall / ROUNDS as f64 / 1e3,
            bytes_per_round: served.history.mean_wire_bytes(),
            arrival_micros: served.history.mean_arrival_nanos() / 1e3,
        },
    ];

    let mut table = Table::new([
        "engine",
        "rounds/sec",
        "µs/round",
        "wire KiB/round",
        "arrival µs",
    ]);
    for cell in &cells {
        table.row([
            cell.label.clone(),
            format!("{:.1}", cell.rounds_per_sec),
            format!("{:.0}", cell.micros_per_round),
            if cell.bytes_per_round > 0.0 {
                format!("{:.1}", cell.bytes_per_round / 1024.0)
            } else {
                "-".into()
            },
            if cell.arrival_micros > 0.0 {
                format!("{:.0}", cell.arrival_micros)
            } else {
                "-".into()
            },
        ]);
    }
    eprintln!("{table}");
    let overhead = served_wall / in_wall;
    eprintln!(
        "serving over loopback TCP costs {overhead:.1}x the in-process wall clock at \
         n = {N}, d = {DIM} (identical trajectories)\n"
    );

    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                r#"    {{
      "engine": "{}",
      "rounds_per_sec": {:.2},
      "micros_per_round": {:.1},
      "wire_bytes_per_round": {:.0},
      "mean_arrival_micros": {:.1}
    }}"#,
                c.label, c.rounds_per_sec, c.micros_per_round, c.bytes_per_round, c.arrival_micros,
            )
        })
        .collect();
    println!(
        r#"{{
  "benchmark": "e10_server_loopback (crates/bench/src/bin/e10_server_loopback.rs)",
  "description": "throughput and wire cost of the krum-server subsystem: one scenario (krum vs sign-flip, n = {N}, f = {F}, d = {DIM}, {ROUNDS} rounds, seed 31) run in-process (Sequential engine) and served over loopback TCP (krum serve machinery: {} honest worker threads + 1 adversary connection, length-framed krum-wire protocol, omniscient-adversary observation relay)",
  "method": "both runs execute the identical ScenarioSpec; the driver asserts the final parameter vectors are bit-identical before comparing wall clocks, so the ratio is pure serving overhead (sockets, framing, threads). wire_bytes_per_round and mean_arrival_micros come from the wire_bytes/arrival_nanos RoundRecord columns only the server fills",
  "claims": [
    "the loopback server reproduces the in-process trajectory bit-for-bit for the same spec and seed (asserted at runtime)",
    "per-round wire traffic is dominated by the broadcast fan-out and the omniscient-adversary relay (~(n + honest) * 8d bytes plus framing)",
    "serving overhead stays within an order of magnitude of the in-process engine at n = 40, d = 1000, making the loopback harness cheap enough for CI"
  ],
  "loopback_over_in_process_wall_ratio": {overhead:.2},
  "configs": [
{}
  ]
}}"#,
        N - F,
        entries.join(",\n")
    );
}
