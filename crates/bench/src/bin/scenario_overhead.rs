//! Records `BENCH_scenario_overhead.json`: the cost of the declarative
//! scenario API relative to a hand-wired `RoundEngine` for the same
//! experiment. Two measurements per configuration:
//!
//! * **steady-state allocations per round** through `RoundEngine::step` for
//!   an engine built by `Scenario` vs one assembled by hand — the scenario
//!   path must add **zero**;
//! * **end-to-end wall clock** (construction + full run) for `Scenario`
//!   (spec → validate → build workload → run) vs the hand-wired pipeline —
//!   the scenario path must stay within 1%.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin scenario_overhead > BENCH_scenario_overhead.json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Instant;

use krum_attacks::AttackSpec;
use krum_core::{ExecutionPolicy, RuleSpec};
use krum_dist::{ClusterSpec, LearningRateSchedule, RoundEngine, TrainingConfig};
use krum_models::EstimatorSpec;
use krum_scenario::ScenarioBuilder;
use krum_tensor::Vector;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Counts allocations made by the current thread.
///
/// Deliberately duplicated from `tests/allocation_regression.rs` (keep the
/// two in sync): a shared home would have to live in a library crate, and
/// every crate in this workspace forbids `unsafe_code`, which a
/// `GlobalAlloc` impl requires.
struct CountingAllocator;

fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: a pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; `bump` only touches an already-initialized thread-local `Cell`
// and never allocates or unwinds, so every method inherits `System`'s
// guarantees unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the caller's `alloc` obligations are forwarded to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    // SAFETY: the caller's `alloc_zeroed` obligations are forwarded to `System` as-is.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    // SAFETY: the caller's `realloc` obligations (live ptr, matching layout)
    // are forwarded to `System` as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: the caller's `dealloc` obligations (live ptr, matching layout)
    // are forwarded to `System` as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

const N: usize = 40;
const F: usize = 18;
const SIGMA: f64 = 0.2;
const GAMMA: f64 = 0.05;
const SEED: u64 = 17;
const ROUNDS: usize = 30;
const WALL_REPEATS: usize = 9;
const WARM_ROUNDS: usize = 2;
const MEASURED_ROUNDS: usize = 10;

fn scenario_builder(rule: RuleSpec, dim: usize) -> ScenarioBuilder {
    ScenarioBuilder::new(N, F)
        .rule(rule)
        .attack(AttackSpec::GaussianNoise { std: 50.0 })
        .estimator(EstimatorSpec::GaussianQuadratic { dim, sigma: SIGMA })
        .schedule(LearningRateSchedule::Constant { gamma: GAMMA })
        .rounds(ROUNDS)
        .eval_every(ROUNDS)
        .seed(SEED)
        .init_fill(1.0)
        .track_optimum(false)
}

/// The same experiment assembled by hand, exactly as pre-scenario callers
/// wired it: estimator factory, rule, attack, engine.
fn hand_wired_engine(rule: RuleSpec, dim: usize) -> RoundEngine {
    let workload = EstimatorSpec::GaussianQuadratic { dim, sigma: SIGMA }
        .build(N - F, SEED)
        .expect("valid workload");
    RoundEngine::new(
        ClusterSpec::new(N, F).expect("valid cluster"),
        rule.build(N, F).expect("valid rule"),
        AttackSpec::GaussianNoise { std: 50.0 }
            .build(dim)
            .expect("valid attack"),
        workload.estimators,
        workload.probe,
        TrainingConfig {
            rounds: ROUNDS,
            schedule: LearningRateSchedule::Constant { gamma: GAMMA },
            seed: SEED,
            eval_every: ROUNDS,
            known_optimum: None,
        },
        krum_dist::ExecutionStrategy::Sequential,
    )
    .expect("valid engine")
}

/// Steady-state allocations per `RoundEngine::step` (sequential aggregation
/// policy, after warm-up).
fn steady_state_allocations_per_round(engine: &mut RoundEngine, dim: usize) -> f64 {
    engine.set_aggregation_policy(ExecutionPolicy::Sequential);
    let mut params = Vector::filled(dim, 1.0);
    for round in 0..WARM_ROUNDS {
        engine.step(&mut params, round).expect("round succeeds");
    }
    let before = allocations();
    for round in 0..MEASURED_ROUNDS {
        engine.step(&mut params, round).expect("round succeeds");
    }
    (allocations() - before) as f64 / MEASURED_ROUNDS as f64
}

fn json_entry(rule: RuleSpec, dim: usize) -> String {
    // Allocation delta: scenario-built engine vs hand-built engine.
    let builder = scenario_builder(rule, dim);
    let mut scenario = builder.build().expect("valid scenario");
    let scenario_allocs = steady_state_allocations_per_round(scenario.engine_mut(), dim);
    let mut engine = hand_wired_engine(rule, dim);
    let hand_allocs = steady_state_allocations_per_round(&mut engine, dim);

    // End-to-end wall clock: spec → run vs hand-wiring → run. The repeats
    // are interleaved so slow drift of the machine hits both paths equally.
    let mut scenario_times = Vec::with_capacity(WALL_REPEATS);
    let mut hand_times = Vec::with_capacity(WALL_REPEATS);
    for _ in 0..WALL_REPEATS {
        let start = Instant::now();
        let params = scenario_builder(rule, dim)
            .run()
            .expect("run succeeds")
            .final_params;
        scenario_times.push(start.elapsed().as_nanos());
        assert!(params.norm().is_finite());

        let start = Instant::now();
        let (params, _) = hand_wired_engine(rule, dim)
            .run(Vector::filled(dim, 1.0))
            .expect("run succeeds");
        hand_times.push(start.elapsed().as_nanos());
        assert!(params.norm().is_finite());
    }
    scenario_times.sort_unstable();
    hand_times.sort_unstable();
    let scenario_wall = scenario_times[WALL_REPEATS / 2];
    let hand_wall = hand_times[WALL_REPEATS / 2];
    let overhead = scenario_wall as f64 / hand_wall as f64 - 1.0;

    format!(
        r#"    {{
      "rule": "{rule}",
      "n": {N},
      "f": {F},
      "dim": {dim},
      "rounds": {ROUNDS},
      "steady_state_allocations_per_round": {{
        "scenario_engine": {scenario_allocs:.1},
        "hand_wired_engine": {hand_allocs:.1},
        "scenario_minus_hand_wired": {:.1}
      }},
      "end_to_end_wall_nanos_median": {{
        "scenario_run": {scenario_wall},
        "hand_wired_run": {hand_wall},
        "scenario_overhead_percent": {:.3}
      }}
    }}"#,
        scenario_allocs - hand_allocs,
        100.0 * overhead,
    )
}

fn main() {
    let configs = [
        (RuleSpec::Krum, 10_000usize),
        (RuleSpec::Median, 10_000),
        (RuleSpec::Krum, 1_000),
    ];
    let entries: Vec<String> = configs
        .iter()
        .map(|&(rule, dim)| json_entry(rule, dim))
        .collect();
    println!(
        r#"{{
  "benchmark": "scenario_overhead (crates/bench/src/bin/scenario_overhead.rs)",
  "description": "cost of the declarative scenario API vs a hand-wired RoundEngine for the same experiment (gaussian-noise attack, quadratic estimators, sequential strategy): steady-state allocations per engine round for the scenario-built vs hand-built engine, and median end-to-end wall time (construction + {ROUNDS}-round run) for Scenario::run vs the hand-wired pipeline",
  "method": "allocations counted with a thread-local counting global allocator over {MEASURED_ROUNDS} warm rounds (sequential aggregation policy); wall times are the median of {WALL_REPEATS} end-to-end repeats",
  "claims": [
    "scenario_minus_hand_wired allocations per round == 0 (the scenario wires the same engine, no per-round wrapper cost)",
    "scenario_overhead_percent < 1 (construction/validation cost is amortised away by the run)"
  ],
  "configs": [
{}
  ]
}}"#,
        entries.join(",\n")
    );
}
