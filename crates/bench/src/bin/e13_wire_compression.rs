//! E13 — negotiated gradient compression on the wire.
//!
//! The `krum-compress` tentpole replaces raw little-endian `f64` frames
//! with codec-encoded payloads (block floating point, top-k
//! sparsification, delta-vs-broadcast) negotiated per job. Because the
//! semantics are **quantize-before-aggregate** — both worlds aggregate
//! `decode(encode(x))` — a loopback run under any codec stays
//! bit-identical to the in-process run of the same quantized scenario,
//! and this driver asserts that before reporting anything. What it then
//! measures at `n = 40, f = 4, d = 1000` is the accuracy-vs-bytes curve:
//! mean wire bytes per round against the raw (uncompressed-equivalent)
//! figure, and the loss the quantization costs relative to the fp64
//! baseline.
//!
//! Records `BENCH_wire_compression.json`:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin e13_wire_compression > BENCH_wire_compression.json
//! ```
//!
//! (The human-readable table goes to stderr.)

use krum_attacks::AttackSpec;
use krum_bench::Table;
use krum_compress::CompressionSpec;
use krum_dist::LearningRateSchedule;
use krum_models::EstimatorSpec;
use krum_scenario::{Scenario, ScenarioBuilder, ScenarioSpec};
use krum_server::run_loopback;

const N: usize = 40;
const F: usize = 4;
const DIM: usize = 1_000;
const ROUNDS: usize = 30;

fn spec(codec: Option<CompressionSpec>) -> ScenarioSpec {
    let mut builder = ScenarioBuilder::new(N, F)
        .name("e13-wire-compression")
        .attack(AttackSpec::SignFlip { scale: 3.0 })
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: 0.2,
        })
        .schedule(LearningRateSchedule::Constant { gamma: 0.1 })
        .rounds(ROUNDS)
        .eval_every(ROUNDS)
        .seed(31)
        .init_fill(1.0);
    if let Some(codec) = codec {
        builder = builder.compression(codec);
    }
    builder.spec().expect("the e13 spec is valid")
}

struct Cell {
    label: String,
    wire_bytes: f64,
    raw_bytes: f64,
    reduction: f64,
    final_loss: f64,
    loss_delta: f64,
}

fn run(codec: Option<CompressionSpec>) -> (f64, f64, f64) {
    let s = spec(codec);
    let served = run_loopback(s.clone()).expect("loopback serving succeeds");
    let in_process = Scenario::from_spec(s)
        .expect("spec builds")
        .run()
        .expect("in-process run succeeds");
    // The curve is only meaningful if compression kept the determinism
    // contract: the served trajectory IS the in-process quantized one.
    assert_eq!(
        served.final_params, in_process.final_params,
        "compressed loopback must reproduce the in-process quantized run"
    );
    let loss = served
        .summary()
        .final_loss
        .expect("quadratic estimator records loss");
    (
        served.history.mean_wire_bytes(),
        served.history.mean_raw_bytes(),
        loss,
    )
}

fn main() {
    let configs: [(String, Option<CompressionSpec>); 6] = [
        ("uncompressed (fp64)".into(), None),
        (
            "bfp:block=64,bits=12".into(),
            Some(CompressionSpec::Bfp {
                block: 64,
                bits: 12,
            }),
        ),
        (
            "bfp:block=64,bits=8".into(),
            Some(CompressionSpec::Bfp { block: 64, bits: 8 }),
        ),
        ("topk:k=250".into(), Some(CompressionSpec::TopK { k: 250 })),
        (
            "delta+bfp:block=64,bits=12".into(),
            Some(CompressionSpec::DeltaBfp {
                block: 64,
                bits: 12,
            }),
        ),
        (
            "delta+topk:k=250".into(),
            Some(CompressionSpec::DeltaTopK { k: 250 }),
        ),
    ];

    let mut cells: Vec<Cell> = Vec::with_capacity(configs.len());
    let mut baseline_loss = f64::NAN;
    for (label, codec) in configs {
        let (wire, raw, loss) = run(codec);
        if cells.is_empty() {
            baseline_loss = loss;
        }
        cells.push(Cell {
            label,
            wire_bytes: wire,
            raw_bytes: raw,
            reduction: raw / wire,
            final_loss: loss,
            loss_delta: loss - baseline_loss,
        });
    }

    let mut table = Table::new([
        "codec",
        "wire KiB/round",
        "raw KiB/round",
        "reduction",
        "final loss",
        "loss delta",
    ]);
    for cell in &cells {
        table.row([
            cell.label.clone(),
            format!("{:.1}", cell.wire_bytes / 1024.0),
            format!("{:.1}", cell.raw_bytes / 1024.0),
            format!("{:.2}x", cell.reduction),
            format!("{:.3e}", cell.final_loss),
            format!("{:+.3e}", cell.loss_delta),
        ]);
    }
    eprintln!("{table}");

    let best = cells
        .iter()
        .skip(1)
        .map(|c| c.reduction)
        .fold(0.0_f64, f64::max);
    let headline = cells
        .iter()
        .find(|c| c.label.starts_with("bfp:block=64,bits=12"))
        .expect("the headline codec ran");
    eprintln!(
        "bfp:block=64,bits=12 moves {:.2}x fewer wire bytes per round at n = {N}, d = {DIM} \
         (best codec: {best:.2}x); every compressed run matched its in-process quantized twin \
         bit-for-bit\n",
        headline.reduction
    );
    assert!(
        headline.reduction >= 4.0,
        "acceptance: >= 4x wire reduction at n = {N}, d = {DIM}, got {:.2}x",
        headline.reduction
    );

    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                r#"    {{
      "codec": "{}",
      "wire_bytes_per_round": {:.0},
      "raw_bytes_per_round": {:.0},
      "wire_reduction": {:.2},
      "final_loss": {:.6e},
      "loss_delta_vs_fp64": {:.6e}
    }}"#,
                c.label, c.wire_bytes, c.raw_bytes, c.reduction, c.final_loss, c.loss_delta,
            )
        })
        .collect();
    println!(
        r#"{{
  "benchmark": "e13_wire_compression (crates/bench/src/bin/e13_wire_compression.rs)",
  "description": "accuracy-vs-bytes curve of the krum-compress codecs over the krum-server wire: one scenario (krum vs sign-flip, n = {N}, f = {F}, d = {DIM}, {ROUNDS} rounds, seed 31) served over loopback TCP uncompressed (v2, raw f64 frames) and under each codec the spec grammar names (block floating point at 12 and 8 mantissa bits, top-k sparsification at k = 250, and their delta-vs-broadcast composites)",
  "method": "each codec run asserts bit-identity against the in-process run of the same quantized scenario before reporting (quantize-before-aggregate determinism), so the loss deltas are the cost of quantization itself, not of serving. wire_bytes_per_round is the measured post-compression traffic; raw_bytes_per_round charges compressed frames at their uncompressed framing equivalent (the raw_bytes RoundRecord column)",
  "claims": [
    "bfp:block=64,bits=12 cuts per-round wire traffic by >= 4x at n = {N}, d = {DIM} (asserted at runtime) with a negligible loss delta against the fp64 baseline",
    "every compressed loopback trajectory is bit-identical to the in-process quantized run for the same spec and seed (asserted at runtime per codec)",
    "delta-vs-broadcast composes with both quantizers and shrinks late-training residuals once the trajectory settles near the optimum"
  ],
  "wire_reduction_ratio": {:.2},
  "best_wire_reduction_ratio": {best:.2},
  "configs": [
{}
  ]
}}"#,
        headline.reduction,
        entries.join(",\n")
    );
}
