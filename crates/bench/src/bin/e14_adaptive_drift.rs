//! E14 — adaptive adversaries against stateful defenses: the drift curve.
//!
//! The `krum-adaptive` tentpole adds stateful multi-round attacks (the
//! inlier-drift steering attack lives *inside* the honest σ-band, so Krum
//! keeps selecting it) and stateful defenses (reputation-weighted EWMA
//! down-weighting, momentum-anchored centered clipping). This driver
//! measures who wins, with the drift-metrics layer as the judge: the
//! `attacker_displacement` column is the cumulative projection of the
//! applied updates onto the attack direction — the attacker's net pull on
//! the parameters. A defense works exactly when that curve stays flat.
//!
//! At `n = 40, f = 4, d = 1000` under `inlier-drift:sigma=1.0,target=neg`,
//! each cell is run **twice** from the same seed and asserted bit-identical
//! (stateful memory is still a deterministic function of spec × seed), and
//! the headline stateful×stateful cell is additionally served over loopback
//! TCP — the `RoundFeedback` frames on the wire must reproduce the
//! in-process trajectory bit-for-bit.
//!
//! Records `BENCH_adaptive_drift.json`:
//!
//! ```sh
//! cargo run --release -p krum-bench --bin e14_adaptive_drift > BENCH_adaptive_drift.json
//! ```
//!
//! (The human-readable table goes to stderr.)

use krum_attacks::{AttackSpec, DriftTarget};
use krum_bench::Table;
use krum_core::RuleSpec;
use krum_dist::LearningRateSchedule;
use krum_models::EstimatorSpec;
use krum_scenario::{Scenario, ScenarioBuilder, ScenarioReport, ScenarioSpec};
use krum_server::run_loopback;

const N: usize = 40;
const F: usize = 4;
const DIM: usize = 1_000;
const ROUNDS: usize = 120;
const SEED: u64 = 47;

fn spec(rule: RuleSpec) -> ScenarioSpec {
    ScenarioBuilder::new(N, F)
        .name("e14-adaptive-drift")
        .rule(rule)
        .attack(AttackSpec::InlierDrift {
            sigma: 1.0,
            target: DriftTarget::Neg,
        })
        .estimator(EstimatorSpec::GaussianQuadratic {
            dim: DIM,
            sigma: 0.2,
        })
        .schedule(LearningRateSchedule::Constant { gamma: 0.1 })
        .rounds(ROUNDS)
        .eval_every(ROUNDS)
        .seed(SEED)
        .init_fill(1.0)
        .spec()
        .expect("the e14 spec is valid")
}

/// Deterministic trajectory equality, drift columns included.
fn assert_identical(a: &ScenarioReport, b: &ScenarioReport, what: &str) {
    assert_eq!(a.final_params, b.final_params, "{what}: final params");
    assert_eq!(a.history.len(), b.history.len(), "{what}");
    for (x, y) in a.history.rounds.iter().zip(&b.history.rounds) {
        assert_eq!(
            x.aggregate_norm, y.aggregate_norm,
            "{what} round {}",
            x.round
        );
        assert_eq!(
            x.selected_worker, y.selected_worker,
            "{what} round {}",
            x.round
        );
        assert_eq!(
            x.attacker_displacement, y.attacker_displacement,
            "{what} round {}",
            x.round
        );
        assert_eq!(
            x.dist_to_honest_mean, y.dist_to_honest_mean,
            "{what} round {}",
            x.round
        );
        assert_eq!(x.reputation_spread, y.reputation_spread, "{what}");
    }
}

struct Cell {
    label: &'static str,
    displacement: f64,
    mean_dist: f64,
    byz_selected: usize,
    final_loss: f64,
}

fn run(label: &'static str, rule: RuleSpec) -> Cell {
    let s = spec(rule);
    let a = Scenario::from_spec(s.clone())
        .expect("spec builds")
        .run()
        .expect("run succeeds");
    let b = Scenario::from_spec(s)
        .expect("spec builds")
        .run()
        .expect("run succeeds");
    // Stateful attack memory and stateful rule memory are deterministic:
    // two runs of the same seed must agree on every bit.
    assert_identical(&a, &b, label);
    let displacement = a
        .history
        .final_attacker_displacement()
        .expect("Byzantine rounds record a displacement");
    assert!(
        displacement.is_finite(),
        "{label}: displacement must be finite"
    );
    let byz_selected = a
        .history
        .rounds
        .iter()
        .filter(|r| r.selected_byzantine == Some(true))
        .count();
    Cell {
        label,
        displacement,
        mean_dist: a.history.mean_dist_to_honest_mean(),
        byz_selected,
        final_loss: a.summary().final_loss.expect("loss is recorded"),
    }
}

fn main() {
    let cells = [
        run("krum", RuleSpec::Krum),
        run("multi-krum", RuleSpec::MultiKrum { m: None }),
        run(
            "reputation-weighted:eta=0.2",
            RuleSpec::ReputationWeighted { eta: 0.2 },
        ),
        run(
            "centered-clip:tau=2,beta=0.9",
            RuleSpec::CenteredClip {
                tau: 2.0,
                beta: 0.9,
            },
        ),
    ];

    // The headline stateful×stateful cell crosses the wire: the adversary
    // adapts through RoundFeedback frames instead of an in-process call,
    // and the trajectory must not change by a single bit.
    let loopback_spec = spec(RuleSpec::ReputationWeighted { eta: 0.2 });
    let served = run_loopback(loopback_spec.clone()).expect("loopback serving succeeds");
    let in_process = Scenario::from_spec(loopback_spec)
        .expect("spec builds")
        .run()
        .expect("in-process run succeeds");
    assert_identical(
        &served,
        &in_process,
        "loopback inlier-drift vs reputation-weighted",
    );

    let mut table = Table::new([
        "rule",
        "attacker displacement",
        "mean dist to honest mean",
        "byz selected (rounds)",
        "final loss",
    ]);
    for cell in &cells {
        table.row([
            cell.label.to_string(),
            format!("{:+.4}", cell.displacement),
            format!("{:.4}", cell.mean_dist),
            format!("{}/{ROUNDS}", cell.byz_selected),
            format!("{:.3e}", cell.final_loss),
        ]);
    }
    eprintln!("{table}");

    let krum = &cells[0];
    let rw = &cells[2];
    let cc = &cells[3];
    let krum_disp = krum.displacement.abs();
    let rw_disp = rw.displacement.abs();
    let cc_disp = cc.displacement.abs();
    eprintln!(
        "inlier-drift pulls krum {:.1}x further than reputation-weighted and {:.1}x further \
         than centered-clip along the attack direction at n = {N}, f = {F}, d = {DIM}; every \
         cell reran bit-identically and the loopback cell matched in-process bit-for-bit\n",
        krum_disp / rw_disp.max(f64::MIN_POSITIVE),
        krum_disp / cc_disp.max(f64::MIN_POSITIVE),
    );
    assert!(
        krum_disp >= 3.0 * rw_disp || krum_disp >= 3.0 * cc_disp,
        "acceptance: krum's displacement ({krum_disp:.4}) must be >= 3x a stateful defense's \
         (reputation-weighted {rw_disp:.4}, centered-clip {cc_disp:.4})"
    );

    let entries: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                r#"    {{
      "rule": "{}",
      "attacker_displacement": {:.6},
      "mean_dist_to_honest_mean": {:.6},
      "byzantine_selected_rounds": {},
      "final_loss": {:.6e}
    }}"#,
                c.label, c.displacement, c.mean_dist, c.byz_selected, c.final_loss,
            )
        })
        .collect();
    println!(
        r#"{{
  "benchmark": "e14_adaptive_drift (crates/bench/src/bin/e14_adaptive_drift.rs)",
  "description": "stateful attack vs stateful defense drift curves: inlier-drift:sigma=1.0,target=neg (a steering attack that stays inside the honest sigma-band and adapts through per-round selection feedback) against krum, multi-krum, reputation-weighted EWMA down-weighting and momentum-anchored centered clipping at n = {N}, f = {F}, d = {DIM}, {ROUNDS} rounds, seed {SEED}",
  "method": "attacker_displacement is the drift-metrics column: the cumulative projection of the applied updates onto the attack direction (Byzantine mean minus honest mean, unit-normed) — the attacker's net pull on the parameters. every cell is run twice from the same seed and asserted bit-identical including the drift columns; the reputation-weighted cell is additionally served over loopback TCP, where the adversary adapts through RoundFeedback wire frames, and asserted bit-identical to the in-process run",
  "claims": [
    "krum keeps selecting the inlier-drift attacker (the forged gradient sits inside the honest sigma-band, so its Krum score is competitive) and accumulates >= 3x the attacker displacement of a stateful defense (asserted at runtime)",
    "reputation-weighted EWMA aggregation flattens the drift curve: persistent per-worker bias is down-weighted across rounds, which no single-round filter can do",
    "centered clipping does NOT stop sigma-band inlier drift: the attack is norm-bounded by construction, so the clip passes it through while the momentum anchor slowly follows the bias — a radius-based defense needs an outlier to clip",
    "stateful trajectories are bit-identical across repeat runs and across the wire: attack memory, defense memory and the drift columns are deterministic functions of spec and seed (asserted at runtime)"
  ],
  "krum_displacement": {:.6},
  "reputation_weighted_displacement": {:.6},
  "centered_clip_displacement": {:.6},
  "krum_over_reputation_weighted": {:.2},
  "cells": [
{}
  ]
}}"#,
        krum.displacement,
        rw.displacement,
        cc.displacement,
        krum_disp / rw_disp.max(f64::MIN_POSITIVE),
        entries.join(",\n")
    );
}
