//! Synthetic dataset generators.
//!
//! Every generator is a deterministic function of its RNG, so fixing the seed
//! reproduces the dataset exactly. The generators are stand-ins for the
//! datasets used in the full version of the paper (MNIST, spambase); see
//! DESIGN.md §2 for the substitution argument.

use krum_tensor::{Matrix, Vector};
use rand::Rng;
use rand_distr::{Bernoulli, Distribution, Normal};

use crate::dataset::{DataError, Dataset, Label};

/// Multi-class Gaussian blobs: `classes` isotropic clusters whose centres are
/// drawn uniformly from `[-separation, separation]^dim`, each sample being its
/// centre plus `N(0, noise² I)`.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `samples`, `dim` or `classes`
/// is zero, or when `noise` is negative.
pub fn gaussian_blobs<R: Rng + ?Sized>(
    samples: usize,
    dim: usize,
    classes: usize,
    separation: f64,
    noise: f64,
    rng: &mut R,
) -> Result<Dataset, DataError> {
    validate_positive(samples, "samples", "gaussian_blobs")?;
    validate_positive(dim, "dim", "gaussian_blobs")?;
    validate_positive(classes, "classes", "gaussian_blobs")?;
    if noise < 0.0 {
        return Err(DataError::invalid("gaussian_blobs", "noise must be >= 0"));
    }
    let centres: Vec<Vector> = (0..classes)
        .map(|_| Vector::uniform(dim, -separation, separation, rng))
        .collect();
    let normal = Normal::new(0.0, noise.max(f64::MIN_POSITIVE)).expect("validated noise");
    let mut rows = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % classes;
        let row: Vec<f64> = centres[class]
            .iter()
            .map(|&c| c + if noise > 0.0 { normal.sample(rng) } else { 0.0 })
            .collect();
        rows.push(row);
        labels.push(Label::Class(class));
    }
    let features = Matrix::from_rows(&rows).expect("rows share dim");
    Dataset::new(features, labels)
}

/// The classic two-spirals binary classification task in `R^2`, a non-linearly
/// separable problem that requires a hidden layer — used to exercise the MLP.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `samples` is zero or `noise`
/// is negative.
pub fn two_spirals<R: Rng + ?Sized>(
    samples: usize,
    noise: f64,
    rng: &mut R,
) -> Result<Dataset, DataError> {
    validate_positive(samples, "samples", "two_spirals")?;
    if noise < 0.0 {
        return Err(DataError::invalid("two_spirals", "noise must be >= 0"));
    }
    let normal = Normal::new(0.0, noise.max(f64::MIN_POSITIVE)).expect("validated noise");
    let mut rows = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % 2;
        let t = (i / 2) as f64 / ((samples / 2).max(1) as f64) * 3.0 * std::f64::consts::PI;
        let r = t / (3.0 * std::f64::consts::PI) * 2.0 + 0.1;
        let sign = if class == 0 { 1.0 } else { -1.0 };
        let mut x = sign * r * t.cos();
        let mut y = sign * r * t.sin();
        if noise > 0.0 {
            x += normal.sample(rng);
            y += normal.sample(rng);
        }
        rows.push(vec![x, y]);
        labels.push(Label::Class(class));
    }
    let features = Matrix::from_rows(&rows).expect("rows share dim");
    Dataset::new(features, labels)
}

/// Linear regression data `y = ⟨w*, x⟩ + b* + N(0, noise²)` with features
/// `x ~ N(0, I)`. Returns the dataset together with the ground-truth
/// parameters `(w*, b*)` so tests can compare against the analytic optimum.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `samples` or `dim` is zero, or
/// when `noise` is negative.
pub fn linear_regression<R: Rng + ?Sized>(
    samples: usize,
    dim: usize,
    noise: f64,
    rng: &mut R,
) -> Result<(Dataset, Vector, f64), DataError> {
    validate_positive(samples, "samples", "linear_regression")?;
    validate_positive(dim, "dim", "linear_regression")?;
    if noise < 0.0 {
        return Err(DataError::invalid(
            "linear_regression",
            "noise must be >= 0",
        ));
    }
    let w_star = Vector::gaussian(dim, 0.0, 1.0, rng);
    let b_star: f64 = rng.gen_range(-1.0..1.0);
    let normal = Normal::new(0.0, noise.max(f64::MIN_POSITIVE)).expect("validated noise");
    let mut rows = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let x = Vector::gaussian(dim, 0.0, 1.0, rng);
        let mut y = w_star.dot(&x) + b_star;
        if noise > 0.0 {
            y += normal.sample(rng);
        }
        rows.push(x.into_inner());
        labels.push(Label::Real(y));
    }
    let features = Matrix::from_rows(&rows).expect("rows share dim");
    Ok((Dataset::new(features, labels)?, w_star, b_star))
}

/// Logistic regression data: `P(y = 1 | x) = sigmoid(⟨w*, x⟩ + b*)` with
/// `x ~ N(0, I)`. Returns the dataset and the ground-truth `(w*, b*)`.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `samples` or `dim` is zero.
pub fn logistic_regression<R: Rng + ?Sized>(
    samples: usize,
    dim: usize,
    rng: &mut R,
) -> Result<(Dataset, Vector, f64), DataError> {
    validate_positive(samples, "samples", "logistic_regression")?;
    validate_positive(dim, "dim", "logistic_regression")?;
    let w_star = Vector::gaussian(dim, 0.0, 2.0, rng);
    let b_star: f64 = rng.gen_range(-0.5..0.5);
    let mut rows = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let x = Vector::gaussian(dim, 0.0, 1.0, rng);
        let p = sigmoid(w_star.dot(&x) + b_star);
        let y = usize::from(rng.gen_bool(p.clamp(1e-9, 1.0 - 1e-9)));
        rows.push(x.into_inner());
        labels.push(Label::Class(y));
    }
    let features = Matrix::from_rows(&rows).expect("rows share dim");
    Ok((Dataset::new(features, labels)?, w_star, b_star))
}

/// MNIST-like synthetic digits: 10 classes of `side × side` grayscale images.
///
/// Each class has a smooth random template (a sum of a handful of Gaussian
/// bumps at class-specific locations); a sample is its class template plus
/// i.i.d. pixel noise, clamped to `[0, 1]`. This preserves what the MLP
/// experiment needs from MNIST: high input dimension (784 for `side = 28`),
/// 10 classes, and samples concentrated around class-conditional means.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `samples` is zero, `side < 4`,
/// or `noise` is negative.
pub fn synthetic_digits<R: Rng + ?Sized>(
    samples: usize,
    side: usize,
    noise: f64,
    rng: &mut R,
) -> Result<Dataset, DataError> {
    validate_positive(samples, "samples", "synthetic_digits")?;
    if side < 4 {
        return Err(DataError::invalid("synthetic_digits", "side must be >= 4"));
    }
    if noise < 0.0 {
        return Err(DataError::invalid("synthetic_digits", "noise must be >= 0"));
    }
    const CLASSES: usize = 10;
    const BUMPS: usize = 4;
    let dim = side * side;
    // Build one template per class from BUMPS Gaussian bumps.
    let mut templates = Vec::with_capacity(CLASSES);
    for _ in 0..CLASSES {
        let mut template = vec![0.0f64; dim];
        for _ in 0..BUMPS {
            let cx = rng.gen_range(0.0..side as f64);
            let cy = rng.gen_range(0.0..side as f64);
            let width = rng.gen_range(side as f64 / 10.0..side as f64 / 4.0);
            let amplitude = rng.gen_range(0.5..1.0);
            for (idx, t) in template.iter_mut().enumerate() {
                let px = (idx % side) as f64;
                let py = (idx / side) as f64;
                let dist2 = (px - cx).powi(2) + (py - cy).powi(2);
                *t += amplitude * (-dist2 / (2.0 * width * width)).exp();
            }
        }
        for t in &mut template {
            *t = t.min(1.0);
        }
        templates.push(template);
    }
    let normal = Normal::new(0.0, noise.max(f64::MIN_POSITIVE)).expect("validated noise");
    let mut rows = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % CLASSES;
        let row: Vec<f64> = templates[class]
            .iter()
            .map(|&t| {
                let n = if noise > 0.0 { normal.sample(rng) } else { 0.0 };
                (t + n).clamp(0.0, 1.0)
            })
            .collect();
        rows.push(row);
        labels.push(Label::Class(class));
    }
    let features = Matrix::from_rows(&rows).expect("rows share dim");
    Dataset::new(features, labels)
}

/// Spambase-like binary classification: 57 continuous features whose
/// class-conditional means differ (word/character frequencies and run-length
/// statistics in the real dataset), plus heavier-tailed noise on a handful of
/// columns — mimicking the real dataset's skew.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `samples` is zero.
pub fn spambase_like<R: Rng + ?Sized>(samples: usize, rng: &mut R) -> Result<Dataset, DataError> {
    validate_positive(samples, "samples", "spambase_like")?;
    const DIM: usize = 57;
    // Class-conditional feature means: spam emails have elevated frequencies
    // on a random subset of features.
    let spam_shift = Vector::uniform(DIM, 0.0, 1.5, rng);
    let ham_shift = Vector::uniform(DIM, 0.0, 0.5, rng);
    let spam_prob = Bernoulli::new(0.4).expect("valid probability");
    let normal: Normal<f64> = Normal::new(0.0, 0.5).expect("valid normal");
    let heavy: Normal<f64> = Normal::new(0.0, 2.0).expect("valid normal");
    let mut rows = Vec::with_capacity(samples);
    let mut labels = Vec::with_capacity(samples);
    for _ in 0..samples {
        let is_spam = spam_prob.sample(rng);
        let shift = if is_spam { &spam_shift } else { &ham_shift };
        let row: Vec<f64> = shift
            .iter()
            .enumerate()
            .map(|(j, &m)| {
                // The last 3 features mimic the capital-run-length columns,
                // which are heavy-tailed in the real spambase data.
                let noise: f64 = if j >= DIM - 3 {
                    heavy.sample(rng).abs()
                } else {
                    normal.sample(rng)
                };
                (m + noise).max(0.0)
            })
            .collect();
        rows.push(row);
        labels.push(Label::Class(usize::from(is_spam)));
    }
    let features = Matrix::from_rows(&rows).expect("rows share dim");
    Dataset::new(features, labels)
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn validate_positive(
    value: usize,
    name: &'static str,
    context: &'static str,
) -> Result<(), DataError> {
    if value == 0 {
        Err(DataError::invalid(context, format!("{name} must be >= 1")))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gaussian_blobs_shape_and_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = gaussian_blobs(30, 5, 3, 2.0, 0.1, &mut rng).unwrap();
        assert_eq!(ds.len(), 30);
        assert_eq!(ds.feature_dim(), 5);
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.class_histogram(), vec![10, 10, 10]);
    }

    #[test]
    fn gaussian_blobs_rejects_bad_arguments() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(gaussian_blobs(0, 2, 2, 1.0, 0.1, &mut rng).is_err());
        assert!(gaussian_blobs(10, 0, 2, 1.0, 0.1, &mut rng).is_err());
        assert!(gaussian_blobs(10, 2, 0, 1.0, 0.1, &mut rng).is_err());
        assert!(gaussian_blobs(10, 2, 2, 1.0, -0.1, &mut rng).is_err());
    }

    #[test]
    fn gaussian_blobs_zero_noise_collapses_to_centres() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = gaussian_blobs(20, 3, 2, 5.0, 0.0, &mut rng).unwrap();
        // All samples of the same class are identical when noise is zero.
        let (x0, _) = ds.sample(0);
        let (x2, _) = ds.sample(2);
        assert_eq!(x0, x2);
    }

    #[test]
    fn two_spirals_is_balanced_2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = two_spirals(100, 0.05, &mut rng).unwrap();
        assert_eq!(ds.feature_dim(), 2);
        assert_eq!(ds.class_histogram(), vec![50, 50]);
        assert!(two_spirals(0, 0.0, &mut rng).is_err());
        assert!(two_spirals(10, -1.0, &mut rng).is_err());
    }

    #[test]
    fn linear_regression_labels_match_ground_truth_when_noiseless() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (ds, w, b) = linear_regression(40, 6, 0.0, &mut rng).unwrap();
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            let expected = w.dot(&x) + b;
            assert!((y.real().unwrap() - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_regression_validates_arguments() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(linear_regression(0, 2, 0.1, &mut rng).is_err());
        assert!(linear_regression(5, 0, 0.1, &mut rng).is_err());
        assert!(linear_regression(5, 2, -0.1, &mut rng).is_err());
    }

    #[test]
    fn logistic_regression_labels_are_binary_and_correlated_with_margin() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (ds, w, b) = logistic_regression(400, 4, &mut rng).unwrap();
        assert_eq!(ds.num_classes(), 2);
        // Samples with a strongly positive margin should mostly be labelled 1.
        let mut pos_margin_and_one = 0usize;
        let mut pos_margin = 0usize;
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            let margin = w.dot(&x) + b;
            if margin > 2.0 {
                pos_margin += 1;
                if y.class() == Some(1) {
                    pos_margin_and_one += 1;
                }
            }
        }
        assert!(pos_margin > 10, "need enough high-margin samples");
        assert!(pos_margin_and_one as f64 / pos_margin as f64 > 0.8);
    }

    #[test]
    fn synthetic_digits_shape_and_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ds = synthetic_digits(50, 12, 0.1, &mut rng).unwrap();
        assert_eq!(ds.feature_dim(), 144);
        assert_eq!(ds.num_classes(), 10);
        assert!(ds
            .features()
            .as_slice()
            .iter()
            .all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn synthetic_digits_class_means_are_separated() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let ds = synthetic_digits(200, 10, 0.05, &mut rng).unwrap();
        // Mean image of class 0 differs measurably from the mean image of class 1.
        let mean_image = |class: usize| -> Vector {
            let idx: Vec<usize> = (0..ds.len())
                .filter(|&i| ds.labels()[i].class() == Some(class))
                .collect();
            let vs: Vec<Vector> = idx.iter().map(|&i| ds.sample(i).0).collect();
            Vector::mean_of(&vs).unwrap()
        };
        let m0 = mean_image(0);
        let m1 = mean_image(1);
        assert!(
            m0.distance(&m1) > 0.5,
            "templates should differ between classes"
        );
    }

    #[test]
    fn synthetic_digits_validates_arguments() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert!(synthetic_digits(0, 10, 0.1, &mut rng).is_err());
        assert!(synthetic_digits(10, 3, 0.1, &mut rng).is_err());
        assert!(synthetic_digits(10, 10, -0.1, &mut rng).is_err());
    }

    #[test]
    fn spambase_like_has_57_nonnegative_features() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ds = spambase_like(300, &mut rng).unwrap();
        assert_eq!(ds.feature_dim(), 57);
        assert_eq!(ds.num_classes(), 2);
        assert!(ds.features().as_slice().iter().all(|&x| x >= 0.0));
        assert!(spambase_like(0, &mut rng).is_err());
        // Both classes should be represented in a 300-sample draw.
        let hist = ds.class_histogram();
        assert!(hist[0] > 50 && hist[1] > 50);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = synthetic_digits(20, 8, 0.1, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let b = synthetic_digits(20, 8, 0.1, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
        let c = spambase_like(20, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let d = spambase_like(20, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(c, d);
    }
}
