//! Mini-batch sampling.
//!
//! Each correct worker in the paper computes its gradient estimate on a
//! mini-batch drawn uniformly and independently from its share of the data —
//! that is exactly what [`BatchSampler::sample`] does, and what makes the
//! worker's estimate unbiased (the assumption behind `E G(x, ξ) = ∇Q(x)`).

use krum_tensor::{Matrix, Vector};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::{DataError, Dataset, Label};

/// A mini-batch of samples: a feature matrix plus parallel labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// One row per sample in the batch.
    pub features: Matrix,
    /// One label per row of [`Batch::features`].
    pub labels: Vec<Label>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature vector and label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> (Vector, Label) {
        (self.features.row_vector(i), self.labels[i])
    }
}

/// Draws uniform-with-replacement mini-batches from a dataset.
///
/// Sampling **with replacement** matches the i.i.d. assumption of the paper's
/// model section; [`BatchSampler::sample_without_replacement`] is provided for
/// epoch-style training.
///
/// # Example
///
/// ```
/// use krum_data::{generators, BatchSampler};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let ds = generators::gaussian_blobs(100, 2, 3, 1.0, 0.2, &mut rng).unwrap();
/// let sampler = BatchSampler::new(ds, 16).unwrap();
/// let batch = sampler.sample(&mut rng);
/// assert_eq!(batch.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct BatchSampler {
    dataset: Dataset,
    batch_size: usize,
}

impl BatchSampler {
    /// Creates a sampler drawing batches of `batch_size` from `dataset`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] for an empty dataset and
    /// [`DataError::InvalidArgument`] for a zero batch size.
    pub fn new(dataset: Dataset, batch_size: usize) -> Result<Self, DataError> {
        if dataset.is_empty() {
            return Err(DataError::Empty("BatchSampler::new"));
        }
        if batch_size == 0 {
            return Err(DataError::invalid(
                "BatchSampler::new",
                "batch_size must be at least 1",
            ));
        }
        Ok(Self {
            dataset,
            batch_size,
        })
    }

    /// The dataset backing this sampler.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Draws a batch uniformly **with replacement**.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Batch {
        let indices: Vec<usize> = (0..self.batch_size)
            .map(|_| rng.gen_range(0..self.dataset.len()))
            .collect();
        self.batch_from_indices(&indices)
    }

    /// Draws a batch uniformly **without replacement**. If the batch size
    /// exceeds the dataset size the whole (shuffled) dataset is returned.
    pub fn sample_without_replacement<R: Rng + ?Sized>(&self, rng: &mut R) -> Batch {
        use rand::seq::index::sample as index_sample;
        let take = self.batch_size.min(self.dataset.len());
        let indices: Vec<usize> = index_sample(rng, self.dataset.len(), take).into_vec();
        self.batch_from_indices(&indices)
    }

    /// Returns the whole dataset as one batch (full-gradient computation).
    pub fn full_batch(&self) -> Batch {
        let indices: Vec<usize> = (0..self.dataset.len()).collect();
        self.batch_from_indices(&indices)
    }

    fn batch_from_indices(&self, indices: &[usize]) -> Batch {
        let rows: Vec<Vec<f64>> = indices
            .iter()
            .map(|&i| self.dataset.features().row(i).to_vec())
            .collect();
        let labels: Vec<Label> = indices.iter().map(|&i| self.dataset.labels()[i]).collect();
        let features = Matrix::from_rows(&rows).expect("rows share the dataset feature dim");
        Batch { features, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        generators::gaussian_blobs(50, 3, 2, 2.0, 0.3, &mut rng).unwrap()
    }

    #[test]
    fn new_validates_arguments() {
        let ds = dataset();
        assert!(BatchSampler::new(ds.clone(), 0).is_err());
        assert!(BatchSampler::new(ds, 8).is_ok());
    }

    #[test]
    fn sample_has_requested_size_and_valid_rows() {
        let ds = dataset();
        let sampler = BatchSampler::new(ds.clone(), 7).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let batch = sampler.sample(&mut rng);
        assert_eq!(batch.len(), 7);
        assert!(!batch.is_empty());
        assert_eq!(batch.features.cols(), ds.feature_dim());
        // Every sampled row must exist somewhere in the dataset.
        for i in 0..batch.len() {
            let (x, _) = batch.sample(i);
            let found = (0..ds.len()).any(|j| ds.sample(j).0 == x);
            assert!(found, "sampled row not present in dataset");
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let sampler = BatchSampler::new(dataset(), 10).unwrap();
        let a = sampler.sample(&mut ChaCha8Rng::seed_from_u64(3));
        let b = sampler.sample(&mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn without_replacement_has_distinct_rows() {
        let sampler = BatchSampler::new(dataset(), 20).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let batch = sampler.sample_without_replacement(&mut rng);
        assert_eq!(batch.len(), 20);
        for i in 0..batch.len() {
            for j in (i + 1)..batch.len() {
                assert_ne!(
                    batch.features.row(i),
                    batch.features.row(j),
                    "rows {i} and {j} are duplicates"
                );
            }
        }
    }

    #[test]
    fn without_replacement_caps_at_dataset_size() {
        let sampler = BatchSampler::new(dataset(), 10_000).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let batch = sampler.sample_without_replacement(&mut rng);
        assert_eq!(batch.len(), sampler.dataset().len());
    }

    #[test]
    fn full_batch_returns_everything_in_order() {
        let ds = dataset();
        let sampler = BatchSampler::new(ds.clone(), 4).unwrap();
        let batch = sampler.full_batch();
        assert_eq!(batch.len(), ds.len());
        assert_eq!(batch.features, *ds.features());
        assert_eq!(batch.labels, ds.labels());
    }

    #[test]
    fn accessors_expose_configuration() {
        let ds = dataset();
        let sampler = BatchSampler::new(ds.clone(), 4).unwrap();
        assert_eq!(sampler.batch_size(), 4);
        assert_eq!(sampler.dataset().len(), ds.len());
    }
}
