//! Sharding a dataset across workers.
//!
//! The paper's model has every correct worker draw samples i.i.d. from the
//! same distribution ([`iid_shards`]). The introduction also mentions that
//! *biases in the way the data samples are distributed among the processes*
//! are one practical source of Byzantine-looking behaviour; [`label_skewed_shards`]
//! produces exactly that situation so experiments can study it.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::{DataError, Dataset};

/// Splits `dataset` into `workers` shards of (nearly) equal size after a
/// uniform shuffle, so every shard follows the global distribution.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `workers` is zero or larger
/// than the number of samples.
pub fn iid_shards<R: Rng + ?Sized>(
    dataset: &Dataset,
    workers: usize,
    rng: &mut R,
) -> Result<Vec<Dataset>, DataError> {
    validate_worker_count(dataset, workers)?;
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(rng);
    shards_from_indices(dataset, &indices, workers)
}

/// Splits `dataset` into `workers` shards sorted by label, so each shard sees
/// only a narrow slice of the classes (the pathological non-i.i.d. setting).
///
/// For regression datasets the sort key is the real-valued target.
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `workers` is zero or larger
/// than the number of samples.
pub fn label_skewed_shards(dataset: &Dataset, workers: usize) -> Result<Vec<Dataset>, DataError> {
    validate_worker_count(dataset, workers)?;
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.sort_by(|&a, &b| {
        dataset.labels()[a]
            .as_f64()
            .total_cmp(&dataset.labels()[b].as_f64())
    });
    shards_from_indices(dataset, &indices, workers)
}

/// Gives every worker an independently resampled bootstrap copy (sampling with
/// replacement) of `shard_size` samples — the closest match to the paper's
/// "each worker draws its share from an unknown distribution".
///
/// # Errors
///
/// Returns [`DataError::InvalidArgument`] when `workers` or `shard_size` is zero.
pub fn bootstrap_shards<R: Rng + ?Sized>(
    dataset: &Dataset,
    workers: usize,
    shard_size: usize,
    rng: &mut R,
) -> Result<Vec<Dataset>, DataError> {
    if workers == 0 {
        return Err(DataError::invalid(
            "bootstrap_shards",
            "workers must be >= 1",
        ));
    }
    if shard_size == 0 {
        return Err(DataError::invalid(
            "bootstrap_shards",
            "shard_size must be >= 1",
        ));
    }
    if dataset.is_empty() {
        return Err(DataError::Empty("bootstrap_shards"));
    }
    let mut shards = Vec::with_capacity(workers);
    for _ in 0..workers {
        let indices: Vec<usize> = (0..shard_size)
            .map(|_| rng.gen_range(0..dataset.len()))
            .collect();
        shards.push(dataset.subset(&indices)?);
    }
    Ok(shards)
}

fn validate_worker_count(dataset: &Dataset, workers: usize) -> Result<(), DataError> {
    if workers == 0 {
        return Err(DataError::invalid("shards", "workers must be >= 1"));
    }
    if workers > dataset.len() {
        return Err(DataError::invalid(
            "shards",
            format!(
                "cannot split {} samples across {workers} workers",
                dataset.len()
            ),
        ));
    }
    Ok(())
}

fn shards_from_indices(
    dataset: &Dataset,
    indices: &[usize],
    workers: usize,
) -> Result<Vec<Dataset>, DataError> {
    let base = indices.len() / workers;
    let extra = indices.len() % workers;
    let mut shards = Vec::with_capacity(workers);
    let mut offset = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        let chunk = &indices[offset..offset + size];
        shards.push(dataset.subset(chunk)?);
        offset += size;
    }
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dataset() -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        generators::gaussian_blobs(103, 4, 5, 2.0, 0.2, &mut rng).unwrap()
    }

    #[test]
    fn iid_shards_cover_the_dataset() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let shards = iid_shards(&ds, 7, &mut rng).unwrap();
        assert_eq!(shards.len(), 7);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, ds.len());
        // Shard sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(Dataset::len).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn iid_shards_have_mixed_classes() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let shards = iid_shards(&ds, 4, &mut rng).unwrap();
        for shard in &shards {
            let classes_present = shard
                .class_histogram()
                .iter()
                .filter(|&&count| count > 0)
                .count();
            assert!(classes_present >= 3, "iid shard should mix classes");
        }
    }

    #[test]
    fn label_skewed_shards_concentrate_classes() {
        let ds = dataset();
        let shards = label_skewed_shards(&ds, 5).unwrap();
        assert_eq!(shards.len(), 5);
        // The first shard should contain (almost) exclusively the lowest class.
        let hist = shards[0].class_histogram();
        let dominant = hist.iter().max().unwrap();
        let total: usize = hist.iter().sum();
        assert!(*dominant as f64 / total as f64 > 0.9);
    }

    #[test]
    fn worker_count_validation() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(iid_shards(&ds, 0, &mut rng).is_err());
        assert!(iid_shards(&ds, ds.len() + 1, &mut rng).is_err());
        assert!(label_skewed_shards(&ds, 0).is_err());
    }

    #[test]
    fn bootstrap_shards_have_requested_size() {
        let ds = dataset();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let shards = bootstrap_shards(&ds, 6, 40, &mut rng).unwrap();
        assert_eq!(shards.len(), 6);
        assert!(shards.iter().all(|s| s.len() == 40));
        assert!(bootstrap_shards(&ds, 0, 10, &mut rng).is_err());
        assert!(bootstrap_shards(&ds, 3, 0, &mut rng).is_err());
    }

    #[test]
    fn sharding_is_seed_deterministic() {
        let ds = dataset();
        let a = iid_shards(&ds, 5, &mut ChaCha8Rng::seed_from_u64(11)).unwrap();
        let b = iid_shards(&ds, 5, &mut ChaCha8Rng::seed_from_u64(11)).unwrap();
        assert_eq!(a, b);
    }
}
