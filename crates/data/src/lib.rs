//! # krum-data
//!
//! Synthetic dataset substrate for the Krum reproduction.
//!
//! The paper's full-version evaluation trains on MNIST and spambase. Those
//! datasets are not available offline in this environment, so this crate
//! provides synthetic stand-ins that preserve the properties the theory relies
//! on — i.i.d. samples, unbiased mini-batch gradients with bounded variance,
//! and non-trivial classification structure:
//!
//! * [`generators::gaussian_blobs`] — well-separated multi-class clusters,
//! * [`generators::two_spirals`] — a non-linearly separable binary task for the MLP,
//! * [`generators::linear_regression`] / [`generators::logistic_regression`] —
//!   convex tasks with analytically known optima,
//! * [`generators::synthetic_digits`] — an MNIST-like 10-class image task
//!   (class templates + pixel noise, 28×28 by default),
//! * [`generators::spambase_like`] — a 57-feature binary task mimicking the
//!   spambase feature statistics.
//!
//! [`Dataset`] stores features and labels, supports shuffling, train/test
//! splits, normalisation and worker sharding ([`partition`]); [`BatchSampler`]
//! draws reproducible mini-batches, which is what each (correct) worker uses
//! to compute its gradient estimate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod dataset;
pub mod generators;
pub mod partition;

pub use batch::{Batch, BatchSampler};
pub use dataset::{DataError, Dataset, Label};

/// Convenience prelude for the data crate.
pub mod prelude {
    pub use crate::generators;
    pub use crate::{Batch, BatchSampler, DataError, Dataset, Label};
}
