//! In-memory labelled dataset.

use krum_tensor::{Matrix, Vector};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use thiserror::Error;

/// A label attached to a sample: either a class index or a regression target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Label {
    /// Class index for classification tasks.
    Class(usize),
    /// Real-valued target for regression tasks.
    Real(f64),
}

impl Label {
    /// Class index, or `None` for a regression label.
    pub fn class(&self) -> Option<usize> {
        match self {
            Self::Class(c) => Some(*c),
            Self::Real(_) => None,
        }
    }

    /// Regression target, or `None` for a class label.
    pub fn real(&self) -> Option<f64> {
        match self {
            Self::Class(_) => None,
            Self::Real(v) => Some(*v),
        }
    }

    /// The label as an `f64`: the class index cast, or the regression value.
    pub fn as_f64(&self) -> f64 {
        match self {
            Self::Class(c) => *c as f64,
            Self::Real(v) => *v,
        }
    }
}

impl From<usize> for Label {
    fn from(c: usize) -> Self {
        Self::Class(c)
    }
}

impl From<f64> for Label {
    fn from(v: f64) -> Self {
        Self::Real(v)
    }
}

/// Errors produced when constructing or manipulating datasets.
#[derive(Debug, Clone, PartialEq, Error)]
pub enum DataError {
    /// The number of labels does not match the number of feature rows.
    #[error("feature matrix has {rows} rows but {labels} labels were provided")]
    LengthMismatch {
        /// Rows in the feature matrix.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// An operation that needs at least one sample received an empty dataset.
    #[error("operation `{0}` requires a non-empty dataset")]
    Empty(&'static str),
    /// A parameter was outside its valid range.
    #[error("invalid argument for `{context}`: {message}")]
    InvalidArgument {
        /// Operation rejecting the argument.
        context: &'static str,
        /// Explanation.
        message: String,
    },
}

impl DataError {
    /// Convenience constructor for [`DataError::InvalidArgument`].
    pub fn invalid(context: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidArgument {
            context,
            message: message.into(),
        }
    }
}

/// A labelled dataset: one feature row per sample plus a parallel label vector.
///
/// # Example
///
/// ```
/// use krum_data::{Dataset, Label};
/// use krum_tensor::Matrix;
///
/// let features = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
/// let ds = Dataset::new(features, vec![Label::Class(0), Label::Class(1)]).unwrap();
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.feature_dim(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<Label>,
}

impl Dataset {
    /// Creates a dataset from a feature matrix and one label per row.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::LengthMismatch`] when `labels.len() != features.rows()`.
    pub fn new(features: Matrix, labels: Vec<Label>) -> Result<Self, DataError> {
        if features.rows() != labels.len() {
            return Err(DataError::LengthMismatch {
                rows: features.rows(),
                labels: labels.len(),
            });
        }
        Ok(Self { features, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Dimension of each feature vector.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Borrows the feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Borrows the labels.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Feature vector of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn sample(&self, i: usize) -> (Vector, Label) {
        (self.features.row_vector(i), self.labels[i])
    }

    /// Number of distinct classes (0 for pure regression datasets).
    pub fn num_classes(&self) -> usize {
        self.labels
            .iter()
            .filter_map(Label::class)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Builds a new dataset containing the rows at `indices` (in that order).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Self, DataError> {
        let mut rows = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::invalid(
                    "subset",
                    format!("index {i} out of range for {} samples", self.len()),
                ));
            }
            rows.push(self.features.row(i).to_vec());
            labels.push(self.labels[i]);
        }
        if rows.is_empty() {
            return Err(DataError::Empty("subset"));
        }
        let features = Matrix::from_rows(&rows).expect("rows share the dataset's feature dim");
        Self::new(features, labels)
    }

    /// Returns a copy with the samples shuffled using `rng`.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        if indices.is_empty() {
            return self.clone();
        }
        self.subset(&indices).expect("indices are in range")
    }

    /// Splits into `(train, test)` where the first `ratio` fraction of samples
    /// (after any prior shuffling) goes to the training set.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] unless `0 < ratio < 1`, or
    /// [`DataError::Empty`] if either split would be empty.
    pub fn split(&self, ratio: f64) -> Result<(Self, Self), DataError> {
        if !(0.0..1.0).contains(&ratio) || ratio == 0.0 {
            return Err(DataError::invalid(
                "split",
                format!("ratio must be in (0, 1), got {ratio}"),
            ));
        }
        let cut = (self.len() as f64 * ratio).round() as usize;
        if cut == 0 || cut >= self.len() {
            return Err(DataError::Empty("split"));
        }
        let train_idx: Vec<usize> = (0..cut).collect();
        let test_idx: Vec<usize> = (cut..self.len()).collect();
        Ok((self.subset(&train_idx)?, self.subset(&test_idx)?))
    }

    /// Standardises every feature column to zero mean and unit variance
    /// (columns with zero variance are left centred only). Returns the
    /// per-column `(mean, std)` used, so a test set can be normalised with the
    /// training statistics.
    pub fn standardize(&mut self) -> Vec<(f64, f64)> {
        let n = self.len().max(1) as f64;
        let dim = self.feature_dim();
        let mut stats = Vec::with_capacity(dim);
        for c in 0..dim {
            let col = self.features.column_vector(c);
            let mean = col.mean();
            let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            let std = var.sqrt();
            stats.push((mean, std));
        }
        self.apply_standardization(&stats);
        stats
    }

    /// Applies externally computed per-column `(mean, std)` statistics.
    pub fn apply_standardization(&mut self, stats: &[(f64, f64)]) {
        let dim = self.feature_dim();
        let data = self.features.as_mut_slice();
        for (i, x) in data.iter_mut().enumerate() {
            let c = i % dim;
            if let Some(&(mean, std)) = stats.get(c) {
                *x -= mean;
                if std > 1e-12 {
                    *x /= std;
                }
            }
        }
    }

    /// Concatenates several datasets with identical feature dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] for an empty input slice and
    /// [`DataError::InvalidArgument`] when feature dimensions disagree.
    pub fn concat(parts: &[Self]) -> Result<Self, DataError> {
        let first = parts.first().ok_or(DataError::Empty("concat"))?;
        let dim = first.feature_dim();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for p in parts {
            if p.feature_dim() != dim {
                return Err(DataError::invalid(
                    "concat",
                    format!("feature dim {} != {}", p.feature_dim(), dim),
                ));
            }
            rows.extend(p.features.iter_rows().map(<[f64]>::to_vec));
            labels.extend_from_slice(&p.labels);
        }
        let features = Matrix::from_rows(&rows).expect("validated dims");
        Self::new(features, labels)
    }

    /// Counts how many samples carry each class label (indexed by class).
    pub fn class_histogram(&self) -> Vec<usize> {
        let k = self.num_classes();
        let mut hist = vec![0usize; k];
        for l in &self.labels {
            if let Some(c) = l.class() {
                hist[c] += 1;
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
        ])
        .unwrap();
        Dataset::new(
            features,
            vec![
                Label::Class(0),
                Label::Class(1),
                Label::Class(0),
                Label::Class(1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let features = Matrix::zeros(3, 2);
        assert!(matches!(
            Dataset::new(features, vec![Label::Class(0)]),
            Err(DataError::LengthMismatch { rows: 3, labels: 1 })
        ));
    }

    #[test]
    fn label_accessors() {
        assert_eq!(Label::Class(3).class(), Some(3));
        assert_eq!(Label::Class(3).real(), None);
        assert_eq!(Label::Real(2.5).real(), Some(2.5));
        assert_eq!(Label::Real(2.5).class(), None);
        assert_eq!(Label::from(4usize), Label::Class(4));
        assert_eq!(Label::from(1.5f64), Label::Real(1.5));
        assert_eq!(Label::Class(2).as_f64(), 2.0);
        assert_eq!(Label::Real(-1.0).as_f64(), -1.0);
    }

    #[test]
    fn basic_accessors() {
        let ds = toy();
        assert_eq!(ds.len(), 4);
        assert!(!ds.is_empty());
        assert_eq!(ds.feature_dim(), 2);
        assert_eq!(ds.num_classes(), 2);
        let (x, y) = ds.sample(2);
        assert_eq!(x.as_slice(), &[2.0, 2.0]);
        assert_eq!(y, Label::Class(0));
        assert_eq!(ds.class_histogram(), vec![2, 2]);
    }

    #[test]
    fn subset_and_errors() {
        let ds = toy();
        let sub = ds.subset(&[3, 0]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.sample(0).0.as_slice(), &[3.0, 3.0]);
        assert!(ds.subset(&[9]).is_err());
        assert!(matches!(ds.subset(&[]), Err(DataError::Empty(_))));
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let ds = toy();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sh = ds.shuffled(&mut rng);
        assert_eq!(sh.len(), ds.len());
        let mut orig: Vec<f64> = ds.features().as_slice().to_vec();
        let mut new: Vec<f64> = sh.features().as_slice().to_vec();
        orig.sort_by(f64::total_cmp);
        new.sort_by(f64::total_cmp);
        assert_eq!(orig, new);
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let ds = toy();
        let a = ds.shuffled(&mut ChaCha8Rng::seed_from_u64(5));
        let b = ds.shuffled(&mut ChaCha8Rng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn split_ratios() {
        let ds = toy();
        let (train, test) = ds.split(0.5).unwrap();
        assert_eq!(train.len(), 2);
        assert_eq!(test.len(), 2);
        assert!(ds.split(0.0).is_err());
        assert!(ds.split(1.0).is_err());
        assert!(ds.split(-0.5).is_err());
    }

    #[test]
    fn standardize_centres_columns() {
        let mut ds = toy();
        let stats = ds.standardize();
        assert_eq!(stats.len(), 2);
        for c in 0..2 {
            let col = ds.features().column_vector(c);
            assert!(col.mean().abs() < 1e-12);
        }
        // Applying the same stats to an identical dataset gives identical output.
        let mut other = toy();
        other.apply_standardization(&stats);
        assert_eq!(ds, other);
    }

    #[test]
    fn concat_validates_dims() {
        let ds = toy();
        let merged = Dataset::concat(&[ds.clone(), ds.clone()]).unwrap();
        assert_eq!(merged.len(), 8);
        assert!(Dataset::concat(&[]).is_err());
        let other = Dataset::new(Matrix::zeros(1, 3), vec![Label::Class(0)]).unwrap();
        assert!(Dataset::concat(&[ds, other]).is_err());
    }

    #[test]
    fn num_classes_for_regression_is_zero() {
        let ds = Dataset::new(
            Matrix::zeros(2, 1),
            vec![Label::Real(0.1), Label::Real(0.2)],
        )
        .unwrap();
        assert_eq!(ds.num_classes(), 0);
        assert!(ds.class_histogram().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let ds = toy();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
