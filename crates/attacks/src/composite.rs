//! Composite and adaptive attack strategies (extensions).
//!
//! The paper's adversary is static within a run; these extensions explore two
//! stronger behaviours the follow-up literature studies: switching strategies
//! over time, and adapting the attack magnitude to Krum's selection radius so
//! the forged vectors remain plausible enough to be selected.

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::attack::{Attack, AttackContext, AttackError};

/// Runs a different inner attack depending on the round number, cycling
/// through the provided schedule. Useful for testing that an aggregation rule
/// does not merely adapt to a single stationary adversary.
///
/// Timing note: [`Attack::timing`] is queried *before* the engine knows the
/// round's context, so a composite cannot forward a per-round inner timing.
/// `Alternating` therefore reports the default
/// [`AttackTiming::Honest`](crate::AttackTiming::Honest) — under
/// partial-quorum execution the inner attacks' *values* alternate, but all
/// proposals race with honest latency. Use the timing-aware attacks
/// directly (un-composed) when the straggle/respond-last behaviour matters.
pub struct Alternating {
    attacks: Vec<Box<dyn Attack>>,
    period: usize,
}

impl Alternating {
    /// Creates an alternating attack that switches to the next inner attack
    /// every `period` rounds, cycling through `attacks`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] when `attacks` is empty or `period`
    /// is zero.
    pub fn new(attacks: Vec<Box<dyn Attack>>, period: usize) -> Result<Self, AttackError> {
        if attacks.is_empty() {
            return Err(AttackError::config(
                "alternating",
                "at least one inner attack is required",
            ));
        }
        if period == 0 {
            return Err(AttackError::config("alternating", "period must be >= 1"));
        }
        Ok(Self { attacks, period })
    }

    /// Number of inner attacks in the cycle.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// Returns `true` when no inner attacks are configured (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// Which inner attack is active on `round`.
    fn active_index(&self, round: usize) -> usize {
        (round / self.period) % self.attacks.len()
    }
}

impl Attack for Alternating {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        self.attacks[self.active_index(ctx.round)].forge(ctx, rng)
    }

    fn name(&self) -> String {
        let inner: Vec<String> = self.attacks.iter().map(|a| a.name()).collect();
        format!("alternating[{}]", inner.join(","))
    }
}

impl std::fmt::Debug for Alternating {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Alternating")
            .field("attacks", &self.name())
            .field("period", &self.period)
            .finish()
    }
}

/// A Krum-aware stealth attack: instead of proposing wildly remote vectors
/// (which Krum's neighbour scoring discards), the coalition proposes the
/// honest mean **shifted against the descent direction by a fraction of the
/// honest spread**. The forged vectors therefore sit inside or near the honest
/// cloud — close enough to be selected occasionally — while consistently
/// biasing the update away from the true gradient.
///
/// The `aggressiveness` parameter is the shift expressed in multiples of the
/// honest proposals' root-mean-square deviation from their mean: small values
/// are stealthy, large values degenerate into a sign-flip-like attack that
/// Krum filters out again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KrumAware {
    aggressiveness: f64,
}

impl KrumAware {
    /// Creates the attack with the given aggressiveness (in units of the
    /// honest spread).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `aggressiveness` is positive
    /// and finite.
    pub fn new(aggressiveness: f64) -> Result<Self, AttackError> {
        if !(aggressiveness > 0.0 && aggressiveness.is_finite()) {
            return Err(AttackError::config(
                "krum-aware",
                "aggressiveness must be positive and finite",
            ));
        }
        Ok(Self { aggressiveness })
    }

    /// The configured shift, in multiples of the honest spread.
    pub fn aggressiveness(&self) -> f64 {
        self.aggressiveness
    }
}

impl Attack for KrumAware {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let honest = ctx.honest_proposals;
        let mean = ctx
            .honest_mean()
            .ok_or_else(|| AttackError::context("krum-aware", "no honest proposals to observe"))?;
        // Root-mean-square deviation of the honest proposals from their mean —
        // the radius of the cloud Krum implicitly trusts.
        let spread = if honest.len() > 1 {
            (honest
                .iter()
                .map(|v| v.squared_distance(&mean))
                .sum::<f64>()
                / honest.len() as f64)
                .sqrt()
        } else {
            0.0
        };
        // Shift against the best gradient estimate available to the adversary.
        let direction = ctx
            .gradient_estimate()
            .and_then(|g| g.normalized())
            .unwrap_or_else(|| Vector::zeros(ctx.dim()));
        let mut forged = mean;
        forged.axpy(-self.aggressiveness * spread, &direction);
        Ok(vec![forged; ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "krum-aware".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{GaussianNoise, SignFlip};
    use krum_core::{Aggregator, Krum};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn honest_cloud(count: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut v = Vector::filled(dim, 1.0);
                v.axpy(1.0, &Vector::gaussian(dim, 0.0, 0.2, &mut rng));
                v
            })
            .collect()
    }

    fn ctx<'a>(
        honest: &'a [Vector],
        params: &'a Vector,
        f: usize,
        round: usize,
    ) -> AttackContext<'a> {
        AttackContext {
            honest_proposals: honest,
            current_params: params,
            true_gradient: None,
            byzantine_count: f,
            total_workers: honest.len() + f,
            round,
            aggregator_name: "krum",
        }
    }

    #[test]
    fn alternating_validation_and_cycling() {
        assert!(Alternating::new(vec![], 5).is_err());
        assert!(Alternating::new(vec![Box::new(SignFlip::new(1.0).unwrap())], 0).is_err());
        let alt = Alternating::new(
            vec![
                Box::new(SignFlip::new(2.0).unwrap()),
                Box::new(GaussianNoise::new(100.0).unwrap()),
            ],
            3,
        )
        .unwrap();
        assert_eq!(alt.len(), 2);
        assert!(!alt.is_empty());
        assert!(alt.name().contains("sign-flip") && alt.name().contains("gaussian-noise"));
        assert!(!format!("{alt:?}").is_empty());
        // Rounds 0..2 use attack 0, rounds 3..5 use attack 1, round 6 wraps.
        assert_eq!(alt.active_index(0), 0);
        assert_eq!(alt.active_index(2), 0);
        assert_eq!(alt.active_index(3), 1);
        assert_eq!(alt.active_index(6), 0);
    }

    #[test]
    fn alternating_delegates_to_the_active_attack() {
        let honest = honest_cloud(6, 4, 0);
        let params = Vector::zeros(4);
        let alt = Alternating::new(
            vec![
                Box::new(SignFlip::new(3.0).unwrap()),
                Box::new(GaussianNoise::new(500.0).unwrap()),
            ],
            1,
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Round 0: sign-flip → exactly −3 × honest mean, all identical.
        let round0 = alt.forge(&ctx(&honest, &params, 2, 0), &mut rng).unwrap();
        let mean = Vector::mean_of(&honest).unwrap();
        assert!(round0[0].cosine_similarity(&mean).unwrap() < -0.999);
        assert_eq!(round0[0], round0[1]);
        // Round 1: gaussian noise → huge, non-identical vectors.
        let round1 = alt.forge(&ctx(&honest, &params, 2, 1), &mut rng).unwrap();
        assert!(round1[0].norm() > 100.0);
        assert_ne!(round1[0], round1[1]);
    }

    #[test]
    fn krum_aware_validation_and_stealth() {
        assert!(KrumAware::new(0.0).is_err());
        assert!(KrumAware::new(f64::NAN).is_err());
        let attack = KrumAware::new(1.0).unwrap();
        assert_eq!(attack.aggressiveness(), 1.0);
        let honest = honest_cloud(8, 6, 2);
        let params = Vector::zeros(6);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let forged = attack
            .forge(&ctx(&honest, &params, 3, 0), &mut rng)
            .unwrap();
        assert_eq!(forged.len(), 3);
        // The forged vector stays close to the honest cloud (within a few
        // spreads of the mean)…
        let mean = Vector::mean_of(&honest).unwrap();
        let spread = (honest
            .iter()
            .map(|v| v.squared_distance(&mean))
            .sum::<f64>()
            / honest.len() as f64)
            .sqrt();
        assert!(forged[0].distance(&mean) <= 1.0 * spread + 1e-9);
        // …and points less in the descent direction than the honest mean does.
        assert!(forged[0].dot(&mean) < mean.dot(&mean));
        // No honest proposals → context error.
        let empty: Vec<Vector> = vec![];
        assert!(attack.forge(&ctx(&empty, &params, 1, 0), &mut rng).is_err());
    }

    #[test]
    fn krum_sometimes_selects_the_stealthy_vector_but_never_a_blatant_one() {
        // With a modest aggressiveness the forged vector is plausible enough
        // to win Krum's score occasionally; with a huge one it never is.
        let mut stealth_selected = 0usize;
        let mut blatant_selected = 0usize;
        let trials: usize = 200;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for trial in 0..trials {
            let honest = honest_cloud(7, 5, 100 + trial as u64);
            let params = Vector::zeros(5);
            let c = ctx(&honest, &params, 2, 0);
            let stealthy = KrumAware::new(0.5).unwrap().forge(&c, &mut rng).unwrap();
            let blatant = KrumAware::new(50.0).unwrap().forge(&c, &mut rng).unwrap();
            let krum = Krum::new(9, 2).unwrap();
            let mut with_stealthy = honest.clone();
            with_stealthy.extend(stealthy);
            if krum
                .aggregate_detailed(&with_stealthy)
                .unwrap()
                .selected_index()
                .unwrap()
                >= 7
            {
                stealth_selected += 1;
            }
            let mut with_blatant = honest.clone();
            with_blatant.extend(blatant);
            if krum
                .aggregate_detailed(&with_blatant)
                .unwrap()
                .selected_index()
                .unwrap()
                >= 7
            {
                blatant_selected += 1;
            }
        }
        assert_eq!(
            blatant_selected, 0,
            "a 50-spread shift must never be selected"
        );
        assert!(
            stealth_selected > trials / 10,
            "a 0.5-spread shift should be selected reasonably often, got {stealth_selected}/{trials}"
        );
    }
}
