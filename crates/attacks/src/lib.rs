//! # krum-attacks
//!
//! Byzantine worker strategies for the Krum reproduction.
//!
//! The paper's adversary model is maximal: Byzantine workers know the choice
//! function, see every other proposal, know the current parameters (and, in
//! our synthetic settings, the true gradient), and may collude. Each
//! [`Attack`] implementation receives all of that through [`AttackContext`]
//! and returns the `f` vectors the Byzantine workers propose this round.
//!
//! Implemented strategies:
//!
//! * [`NoAttack`] — Byzantine slots behave honestly (baseline);
//! * [`ConstantTarget`] — the Lemma 3.1 construction: forces any linear rule
//!   (averaging) to output an arbitrary target vector;
//! * [`Collusion`] — the Figure 2 construction: `f − 1` remote decoys plus one
//!   colluder at the displaced barycenter, which defeats the
//!   closest-to-barycenter rule;
//! * [`GaussianNoise`] — the full paper's "Gaussian" attack (random proposals
//!   with large variance);
//! * [`SignFlip`] — proposes the negated, rescaled mean of the honest
//!   gradients;
//! * [`OmniscientNegative`] — proposes the negated, rescaled *true* gradient
//!   (the full paper's omniscient adversary);
//! * [`LittleIsEnough`] — shifts each coordinate by a small multiple of the
//!   honest standard deviation (a stealthy extension attack from the
//!   follow-up literature);
//! * [`Mimic`] — copies an honest proposal (benign-looking, degrades
//!   diversity);
//! * [`Alternating`] — cycles through a schedule of inner attacks (extension);
//! * [`KrumAware`] — a stealth attack that stays inside the honest cloud so
//!   Krum occasionally selects it (extension);
//! * [`Straggler`] — timing-aware: deliberately late sign-flipped proposals
//!   that land as stale carry-overs under partial-quorum execution;
//! * [`LastToRespond`] — timing-aware: waits to observe the closing quorum,
//!   then squeezes a negated gradient into its last slots;
//! * [`NonFinite`] — fault injection: NaN-filled proposals probing
//!   degenerate-input handling across the stack;
//! * [`InlierDrift`] — **stateful**: colluders drifting inside a σ-band of
//!   the honest distribution while steering toward a target direction;
//! * [`AlieVariance`] — **stateful**: "a little is enough" collusion with
//!   the z-score derived from the cluster shape;
//! * [`AdaptiveProbe`] — **stateful**: probes the defense's filtering
//!   threshold through per-round selection feedback.
//!
//! The adversary controls *timing* as well as values: every attack reports
//! an [`AttackTiming`] (racing honestly, straggling, or responding last)
//! that the partial-quorum engine honours and the barrier engines ignore.
//! Stateful adversaries additionally receive a [`RoundFeedback`] after every
//! closed round through [`Attack::observe`] and evolve across rounds — see
//! the [`adaptive`](crate::InlierDrift) strategies for the observe/forge
//! loop.
//!
//! Every non-composite strategy is also constructible from a typed, serde
//! round-trippable [`AttackSpec`] (or its textual form such as
//! `"sign-flip:scale=5"` via [`build_attack`]) — the registry the scenario
//! API and the `krum` CLI drive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod attack;
mod composite;
mod spec;
mod strategies;

pub use adaptive::{AdaptiveProbe, AlieVariance, DriftTarget, InlierDrift};
pub use attack::{Attack, AttackContext, AttackError, AttackTiming, RoundFeedback};
pub use composite::{Alternating, KrumAware};
pub use spec::{build_attack, AttackSpec, ATTACK_NAMES};
pub use strategies::{
    Collusion, ConstantTarget, GaussianNoise, LastToRespond, LittleIsEnough, Mimic, NoAttack,
    NonFinite, OmniscientNegative, SignFlip, Straggler,
};

/// Convenience prelude for the attacks crate.
pub mod prelude {
    pub use crate::{
        AdaptiveProbe, AlieVariance, Alternating, Attack, AttackContext, AttackError, AttackSpec,
        AttackTiming, Collusion, ConstantTarget, DriftTarget, GaussianNoise, InlierDrift,
        KrumAware, LastToRespond, LittleIsEnough, Mimic, NoAttack, NonFinite, OmniscientNegative,
        RoundFeedback, SignFlip, Straggler,
    };
}
