//! Typed attack specifications and the registry built on them.
//!
//! Mirrors `krum_core::RuleSpec` for the adversary side: an [`AttackSpec`] is
//! a serialisable value naming a Byzantine strategy and its parameters, with
//! `Display`/`FromStr` round-tripping the canonical textual form
//! (`"sign-flip:scale=5"`, `"gaussian-noise:std=100"`). The model dimension
//! is supplied at [`AttackSpec::build`] time so one spec can be swept across
//! workloads. Composite attacks ([`Alternating`](crate::Alternating)) hold
//! arbitrary boxed inner attacks and are constructed programmatically, not
//! through the spec registry.

use std::fmt;
use std::str::FromStr;

use krum_tensor::Vector;

use crate::adaptive::{AdaptiveProbe, AlieVariance, DriftTarget, InlierDrift};
use crate::attack::{Attack, AttackError};
use crate::composite::KrumAware;
use crate::strategies::{
    Collusion, ConstantTarget, GaussianNoise, LastToRespond, LittleIsEnough, Mimic, NoAttack,
    NonFinite, OmniscientNegative, SignFlip, Straggler,
};

/// Names of every attack the spec registry can build (canonical spellings).
pub const ATTACK_NAMES: &[&str] = &[
    "none",
    "constant-target",
    "collusion",
    "gaussian-noise",
    "sign-flip",
    "omniscient-negative",
    "little-is-enough",
    "mimic",
    "krum-aware",
    "straggler",
    "last-to-respond",
    "non-finite",
    "inlier-drift",
    "alie-variance",
    "adaptive-probe",
];

/// A typed, serialisable specification of a Byzantine strategy.
///
/// `Display` renders the canonical textual form and `FromStr` parses it back
/// — `spec.to_string().parse()` is the identity for every variant. Omitted
/// parameters parse to each strategy's documented default. Serde serialises
/// the spec as the same string, so a JSON scenario reads
/// `"attack": "omniscient-negative:scale=4"`. Parameter *values* are only
/// range-checked at [`AttackSpec::build`] time (parsing records what was
/// written; building runs the strategies' constructors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSpec {
    /// Byzantine slots behave honestly ([`NoAttack`]).
    None,
    /// Lemma 3.1: force the average to equal `(fill, …, fill)`
    /// ([`ConstantTarget`] with a constant-filled target vector).
    ConstantTarget {
        /// Per-coordinate value of the enforced aggregate (default `10`).
        fill: f64,
    },
    /// The Figure-2 collusion ([`Collusion`]).
    Collusion {
        /// Decoy distance from the honest mean (default `100`).
        magnitude: f64,
    },
    /// Large-variance random proposals ([`GaussianNoise`]).
    GaussianNoise {
        /// Per-coordinate standard deviation (default `100`).
        std: f64,
    },
    /// Negated, rescaled honest mean ([`SignFlip`]).
    SignFlip {
        /// Magnification of the flipped mean (default `2`).
        scale: f64,
    },
    /// Negated, rescaled true gradient ([`OmniscientNegative`]).
    OmniscientNegative {
        /// Magnification of the negated gradient (default `2`).
        scale: f64,
    },
    /// Small per-coordinate shift in honest-std units ([`LittleIsEnough`]).
    LittleIsEnough {
        /// Shift in units of the per-coordinate std (default `1.5`).
        z: f64,
    },
    /// Copy an honest proposal ([`Mimic`]).
    Mimic {
        /// Index of the copied honest worker (default `0`).
        victim: usize,
    },
    /// Stealth shift tuned to Krum's selection radius ([`KrumAware`]).
    KrumAware {
        /// Shift in multiples of the honest spread (default `0.5`).
        aggressiveness: f64,
    },
    /// Timing-aware: deliberately late sign-flipped proposals that land as
    /// stale carry-overs under partial-quorum execution ([`Straggler`]).
    Straggler {
        /// Magnification of the flipped honest mean (default `2`).
        scale: f64,
    },
    /// Timing-aware: waits to observe the closing quorum, then responds just
    /// before it closes with a negated gradient ([`LastToRespond`]).
    LastToRespond {
        /// Magnification of the negated gradient (default `2`).
        scale: f64,
    },
    /// Fault injection: NaN-filled proposals probing degenerate-input
    /// handling ([`NonFinite`]).
    NonFinite,
    /// Stateful: inlier collusion drifting inside a σ-band of the honest
    /// distribution ([`InlierDrift`]).
    InlierDrift {
        /// Band width in per-coordinate honest stds (default `1.5`).
        sigma: f64,
        /// Steering direction relative to descent (default [`DriftTarget::Neg`]).
        target: DriftTarget,
    },
    /// Stateful: ALIE collusion with the z-score derived from the cluster
    /// shape ([`AlieVariance`]).
    AlieVariance {
        /// Extra multiplier on the derived z-score (default `1`).
        scale: f64,
    },
    /// Stateful: probes the defense's filtering threshold via selection
    /// feedback ([`AdaptiveProbe`]).
    AdaptiveProbe {
        /// Initial probe magnitude (default `1`).
        start: f64,
        /// Growth factor while selected (default `1.25`).
        grow: f64,
        /// Back-off factor when filtered (default `0.5`).
        backoff: f64,
    },
}

impl AttackSpec {
    /// Builds the Byzantine strategy for a model of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] when a parameter is out of range
    /// for the strategy (non-positive scale, zero dimension, …).
    pub fn build(&self, dim: usize) -> Result<Box<dyn Attack>, AttackError> {
        if dim == 0 {
            return Err(AttackError::config(
                "spec",
                "attacks need a model dimension >= 1",
            ));
        }
        match *self {
            Self::None => Ok(Box::new(NoAttack::new())),
            Self::ConstantTarget { fill } => {
                if !fill.is_finite() {
                    return Err(AttackError::config(
                        "constant-target",
                        "fill must be finite",
                    ));
                }
                Ok(Box::new(ConstantTarget::new(Vector::filled(dim, fill))))
            }
            Self::Collusion { magnitude } => Ok(Box::new(Collusion::new(magnitude)?)),
            Self::GaussianNoise { std } => Ok(Box::new(GaussianNoise::new(std)?)),
            Self::SignFlip { scale } => Ok(Box::new(SignFlip::new(scale)?)),
            Self::OmniscientNegative { scale } => Ok(Box::new(OmniscientNegative::new(scale)?)),
            Self::LittleIsEnough { z } => Ok(Box::new(LittleIsEnough::new(z)?)),
            Self::Mimic { victim } => Ok(Box::new(Mimic::new(victim))),
            Self::KrumAware { aggressiveness } => Ok(Box::new(KrumAware::new(aggressiveness)?)),
            Self::Straggler { scale } => Ok(Box::new(Straggler::new(scale)?)),
            Self::LastToRespond { scale } => Ok(Box::new(LastToRespond::new(scale)?)),
            Self::NonFinite => Ok(Box::new(NonFinite::new())),
            Self::InlierDrift { sigma, target } => Ok(Box::new(InlierDrift::new(sigma, target)?)),
            Self::AlieVariance { scale } => Ok(Box::new(AlieVariance::new(scale)?)),
            Self::AdaptiveProbe {
                start,
                grow,
                backoff,
            } => Ok(Box::new(AdaptiveProbe::new(start, grow, backoff)?)),
        }
    }

    /// Whether the built attack carries cross-round state (its
    /// [`Attack::observe`] hook is live). Engines use this to decide whether
    /// to assemble per-round feedback, and the server uses it to decide
    /// whether to relay `Frame::RoundFeedback` to the adversary connection.
    pub fn stateful(&self) -> bool {
        matches!(
            self,
            Self::InlierDrift { .. } | Self::AlieVariance { .. } | Self::AdaptiveProbe { .. }
        )
    }

    /// Cross-validates the spec against the cluster shape (`honest = n − f`
    /// correct workers, `byzantine = f` attackers). The Figure-2 collusion
    /// needs `f ≥ 2` (`f − 1` decoys plus one colluder): with a single
    /// Byzantine worker it degenerates to proposing the honest mean and
    /// stops being the paper's attack, so scenario validation rejects it
    /// rather than running a misleading experiment. The σ-band attacks
    /// (`inlier-drift`, `alie-variance`) scale their shift to the empirical
    /// honest standard deviation, which is undefined for fewer than two
    /// honest samples — they need `n − f ≥ 2`. (`f = 0` is allowed — every
    /// attack is a no-op then.)
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] when the spec cannot express its
    /// attack with this cluster shape.
    pub fn validate_for_cluster(&self, honest: usize, byzantine: usize) -> Result<(), AttackError> {
        match self {
            Self::Collusion { .. } if byzantine == 1 => Err(AttackError::config(
                "collusion",
                "the Figure-2 collusion needs f >= 2 (f - 1 decoys plus one colluder); \
                 with f = 1 it degenerates to proposing the honest mean — use `none`, \
                 `mimic` or `sign-flip` instead",
            )),
            Self::InlierDrift { .. } | Self::AlieVariance { .. } if byzantine > 0 && honest < 2 => {
                Err(AttackError::config(
                    self.name(),
                    format!(
                        "σ-band attacks need n - f >= 2 honest workers (the variance of \
                         the honest sample is undefined otherwise); this cluster has \
                         n - f = {honest}"
                    ),
                ))
            }
            _ => Ok(()),
        }
    }

    /// The canonical attack name (the `Display` form without parameters).
    pub fn name(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::ConstantTarget { .. } => "constant-target",
            Self::Collusion { .. } => "collusion",
            Self::GaussianNoise { .. } => "gaussian-noise",
            Self::SignFlip { .. } => "sign-flip",
            Self::OmniscientNegative { .. } => "omniscient-negative",
            Self::LittleIsEnough { .. } => "little-is-enough",
            Self::Mimic { .. } => "mimic",
            Self::KrumAware { .. } => "krum-aware",
            Self::Straggler { .. } => "straggler",
            Self::LastToRespond { .. } => "last-to-respond",
            Self::NonFinite => "non-finite",
            Self::InlierDrift { .. } => "inlier-drift",
            Self::AlieVariance { .. } => "alie-variance",
            Self::AdaptiveProbe { .. } => "adaptive-probe",
        }
    }

    /// One spec per canonical attack name, with default parameters — the
    /// iteration order matches [`ATTACK_NAMES`].
    pub fn all() -> Vec<AttackSpec> {
        ATTACK_NAMES
            .iter()
            .map(|name| name.parse().expect("canonical names parse"))
            .collect()
    }
}

impl fmt::Display for AttackSpec {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::None => out.write_str("none"),
            Self::ConstantTarget { fill } => write!(out, "constant-target:fill={fill}"),
            Self::Collusion { magnitude } => write!(out, "collusion:magnitude={magnitude}"),
            Self::GaussianNoise { std } => write!(out, "gaussian-noise:std={std}"),
            Self::SignFlip { scale } => write!(out, "sign-flip:scale={scale}"),
            Self::OmniscientNegative { scale } => write!(out, "omniscient-negative:scale={scale}"),
            Self::LittleIsEnough { z } => write!(out, "little-is-enough:z={z}"),
            Self::Mimic { victim } => write!(out, "mimic:victim={victim}"),
            Self::KrumAware { aggressiveness } => {
                write!(out, "krum-aware:aggressiveness={aggressiveness}")
            }
            Self::Straggler { scale } => write!(out, "straggler:scale={scale}"),
            Self::LastToRespond { scale } => write!(out, "last-to-respond:scale={scale}"),
            Self::NonFinite => out.write_str("non-finite"),
            Self::InlierDrift { sigma, target } => {
                write!(out, "inlier-drift:sigma={sigma},target={target}")
            }
            Self::AlieVariance { scale } => write!(out, "alie-variance:scale={scale}"),
            Self::AdaptiveProbe {
                start,
                grow,
                backoff,
            } => write!(
                out,
                "adaptive-probe:start={start},grow={grow},backoff={backoff}"
            ),
        }
    }
}

impl FromStr for AttackSpec {
    type Err = AttackError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let mut parts = spec.splitn(2, ':');
        let name = parts.next().unwrap_or_default().trim();
        let raw_params = parts.next().unwrap_or("");
        // `inlier-drift` mixes a numeric and a symbolic parameter
        // (`target=neg`), which the f64-valued parser cannot express.
        if name == "inlier-drift" {
            return parse_inlier_drift(raw_params);
        }
        let params = parse_params(raw_params, name)?;
        let get =
            |key: &str| -> Option<f64> { params.iter().find(|(k, _)| k == key).map(|(_, v)| *v) };
        let reject_unknown = |allowed: &[&str]| -> Result<(), AttackError> {
            if let Some((key, _)) = params.iter().find(|(k, _)| !allowed.contains(&k.as_str())) {
                return Err(AttackError::config(
                    "spec",
                    format!("unknown parameter `{key}` for attack `{name}`"),
                ));
            }
            Ok(())
        };
        match name {
            "none" => {
                reject_unknown(&[])?;
                Ok(Self::None)
            }
            "constant-target" => {
                reject_unknown(&["fill"])?;
                Ok(Self::ConstantTarget {
                    fill: get("fill").unwrap_or(10.0),
                })
            }
            "collusion" => {
                reject_unknown(&["magnitude"])?;
                Ok(Self::Collusion {
                    magnitude: get("magnitude").unwrap_or(100.0),
                })
            }
            "gaussian-noise" => {
                reject_unknown(&["std"])?;
                Ok(Self::GaussianNoise {
                    std: get("std").unwrap_or(100.0),
                })
            }
            "sign-flip" => {
                reject_unknown(&["scale"])?;
                Ok(Self::SignFlip {
                    scale: get("scale").unwrap_or(2.0),
                })
            }
            "omniscient-negative" => {
                reject_unknown(&["scale"])?;
                Ok(Self::OmniscientNegative {
                    scale: get("scale").unwrap_or(2.0),
                })
            }
            "little-is-enough" => {
                reject_unknown(&["z"])?;
                Ok(Self::LittleIsEnough {
                    z: get("z").unwrap_or(1.5),
                })
            }
            "mimic" => {
                reject_unknown(&["victim"])?;
                let victim = match get("victim") {
                    Option::None => 0,
                    Some(v) if v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64 => v as usize,
                    Some(_) => {
                        return Err(AttackError::config(
                            "mimic",
                            "parameter `victim` must be a non-negative integer",
                        ))
                    }
                };
                Ok(Self::Mimic { victim })
            }
            "krum-aware" => {
                reject_unknown(&["aggressiveness"])?;
                Ok(Self::KrumAware {
                    aggressiveness: get("aggressiveness").unwrap_or(0.5),
                })
            }
            "straggler" => {
                reject_unknown(&["scale"])?;
                Ok(Self::Straggler {
                    scale: get("scale").unwrap_or(2.0),
                })
            }
            "last-to-respond" => {
                reject_unknown(&["scale"])?;
                Ok(Self::LastToRespond {
                    scale: get("scale").unwrap_or(2.0),
                })
            }
            "non-finite" => {
                reject_unknown(&[])?;
                Ok(Self::NonFinite)
            }
            "alie-variance" => {
                reject_unknown(&["scale"])?;
                Ok(Self::AlieVariance {
                    scale: get("scale").unwrap_or(1.0),
                })
            }
            "adaptive-probe" => {
                reject_unknown(&["start", "grow", "backoff"])?;
                Ok(Self::AdaptiveProbe {
                    start: get("start").unwrap_or(1.0),
                    grow: get("grow").unwrap_or(1.25),
                    backoff: get("backoff").unwrap_or(0.5),
                })
            }
            other => Err(AttackError::config(
                "spec",
                format!(
                    "unknown attack `{other}`; known attacks: {}",
                    ATTACK_NAMES.join(", ")
                ),
            )),
        }
    }
}

impl serde::Serialize for AttackSpec {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl serde::Deserialize for AttackSpec {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Str(s) => s
                .parse()
                .map_err(|e: AttackError| serde::DeError::custom(e.to_string())),
            other => Err(serde::DeError::invalid_type(
                "attack spec string",
                other.kind(),
            )),
        }
    }
}

/// Builds a Byzantine strategy from a specification string — a thin wrapper
/// over `spec.parse::<`[`AttackSpec`]`>()` followed by [`AttackSpec::build`].
///
/// # Errors
///
/// Returns [`AttackError::BadConfig`] for unknown names, malformed parameter
/// lists or out-of-range parameter values.
pub fn build_attack(spec: &str, dim: usize) -> Result<Box<dyn Attack>, AttackError> {
    spec.parse::<AttackSpec>()?.build(dim)
}

/// Parses the `inlier-drift` parameter list, whose `target` value is
/// symbolic (`neg`/`pos`) rather than numeric.
fn parse_inlier_drift(raw: &str) -> Result<AttackSpec, AttackError> {
    let mut sigma = 1.5;
    let mut target = DriftTarget::Neg;
    for piece in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let mut kv = piece.splitn(2, '=');
        let key = kv.next().unwrap_or_default().trim();
        let value = kv
            .next()
            .ok_or_else(|| {
                AttackError::config(
                    "spec",
                    format!(
                        "parameter `{piece}` for attack `inlier-drift` is not of the form key=value"
                    ),
                )
            })?
            .trim();
        match key {
            "sigma" => {
                sigma = value.parse().map_err(|_| {
                    AttackError::config(
                        "spec",
                        "parameter `sigma` of attack `inlier-drift` must be a number",
                    )
                })?;
            }
            "target" => target = value.parse()?,
            other => {
                return Err(AttackError::config(
                    "spec",
                    format!("unknown parameter `{other}` for attack `inlier-drift`"),
                ))
            }
        }
    }
    Ok(AttackSpec::InlierDrift { sigma, target })
}

/// Parses `key=value,key=value` parameter lists with `f64` values.
fn parse_params(raw: &str, attack: &str) -> Result<Vec<(String, f64)>, AttackError> {
    let mut out = Vec::new();
    for piece in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let mut kv = piece.splitn(2, '=');
        let key = kv.next().unwrap_or_default().trim();
        let value = kv.next().ok_or_else(|| {
            AttackError::config(
                "spec",
                format!("parameter `{piece}` for attack `{attack}` is not of the form key=value"),
            )
        })?;
        let value: f64 = value.trim().parse().map_err(|_| {
            AttackError::config(
                "spec",
                format!("parameter `{key}` of attack `{attack}` must be a number"),
            )
        })?;
        out.push((key.to_string(), value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackContext;

    fn ctx<'a>(honest: &'a [Vector], params: &'a Vector, f: usize) -> AttackContext<'a> {
        AttackContext {
            honest_proposals: honest,
            current_params: params,
            true_gradient: None,
            byzantine_count: f,
            total_workers: honest.len() + f,
            round: 0,
            aggregator_name: "average",
        }
    }

    #[test]
    fn every_canonical_attack_builds_and_forges() {
        use rand::SeedableRng;
        let honest = vec![Vector::filled(4, 1.0); 5];
        let params = Vector::zeros(4);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        for spec in AttackSpec::all() {
            let attack = spec
                .build(4)
                .unwrap_or_else(|e| panic!("attack {spec} failed to build: {e}"));
            let forged = attack
                .forge(&ctx(&honest, &params, 2), &mut rng)
                .unwrap_or_else(|e| panic!("attack {spec} failed to forge: {e}"));
            assert_eq!(forged.len(), 2, "attack {spec}");
        }
        assert_eq!(AttackSpec::all().len(), ATTACK_NAMES.len());
    }

    #[test]
    fn display_round_trips_for_every_variant() {
        let specs = [
            AttackSpec::None,
            AttackSpec::ConstantTarget { fill: -3.5 },
            AttackSpec::Collusion { magnitude: 1000.0 },
            AttackSpec::GaussianNoise { std: 12.25 },
            AttackSpec::SignFlip { scale: 5.0 },
            AttackSpec::OmniscientNegative { scale: 4.0 },
            AttackSpec::LittleIsEnough { z: 1.5 },
            AttackSpec::Mimic { victim: 3 },
            AttackSpec::KrumAware {
                aggressiveness: 0.5,
            },
            AttackSpec::Straggler { scale: 2.5 },
            AttackSpec::LastToRespond { scale: 4.0 },
            AttackSpec::NonFinite,
            AttackSpec::InlierDrift {
                sigma: 1.5,
                target: crate::adaptive::DriftTarget::Neg,
            },
            AttackSpec::InlierDrift {
                sigma: 0.75,
                target: crate::adaptive::DriftTarget::Pos,
            },
            AttackSpec::AlieVariance { scale: 2.0 },
            AttackSpec::AdaptiveProbe {
                start: 0.5,
                grow: 1.5,
                backoff: 0.25,
            },
        ];
        for spec in specs {
            let parsed: AttackSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec, "Display → FromStr must round-trip");
            let json = serde_json::to_string(&spec).unwrap();
            let back: AttackSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "serde must round-trip");
        }
    }

    #[test]
    fn omitted_parameters_take_defaults() {
        assert_eq!(
            "sign-flip".parse::<AttackSpec>().unwrap(),
            AttackSpec::SignFlip { scale: 2.0 }
        );
        assert_eq!(
            "mimic".parse::<AttackSpec>().unwrap(),
            AttackSpec::Mimic { victim: 0 }
        );
        assert_eq!(
            " gaussian-noise : std = 50 ".parse::<AttackSpec>().unwrap(),
            AttackSpec::GaussianNoise { std: 50.0 }
        );
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        assert!("zeno".parse::<AttackSpec>().is_err());
        assert!("sign-flip:z=1".parse::<AttackSpec>().is_err());
        assert!("sign-flip:scale".parse::<AttackSpec>().is_err());
        assert!("sign-flip:scale=abc".parse::<AttackSpec>().is_err());
        assert!("mimic:victim=1.5".parse::<AttackSpec>().is_err());
        assert!("mimic:victim=-1".parse::<AttackSpec>().is_err());
        // Range errors surface at build time, not parse time.
        let negative = "sign-flip:scale=-1".parse::<AttackSpec>().unwrap();
        assert!(negative.build(4).is_err());
        assert!(AttackSpec::None.build(0).is_err());
        assert!(AttackSpec::ConstantTarget { fill: f64::NAN }
            .build(4)
            .is_err());
    }

    #[test]
    fn build_attack_wrapper_matches_typed_path() {
        let typed = AttackSpec::SignFlip { scale: 5.0 }.build(3).unwrap();
        let stringly = build_attack("sign-flip:scale=5", 3).unwrap();
        assert_eq!(typed.name(), stringly.name());
    }

    #[test]
    fn timing_aware_specs_carry_their_timing() {
        use crate::attack::AttackTiming;
        let straggler = "straggler".parse::<AttackSpec>().unwrap();
        assert_eq!(straggler, AttackSpec::Straggler { scale: 2.0 });
        assert_eq!(straggler.build(4).unwrap().timing(), AttackTiming::Straggle);
        let ltr = "last-to-respond:scale=3".parse::<AttackSpec>().unwrap();
        assert_eq!(ltr.build(4).unwrap().timing(), AttackTiming::LastToRespond);
        // Value-only attacks keep the default racing timing.
        let flip = "sign-flip".parse::<AttackSpec>().unwrap();
        assert_eq!(flip.build(4).unwrap().timing(), AttackTiming::Honest);
        // Out-of-range parameters still surface at build time.
        assert!("straggler:scale=-1"
            .parse::<AttackSpec>()
            .unwrap()
            .build(4)
            .is_err());
        assert!("non-finite:x=1".parse::<AttackSpec>().is_err());
    }

    /// Satellite: the Figure-2 collusion degenerates with f = 1 (zero
    /// decoys); cross-validation must reject it with a clear error instead
    /// of running a misleading scenario.
    #[test]
    fn collusion_with_single_attacker_is_rejected_by_cross_validation() {
        let collusion = AttackSpec::Collusion { magnitude: 100.0 };
        let err = collusion.validate_for_cluster(8, 1).unwrap_err();
        assert!(err.to_string().contains("f >= 2"), "got: {err}");
        // f = 0 (no-op) and f >= 2 (the real construction) stay valid.
        assert!(collusion.validate_for_cluster(8, 0).is_ok());
        assert!(collusion.validate_for_cluster(8, 2).is_ok());
        // Other non-σ-band attacks have no cluster constraint.
        for spec in AttackSpec::all() {
            if spec.name() != "collusion"
                && !matches!(
                    spec,
                    AttackSpec::InlierDrift { .. } | AttackSpec::AlieVariance { .. }
                )
            {
                assert!(spec.validate_for_cluster(1, 1).is_ok(), "{spec}");
            }
        }
    }

    /// Satellite: σ-band attacks scale to the empirical honest std, which is
    /// undefined for fewer than two honest workers — cross-validation must
    /// reject such clusters with an error naming the bound.
    #[test]
    fn sigma_band_attacks_need_two_honest_workers() {
        let drift = "inlier-drift".parse::<AttackSpec>().unwrap();
        let alie = "alie-variance".parse::<AttackSpec>().unwrap();
        for spec in [drift, alie] {
            let err = spec.validate_for_cluster(1, 2).unwrap_err();
            assert!(err.to_string().contains("n - f >= 2"), "got: {err}");
            assert!(spec.validate_for_cluster(0, 3).is_err());
            // Two honest workers (or a no-op f = 0 cluster) are fine.
            assert!(spec.validate_for_cluster(2, 1).is_ok());
            assert!(spec.validate_for_cluster(1, 0).is_ok());
        }
        // adaptive-probe needs no variance — a single honest worker is fine.
        let probe = "adaptive-probe".parse::<AttackSpec>().unwrap();
        assert!(probe.validate_for_cluster(1, 2).is_ok());
    }

    #[test]
    fn stateful_grammar_round_trips_and_flags() {
        let drift: AttackSpec = "inlier-drift:sigma=1.5,target=neg".parse().unwrap();
        assert_eq!(
            drift,
            AttackSpec::InlierDrift {
                sigma: 1.5,
                target: crate::adaptive::DriftTarget::Neg,
            }
        );
        assert!(drift.stateful());
        assert_eq!(drift.to_string(), "inlier-drift:sigma=1.5,target=neg");
        // Defaults and the pos target.
        assert_eq!(
            "inlier-drift".parse::<AttackSpec>().unwrap(),
            AttackSpec::InlierDrift {
                sigma: 1.5,
                target: crate::adaptive::DriftTarget::Neg,
            }
        );
        assert_eq!(
            "inlier-drift:target=pos,sigma=2"
                .parse::<AttackSpec>()
                .unwrap(),
            AttackSpec::InlierDrift {
                sigma: 2.0,
                target: crate::adaptive::DriftTarget::Pos,
            }
        );
        assert!("inlier-drift:target=sideways"
            .parse::<AttackSpec>()
            .is_err());
        assert!("inlier-drift:sigma=abc".parse::<AttackSpec>().is_err());
        assert!("inlier-drift:z=1".parse::<AttackSpec>().is_err());
        assert!("inlier-drift:sigma".parse::<AttackSpec>().is_err());

        assert_eq!(
            "alie-variance".parse::<AttackSpec>().unwrap(),
            AttackSpec::AlieVariance { scale: 1.0 }
        );
        assert_eq!(
            "adaptive-probe:grow=2".parse::<AttackSpec>().unwrap(),
            AttackSpec::AdaptiveProbe {
                start: 1.0,
                grow: 2.0,
                backoff: 0.5,
            }
        );
        // Built attacks report their statefulness through the trait too.
        for name in ["inlier-drift", "alie-variance", "adaptive-probe"] {
            let spec: AttackSpec = name.parse().unwrap();
            assert!(spec.stateful(), "{name}");
            assert!(spec.build(4).unwrap().stateful(), "{name}");
        }
        // Stateless specs stay stateless.
        assert!(!"sign-flip".parse::<AttackSpec>().unwrap().stateful());
        assert!(!"none"
            .parse::<AttackSpec>()
            .unwrap()
            .build(4)
            .unwrap()
            .stateful());
        // Out-of-range parameters still surface at build time.
        assert!("inlier-drift:sigma=-1"
            .parse::<AttackSpec>()
            .unwrap()
            .build(4)
            .is_err());
        assert!("alie-variance:scale=0"
            .parse::<AttackSpec>()
            .unwrap()
            .build(4)
            .is_err());
        assert!("adaptive-probe:backoff=2"
            .parse::<AttackSpec>()
            .unwrap()
            .build(4)
            .is_err());
    }
}
