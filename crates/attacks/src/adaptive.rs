//! Stateful multi-round adversaries.
//!
//! Every strategy in [`strategies`](crate::strategies) is per-round: it
//! forges from the current [`AttackContext`] and forgets. The adversaries
//! here instead evolve state across rounds through
//! [`Attack::observe`], which the engine calls with a [`RoundFeedback`]
//! after every closed round — the observe/forge loop:
//!
//! ```text
//!        ┌──────────────────────────────────────────────┐
//!        │                                              │
//!        ▼                                              │
//!   forge(&self, ctx)  ──►  server aggregates  ──►  observe(&mut self,
//!   (pure, no RNG)          and applies F           RoundFeedback)
//! ```
//!
//! `forge` stays `&self` and draws **no randomness**: the entire state
//! evolution is a deterministic function of the per-seed trajectory, so
//! repeat runs are bit-identical and the server-side worker can replay
//! forge calls without an RNG cursor to fast-forward. The price of
//! statefulness is that missed feedback cannot be reconstructed — workers
//! refuse to rejoin a stateful adversary instead of silently diverging.

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::attack::{Attack, AttackContext, AttackError, RoundFeedback};

/// Which way [`InlierDrift`] steers the model, relative to the descent
/// direction the honest workers are pushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DriftTarget {
    /// Steer against descent: inflate the loss (the adversarial default).
    #[default]
    Neg,
    /// Steer along descent: accelerate convergence (a control direction for
    /// experiments — drift without damage).
    Pos,
}

impl DriftTarget {
    /// The sign this target contributes to the forged shift.
    fn sign(self) -> f64 {
        match self {
            Self::Neg => -1.0,
            Self::Pos => 1.0,
        }
    }

    /// Canonical spelling used in the spec grammar.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Neg => "neg",
            Self::Pos => "pos",
        }
    }
}

impl std::fmt::Display for DriftTarget {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.write_str(self.as_str())
    }
}

impl std::str::FromStr for DriftTarget {
    type Err = AttackError;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.trim() {
            "neg" => Ok(Self::Neg),
            "pos" => Ok(Self::Pos),
            other => Err(AttackError::config(
                "inlier-drift",
                format!("unknown target `{other}` (expected `neg` or `pos`)"),
            )),
        }
    }
}

/// Per-coordinate sign of the steering direction: `+1`, `-1`, or `0` for a
/// flat coordinate (unlike `f64::signum`, which maps `+0.0` to `+1.0`).
fn steer_sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// The QRES ADR-004 falsifier: colluding attackers that stay within a
/// σ-band of the observed honest distribution while steering every
/// coordinate toward a target direction. Each forged proposal is
///
/// ```text
/// mean(honest) + target · band · sigma · std_c · sign(g_c)   per coordinate c
/// ```
///
/// where `g` is the adversary's gradient estimate and `band ∈ (0, 1]` is the
/// attack's state: it shrinks multiplicatively whenever selection feedback
/// shows an honest worker was picked (the attacker was filtered — become
/// more of an inlier) and recovers toward `1` while the attacker keeps being
/// selected. Small per-round displacement, unbounded cumulative drift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InlierDrift {
    sigma: f64,
    target: DriftTarget,
    /// Stateful fraction of the σ-band currently in use.
    band: f64,
}

impl InlierDrift {
    /// Multiplicative back-off applied to the band when the attacker's slot
    /// is filtered out by a selection rule.
    const BACKOFF: f64 = 0.8;
    /// Multiplicative recovery applied while the attacker keeps winning.
    const RECOVER: f64 = 1.05;
    /// The band never collapses entirely — the attack keeps probing.
    const MIN_BAND: f64 = 0.05;

    /// Creates the drift attack with band width `sigma` (in per-coordinate
    /// honest standard deviations) and a steering direction.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `sigma` is positive and
    /// finite.
    pub fn new(sigma: f64, target: DriftTarget) -> Result<Self, AttackError> {
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(AttackError::config(
                "inlier-drift",
                "sigma must be positive and finite",
            ));
        }
        Ok(Self {
            sigma,
            target,
            band: 1.0,
        })
    }

    /// Band width in units of the per-coordinate honest std.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Steering direction.
    pub fn target(&self) -> DriftTarget {
        self.target
    }

    /// Current stateful fraction of the σ-band (starts at `1`).
    pub fn band(&self) -> f64 {
        self.band
    }
}

impl Attack for InlierDrift {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let honest = ctx.honest_proposals;
        let mean = ctx.honest_mean().ok_or_else(|| {
            AttackError::context("inlier-drift", "no honest proposals to observe")
        })?;
        let gradient = ctx.gradient_estimate().ok_or_else(|| {
            AttackError::context("inlier-drift", "no gradient information available")
        })?;
        let dim = ctx.dim();
        // Per-coordinate standard deviation of the honest proposals (zero
        // when only one honest worker reported — the forged vector then
        // degenerates to the honest mean).
        let mut std = Vector::zeros(dim);
        if honest.len() > 1 {
            for v in honest {
                for c in 0..dim {
                    let d = v[c] - mean[c];
                    std[c] += d * d;
                }
            }
            std.map_inplace(|s| (s / (honest.len() - 1) as f64).sqrt());
        }
        let shift = self.target.sign() * self.band * self.sigma;
        let mut forged = mean;
        for c in 0..dim {
            forged[c] += shift * std[c] * steer_sign(gradient[c]);
        }
        Ok(vec![forged; ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "inlier-drift".into()
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        match feedback.selected_byzantine {
            // Filtered out: tighten the band, hide deeper in the cloud.
            Some(false) => self.band = (self.band * Self::BACKOFF).max(Self::MIN_BAND),
            // Still being selected: recover toward the full band.
            Some(true) => self.band = (self.band * Self::RECOVER).min(1.0),
            // Mixing rule — no selection signal to react to.
            None => {}
        }
    }

    fn stateful(&self) -> bool {
        true
    }
}

/// "A little is enough" (Baruch et al.) with the z-score derived from the
/// cluster shape instead of hand-tuned: with `s = ⌊n/2⌋ + 1 − f` honest
/// supporters needed for a majority, the attackers shift the honest mean by
/// `z_max = Φ⁻¹((n − f − s)/(n − f))` per-coordinate standard deviations —
/// the largest shift still covered by enough honest probability mass. A
/// stateful `boost` multiplier then adapts the shift to the observed
/// selection feedback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlieVariance {
    scale: f64,
    /// Stateful multiplier on top of the derived z-score.
    boost: f64,
}

impl AlieVariance {
    const BACKOFF: f64 = 0.9;
    const RECOVER: f64 = 1.05;
    const MIN_BOOST: f64 = 0.1;
    const MAX_BOOST: f64 = 4.0;

    /// Creates the attack with an extra multiplier `scale` on the derived
    /// z-score (`1` is the canonical ALIE construction).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `scale` is positive and
    /// finite.
    pub fn new(scale: f64) -> Result<Self, AttackError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(AttackError::config(
                "alie-variance",
                "scale must be positive and finite",
            ));
        }
        Ok(Self { scale, boost: 1.0 })
    }

    /// Multiplier applied on top of the derived z-score.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Current stateful boost (starts at `1`).
    pub fn boost(&self) -> f64 {
        self.boost
    }

    /// The ALIE z-score for a cluster of `n` workers with `f` Byzantine.
    pub fn z_max(n: usize, f: usize) -> f64 {
        if n <= f {
            return 0.0;
        }
        let supporters = (n / 2 + 1).saturating_sub(f);
        let phi = (n - f - supporters.min(n - f)) as f64 / (n - f) as f64;
        normal_quantile(phi.clamp(1e-6, 1.0 - 1e-6))
    }
}

impl Attack for AlieVariance {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let honest = ctx.honest_proposals;
        let mean = ctx.honest_mean().ok_or_else(|| {
            AttackError::context("alie-variance", "no honest proposals to observe")
        })?;
        let dim = ctx.dim();
        let mut std = Vector::zeros(dim);
        if honest.len() > 1 {
            for v in honest {
                for c in 0..dim {
                    let d = v[c] - mean[c];
                    std[c] += d * d;
                }
            }
            std.map_inplace(|s| (s / (honest.len() - 1) as f64).sqrt());
        }
        let z = Self::z_max(ctx.total_workers, ctx.byzantine_count);
        let mut forged = mean;
        forged.axpy(-z * self.scale * self.boost, &std);
        Ok(vec![forged; ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "alie-variance".into()
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        match feedback.selected_byzantine {
            Some(false) => self.boost = (self.boost * Self::BACKOFF).max(Self::MIN_BOOST),
            Some(true) => self.boost = (self.boost * Self::RECOVER).min(Self::MAX_BOOST),
            None => {}
        }
    }

    fn stateful(&self) -> bool {
        true
    }
}

/// A probing adversary that reads the selection feedback directly: it
/// proposes `mean(honest) − magnitude · g` (a step against the descent
/// direction) and grows `magnitude` geometrically while its slot keeps
/// being selected, backing off as soon as it stops — a binary search for
/// the defense's filtering threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveProbe {
    start: f64,
    grow: f64,
    backoff: f64,
    /// Stateful magnitude of the probe.
    magnitude: f64,
}

impl AdaptiveProbe {
    const MIN_MAGNITUDE: f64 = 1e-6;
    const MAX_MAGNITUDE: f64 = 1e6;

    /// Creates the probe with initial magnitude `start`, growth factor
    /// `grow` (applied while selected) and back-off factor `backoff`
    /// (applied when filtered).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `start > 0`, `grow > 1`
    /// and `0 < backoff < 1`, all finite.
    pub fn new(start: f64, grow: f64, backoff: f64) -> Result<Self, AttackError> {
        if !(start > 0.0 && start.is_finite()) {
            return Err(AttackError::config(
                "adaptive-probe",
                "start must be positive and finite",
            ));
        }
        if !(grow > 1.0 && grow.is_finite()) {
            return Err(AttackError::config(
                "adaptive-probe",
                "grow must be > 1 and finite",
            ));
        }
        if !(backoff > 0.0 && backoff < 1.0) {
            return Err(AttackError::config(
                "adaptive-probe",
                "backoff must be strictly between 0 and 1",
            ));
        }
        Ok(Self {
            start,
            grow,
            backoff,
            magnitude: start,
        })
    }

    /// Initial probe magnitude.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Current stateful magnitude.
    pub fn magnitude(&self) -> f64 {
        self.magnitude
    }
}

impl Attack for AdaptiveProbe {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let mean = ctx.honest_mean().ok_or_else(|| {
            AttackError::context("adaptive-probe", "no honest proposals to observe")
        })?;
        let gradient = ctx.gradient_estimate().ok_or_else(|| {
            AttackError::context("adaptive-probe", "no gradient information available")
        })?;
        let mut forged = mean;
        forged.axpy(-self.magnitude, &gradient);
        Ok(vec![forged; ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "adaptive-probe".into()
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        match feedback.selected_byzantine {
            Some(true) => self.magnitude = (self.magnitude * self.grow).min(Self::MAX_MAGNITUDE),
            Some(false) => {
                self.magnitude = (self.magnitude * self.backoff).max(Self::MIN_MAGNITUDE)
            }
            None => {}
        }
    }

    fn stateful(&self) -> bool {
        true
    }
}

/// Standard normal quantile Φ⁻¹ via the Acklam rational approximation
/// (relative error below 1.15e-9 over (0, 1)). Deterministic, allocation
/// free, and accurate far beyond what the attacks need.
fn normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn honest_cloud(count: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut v = Vector::filled(dim, 1.0);
                v.axpy(1.0, &Vector::gaussian(dim, 0.0, 0.1, &mut rng));
                v
            })
            .collect()
    }

    fn ctx<'a>(
        honest: &'a [Vector],
        params: &'a Vector,
        grad: Option<&'a Vector>,
        f: usize,
    ) -> AttackContext<'a> {
        AttackContext {
            honest_proposals: honest,
            current_params: params,
            true_gradient: grad,
            byzantine_count: f,
            total_workers: honest.len() + f,
            round: 0,
            aggregator_name: "krum",
        }
    }

    fn feedback(selected_byzantine: Option<bool>) -> RoundFeedback {
        RoundFeedback {
            round: 0,
            aggregate: Vector::zeros(2),
            learning_rate: 0.1,
            selected_worker: selected_byzantine.map(|b| if b { 7 } else { 0 }),
            selected_byzantine,
            quorum_workers: vec![0, 1, 2],
        }
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.8413447460685429) - 1.0).abs() < 1e-6);
        // Extreme tails stay finite.
        assert!(normal_quantile(1e-6).is_finite());
        assert!(normal_quantile(1.0 - 1e-6).is_finite());
    }

    #[test]
    fn inlier_drift_stays_in_the_sigma_band() {
        let honest = honest_cloud(8, 5, 1);
        let params = Vector::zeros(5);
        let grad = Vector::filled(5, 1.0);
        let attack = InlierDrift::new(1.5, DriftTarget::Neg).unwrap();
        assert_eq!(attack.sigma(), 1.5);
        assert_eq!(attack.target(), DriftTarget::Neg);
        assert_eq!(attack.band(), 1.0);
        assert!(attack.stateful());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = ctx(&honest, &params, Some(&grad), 2);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 2);
        let mean = Vector::mean_of(&honest).unwrap();
        // Every coordinate is displaced by at most sigma stds (~0.1 each).
        for c in 0..5 {
            let d = (forged[0][c] - mean[c]).abs();
            assert!(d > 0.0 && d < 1.5 * 0.5, "coordinate {c} displaced by {d}");
            // target=neg with a positive gradient pushes below the mean.
            assert!(forged[0][c] < mean[c]);
        }
        // target=pos pushes the other way.
        let pos = InlierDrift::new(1.5, DriftTarget::Pos).unwrap();
        let forged_pos = pos.forge(&c, &mut rng).unwrap();
        assert!(forged_pos[0][0] > mean[0]);
    }

    #[test]
    fn inlier_drift_band_reacts_to_selection_feedback() {
        let mut attack = InlierDrift::new(1.0, DriftTarget::Neg).unwrap();
        attack.observe(&feedback(Some(false)));
        let shrunk = attack.band();
        assert!(shrunk < 1.0);
        // Mixing-rule feedback leaves the band alone.
        attack.observe(&feedback(None));
        assert_eq!(attack.band(), shrunk);
        // Being selected again recovers toward the full band, capped at 1.
        for _ in 0..100 {
            attack.observe(&feedback(Some(true)));
        }
        assert_eq!(attack.band(), 1.0);
        // The band never collapses below the floor.
        for _ in 0..1000 {
            attack.observe(&feedback(Some(false)));
        }
        assert!(attack.band() >= 0.05);
    }

    #[test]
    fn inlier_drift_degenerates_gracefully() {
        assert!(InlierDrift::new(0.0, DriftTarget::Neg).is_err());
        assert!(InlierDrift::new(f64::NAN, DriftTarget::Neg).is_err());
        let attack = InlierDrift::new(1.0, DriftTarget::Neg).unwrap();
        let params = Vector::zeros(3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Zero honest variance: the forged vector is exactly the mean.
        let identical = vec![Vector::filled(3, 2.0); 5];
        let c = ctx(&identical, &params, None, 2);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged[0].as_slice(), &[2.0, 2.0, 2.0]);
        // No honest proposals: context error.
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(attack.forge(&c, &mut rng).is_err());
    }

    #[test]
    fn alie_z_score_matches_the_construction() {
        // n=40, f=4: s = 17, phi = (36-17)/36 ≈ 0.5278 → small positive z.
        let z = AlieVariance::z_max(40, 4);
        assert!(z > 0.0 && z < 0.2, "z = {z}");
        // Degenerate shapes stay finite.
        assert_eq!(AlieVariance::z_max(4, 4), 0.0);
        assert!(AlieVariance::z_max(3, 1).is_finite());
    }

    #[test]
    fn alie_variance_shifts_by_scaled_std() {
        let honest = honest_cloud(20, 4, 4);
        let params = Vector::zeros(4);
        let attack = AlieVariance::new(1.0).unwrap();
        assert_eq!(attack.scale(), 1.0);
        assert_eq!(attack.boost(), 1.0);
        assert!(attack.stateful());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let c = ctx(&honest, &params, None, 4);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 4);
        let mean = Vector::mean_of(&honest).unwrap();
        let dist = forged[0].distance(&mean);
        assert!(dist > 0.0 && dist < 0.5, "dist = {dist}");
        // Zero variance degenerates to the mean; no honest proposals errors.
        let identical = vec![Vector::filled(4, 1.0); 5];
        let c = ctx(&identical, &params, None, 2);
        assert_eq!(
            attack.forge(&c, &mut rng).unwrap()[0].as_slice(),
            &[1.0, 1.0, 1.0, 1.0]
        );
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(attack.forge(&c, &mut rng).is_err());
        assert!(AlieVariance::new(0.0).is_err());
    }

    #[test]
    fn alie_boost_is_bounded() {
        let mut attack = AlieVariance::new(1.0).unwrap();
        for _ in 0..1000 {
            attack.observe(&feedback(Some(true)));
        }
        assert!(attack.boost() <= 4.0);
        for _ in 0..1000 {
            attack.observe(&feedback(Some(false)));
        }
        assert!(attack.boost() >= 0.1);
    }

    #[test]
    fn adaptive_probe_searches_the_filtering_threshold() {
        assert!(AdaptiveProbe::new(0.0, 1.25, 0.5).is_err());
        assert!(AdaptiveProbe::new(1.0, 1.0, 0.5).is_err());
        assert!(AdaptiveProbe::new(1.0, 1.25, 1.0).is_err());
        let mut attack = AdaptiveProbe::new(1.0, 2.0, 0.5).unwrap();
        assert_eq!(attack.start(), 1.0);
        assert_eq!(attack.magnitude(), 1.0);
        assert!(attack.stateful());
        // Selected → double; filtered → halve; mixing → hold.
        attack.observe(&feedback(Some(true)));
        assert_eq!(attack.magnitude(), 2.0);
        attack.observe(&feedback(Some(false)));
        assert_eq!(attack.magnitude(), 1.0);
        attack.observe(&feedback(None));
        assert_eq!(attack.magnitude(), 1.0);

        let honest = honest_cloud(5, 3, 6);
        let params = Vector::zeros(3);
        let grad = Vector::from(vec![0.0, 1.0, 0.0]);
        let c = ctx(&honest, &params, Some(&grad), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let forged = attack.forge(&c, &mut rng).unwrap();
        let mean = Vector::mean_of(&honest).unwrap();
        assert!((forged[0][1] - (mean[1] - 1.0)).abs() < 1e-12);
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(attack.forge(&c, &mut rng).is_err());
    }

    #[test]
    fn forge_draws_no_randomness_and_state_evolution_is_deterministic() {
        // Identical feedback sequences drive identical state, and forge
        // leaves the RNG untouched — the invariants the worker-side replay
        // and the determinism suite rely on.
        use rand::RngCore;
        let honest = honest_cloud(6, 4, 8);
        let params = Vector::zeros(4);
        let c = ctx(&honest, &params, None, 2);
        let fbs = [Some(true), Some(false), None, Some(false), Some(true)];
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(InlierDrift::new(1.5, DriftTarget::Neg).unwrap()),
            Box::new(AlieVariance::new(1.0).unwrap()),
            Box::new(AdaptiveProbe::new(1.0, 1.25, 0.5).unwrap()),
        ];
        for mut attack in attacks {
            let mut twin: Box<dyn Attack> = match attack.name().as_str() {
                "inlier-drift" => Box::new(InlierDrift::new(1.5, DriftTarget::Neg).unwrap()),
                "alie-variance" => Box::new(AlieVariance::new(1.0).unwrap()),
                _ => Box::new(AdaptiveProbe::new(1.0, 1.25, 0.5).unwrap()),
            };
            for fb in fbs {
                attack.observe(&feedback(fb));
                twin.observe(&feedback(fb));
            }
            let mut rng_a = ChaCha8Rng::seed_from_u64(9);
            let mut rng_b = ChaCha8Rng::seed_from_u64(9);
            let a = attack.forge(&c, &mut rng_a).unwrap();
            let b = twin.forge(&c, &mut rng_b).unwrap();
            assert_eq!(a, b, "attack {}", attack.name());
            // forge consumed no randomness.
            assert_eq!(rng_a.next_u64(), ChaCha8Rng::seed_from_u64(9).next_u64());
        }
    }
}
