//! The [`Attack`] trait and the context handed to Byzantine workers.

use krum_tensor::Vector;
use thiserror::Error;

/// Errors raised by attack strategies.
#[derive(Debug, Clone, PartialEq, Error)]
pub enum AttackError {
    /// The attack was configured with invalid parameters.
    #[error("invalid attack configuration for `{attack}`: {message}")]
    BadConfig {
        /// Attack that rejected the configuration.
        attack: &'static str,
        /// Explanation of the rejection.
        message: String,
    },
    /// The context was unusable (e.g. no honest proposals to observe, or a
    /// dimension mismatch between context fields).
    #[error("unusable attack context for `{attack}`: {message}")]
    BadContext {
        /// Attack that rejected the context.
        attack: &'static str,
        /// Explanation of the rejection.
        message: String,
    },
}

impl AttackError {
    /// Convenience constructor for [`AttackError::BadConfig`].
    pub fn config(attack: &'static str, message: impl Into<String>) -> Self {
        Self::BadConfig {
            attack,
            message: message.into(),
        }
    }

    /// Convenience constructor for [`AttackError::BadContext`].
    pub fn context(attack: &'static str, message: impl Into<String>) -> Self {
        Self::BadContext {
            attack,
            message: message.into(),
        }
    }
}

/// Everything the (omniscient, colluding) Byzantine workers observe in one
/// round before choosing their proposals.
#[derive(Debug, Clone)]
pub struct AttackContext<'a> {
    /// The proposals of the correct workers this round, in worker order.
    pub honest_proposals: &'a [Vector],
    /// The parameter vector `x_t` the server broadcast this round.
    pub current_params: &'a Vector,
    /// The true gradient `∇Q(x_t)` when analytically available.
    pub true_gradient: Option<&'a Vector>,
    /// Number of Byzantine workers (how many vectors to forge).
    pub byzantine_count: usize,
    /// Total number of workers `n` (honest + Byzantine).
    pub total_workers: usize,
    /// Round index `t`.
    pub round: usize,
    /// Name of the aggregation rule in use (Byzantine workers know `F`).
    pub aggregator_name: &'a str,
}

impl<'a> AttackContext<'a> {
    /// Dimension of the parameter/gradient space.
    pub fn dim(&self) -> usize {
        self.current_params.dim()
    }

    /// Mean of the honest proposals, or `None` if there are none.
    pub fn honest_mean(&self) -> Option<Vector> {
        Vector::mean_of(self.honest_proposals).ok()
    }

    /// The best estimate of the gradient available to the adversary: the true
    /// gradient when known, otherwise the honest mean, otherwise `None`.
    pub fn gradient_estimate(&self) -> Option<Vector> {
        self.true_gradient.cloned().or_else(|| self.honest_mean())
    }
}

/// What the adversary learns about the round that just closed: the accepted
/// aggregate, the selection outcome, and the quorum composition.
///
/// Stateful attacks receive one [`RoundFeedback`] per closed round via
/// [`Attack::observe`]. In-process engines call `observe` directly after
/// each step; over the wire the server relays the same fields on the
/// existing adversary connection (`Frame::RoundFeedback`), so the state
/// evolution — and therefore the trajectory — is bit-identical between
/// loopback and in-process execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFeedback {
    /// The round that just closed.
    pub round: usize,
    /// The aggregate `F(V_1, …, V_n)` the server accepted this round.
    pub aggregate: Vector,
    /// Learning rate `γ_t` applied to the aggregate this round.
    pub learning_rate: f64,
    /// Worker whose proposal a selection rule picked (`None` for mixing
    /// rules such as average, trimmed mean, or the stateful defenses).
    pub selected_worker: Option<usize>,
    /// Whether the selected worker was Byzantine (`None` when no single
    /// worker was selected).
    pub selected_byzantine: Option<bool>,
    /// Workers whose proposals formed this round's quorum, in the order
    /// their vectors were aggregated.
    pub quorum_workers: Vec<usize>,
}

/// When the Byzantine proposals reach the server, relative to the honest
/// ones — the timing half of the adversary model. Barrier strategies
/// (sequential/threaded) wait for everyone, so timing only matters under
/// partial-quorum execution (`AsyncQuorum`), where the adversary controls
/// *when* it responds as well as *what* it sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackTiming {
    /// Byzantine proposals race like honest ones: their arrival latency is
    /// drawn from the same network model.
    #[default]
    Honest,
    /// Byzantine proposals always arrive after every honest proposal of
    /// their round: they miss the quorum whenever it can be filled without
    /// them and land as stale carry-overs in later rounds (or are dropped by
    /// the staleness bound).
    Straggle,
    /// Byzantine workers wait until they have observed the proposals that
    /// would close the quorum, then respond just before it closes — an
    /// omniscient attacker that always squeezes into the quorum's last
    /// slots. Under this timing the engine calls [`Attack::forge`] *after*
    /// the rest of the quorum is known, with `honest_proposals` set to the
    /// observed quorum members.
    LastToRespond,
}

/// A Byzantine strategy: given full knowledge of the round, produce the
/// vectors the `f` Byzantine workers propose.
///
/// Implementations must return exactly `ctx.byzantine_count` vectors of
/// dimension `ctx.dim()`.
pub trait Attack: Send + Sync {
    /// Forges the Byzantine proposals for this round.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`] when the context is unusable for this strategy.
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError>;

    /// Human-readable attack name (shown in experiment tables).
    fn name(&self) -> String;

    /// When the forged proposals reach the server under partial-quorum
    /// execution. Barrier engines ignore this. Defaults to
    /// [`AttackTiming::Honest`].
    fn timing(&self) -> AttackTiming {
        AttackTiming::Honest
    }

    /// Digests the outcome of the round that just closed. Stateless attacks
    /// (the default) ignore it; stateful adversaries evolve their internal
    /// state here — and **only** here, since [`Attack::forge`] takes
    /// `&self`. Engines call this exactly once per closed round, after the
    /// aggregate is applied, and only when [`Attack::stateful`] is `true`.
    fn observe(&mut self, _feedback: &RoundFeedback) {}

    /// Whether this attack carries cross-round state that must be fed via
    /// [`Attack::observe`]. Stateful attacks cannot be fast-forwarded by
    /// replaying forge calls (the dummy-replay trick workers use after a
    /// rejoin), so the server-side worker refuses to rejoin them.
    fn stateful(&self) -> bool {
        false
    }
}

impl<A: Attack + ?Sized> Attack for &A {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        (**self).forge(ctx, rng)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn timing(&self) -> AttackTiming {
        (**self).timing()
    }

    // `observe` cannot be forwarded through a shared reference; a `&A` view
    // keeps the no-op default. `stateful` still reports the truth so callers
    // holding a shared view never mistake a stateful attack for a pure one.
    fn stateful(&self) -> bool {
        (**self).stateful()
    }
}

impl<A: Attack + ?Sized> Attack for Box<A> {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        (**self).forge(ctx, rng)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn timing(&self) -> AttackTiming {
        (**self).timing()
    }

    fn observe(&mut self, feedback: &RoundFeedback) {
        (**self).observe(feedback);
    }

    fn stateful(&self) -> bool {
        (**self).stateful()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn context<'a>(
        honest: &'a [Vector],
        params: &'a Vector,
        grad: Option<&'a Vector>,
    ) -> AttackContext<'a> {
        AttackContext {
            honest_proposals: honest,
            current_params: params,
            true_gradient: grad,
            byzantine_count: 2,
            total_workers: honest.len() + 2,
            round: 0,
            aggregator_name: "krum",
        }
    }

    #[test]
    fn context_helpers() {
        let honest = vec![Vector::from(vec![1.0, 3.0]), Vector::from(vec![3.0, 5.0])];
        let params = Vector::zeros(2);
        let grad = Vector::from(vec![9.0, 9.0]);
        let ctx = context(&honest, &params, Some(&grad));
        assert_eq!(ctx.dim(), 2);
        assert_eq!(ctx.honest_mean().unwrap().as_slice(), &[2.0, 4.0]);
        assert_eq!(ctx.gradient_estimate().unwrap(), grad);

        let ctx = context(&honest, &params, None);
        assert_eq!(ctx.gradient_estimate().unwrap().as_slice(), &[2.0, 4.0]);

        let empty: Vec<Vector> = vec![];
        let ctx = context(&empty, &params, None);
        assert!(ctx.honest_mean().is_none());
        assert!(ctx.gradient_estimate().is_none());
    }

    #[test]
    fn error_constructors_and_display() {
        let e = AttackError::config("collusion", "magnitude must be positive");
        assert!(e.to_string().contains("collusion"));
        let e = AttackError::context("sign-flip", "no honest proposals");
        assert!(e.to_string().contains("sign-flip"));
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<AttackError>();
    }
}
