//! Concrete Byzantine strategies.

use krum_tensor::{random_unit_vector, Vector};
use serde::{Deserialize, Serialize};

use crate::attack::{Attack, AttackContext, AttackError, AttackTiming};

/// Byzantine slots behave like honest workers: each proposes the mean of the
/// honest proposals (an unbiased, benign vector). Useful as the `f = 0`-like
/// baseline while keeping the cluster size fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NoAttack;

impl NoAttack {
    /// Creates the benign strategy.
    pub fn new() -> Self {
        Self
    }
}

impl Attack for NoAttack {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let proposal = ctx
            .gradient_estimate()
            .ok_or_else(|| AttackError::context("none", "no gradient information available"))?;
        Ok(vec![proposal; ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "none".into()
    }
}

/// The Lemma 3.1 construction against linear rules: the Byzantine workers
/// solve for proposals that force the **average** of all `n` proposals to be
/// exactly `target`, regardless of what the honest workers sent.
///
/// Against plain averaging the server's aggregate therefore equals `target`
/// every round, so the parameter vector is driven wherever the adversary
/// wants — this is how E1 demonstrates that averaging tolerates no Byzantine
/// worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstantTarget {
    target: Vector,
}

impl ConstantTarget {
    /// Creates the attack with the aggregate the adversary wants to enforce.
    pub fn new(target: Vector) -> Self {
        Self { target }
    }

    /// The vector the adversary forces the average to equal.
    pub fn target(&self) -> &Vector {
        &self.target
    }
}

impl Attack for ConstantTarget {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        if self.target.dim() != ctx.dim() {
            return Err(AttackError::context(
                "constant-target",
                format!(
                    "target has dimension {} but the round uses {}",
                    self.target.dim(),
                    ctx.dim()
                ),
            ));
        }
        if ctx.byzantine_count == 0 {
            return Ok(Vec::new());
        }
        // Σ byz = n·target − Σ honest, split evenly across the f attackers.
        let mut correction = self.target.scaled(ctx.total_workers as f64);
        for v in ctx.honest_proposals {
            correction.axpy(-1.0, v);
        }
        let each = correction.scaled(1.0 / ctx.byzantine_count as f64);
        Ok(vec![each; ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "constant-target".into()
    }
}

/// The Figure 2 collusion against the closest-to-barycenter rule: `f − 1`
/// attackers propose a remote decoy (distance `magnitude` from the honest
/// mean, in a random direction), and the last attacker proposes the barycenter
/// of all other proposals — which the flawed rule is then guaranteed to pick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Collusion {
    magnitude: f64,
}

impl Collusion {
    /// Creates the collusion with the decoy distance (how far area `B` of
    /// Figure 2 sits from the honest area `C`).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `magnitude` is positive and
    /// finite.
    pub fn new(magnitude: f64) -> Result<Self, AttackError> {
        if !(magnitude > 0.0 && magnitude.is_finite()) {
            return Err(AttackError::config(
                "collusion",
                "magnitude must be positive and finite",
            ));
        }
        Ok(Self { magnitude })
    }

    /// Distance of the decoys from the honest mean.
    pub fn magnitude(&self) -> f64 {
        self.magnitude
    }
}

impl Attack for Collusion {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let honest_mean = ctx
            .honest_mean()
            .ok_or_else(|| AttackError::context("collusion", "no honest proposals to observe"))?;
        if ctx.byzantine_count == 0 {
            return Ok(Vec::new());
        }
        if ctx.byzantine_count == 1 {
            // With a single attacker no decoy is possible; fall back to
            // proposing the barycenter of the honest proposals.
            return Ok(vec![honest_mean]);
        }
        let direction = random_unit_vector(ctx.dim(), rng);
        let decoy = &honest_mean + &direction.scaled(self.magnitude);
        let mut proposals = vec![decoy.clone(); ctx.byzantine_count - 1];
        // The colluder sits at the barycenter of every *other* proposal
        // (honest ones plus the decoys), which minimises the sum of squared
        // distances to them.
        let mut others: Vec<Vector> = ctx.honest_proposals.to_vec();
        others.extend(proposals.iter().cloned());
        let colluder = Vector::mean_of(&others).expect("others is non-empty");
        proposals.push(colluder);
        Ok(proposals)
    }

    fn name(&self) -> String {
        "collusion".into()
    }
}

/// The full paper's "Gaussian" attack: each Byzantine worker proposes a random
/// vector drawn from `N(0, std² I_d)` — uninformative noise with a large
/// variance that stalls averaging-based training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianNoise {
    std: f64,
}

impl GaussianNoise {
    /// Creates the attack with the per-coordinate standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `std` is positive and finite.
    pub fn new(std: f64) -> Result<Self, AttackError> {
        if !(std > 0.0 && std.is_finite()) {
            return Err(AttackError::config(
                "gaussian-noise",
                "std must be positive and finite",
            ));
        }
        Ok(Self { std })
    }

    /// Per-coordinate standard deviation of the proposed noise.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Attack for GaussianNoise {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        Ok((0..ctx.byzantine_count)
            .map(|_| Vector::gaussian(ctx.dim(), 0.0, self.std, rng))
            .collect())
    }

    fn name(&self) -> String {
        "gaussian-noise".into()
    }
}

/// Proposes `−scale ×` the mean of the honest proposals: pushes averaging
/// backwards along the descent direction without needing the true gradient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignFlip {
    scale: f64,
}

impl SignFlip {
    /// Creates the attack; the proposals are `−scale × mean(honest)`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `scale` is positive and finite.
    pub fn new(scale: f64) -> Result<Self, AttackError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(AttackError::config(
                "sign-flip",
                "scale must be positive and finite",
            ));
        }
        Ok(Self { scale })
    }

    /// Magnification applied to the flipped gradient.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Attack for SignFlip {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let mean = ctx
            .honest_mean()
            .ok_or_else(|| AttackError::context("sign-flip", "no honest proposals to observe"))?;
        Ok(vec![mean.scaled(-self.scale); ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "sign-flip".into()
    }
}

/// The omniscient adversary of the full paper's evaluation: proposes
/// `−scale × ∇Q(x_t)` using the *true* gradient when available (falling back
/// to the honest mean otherwise), trying to drag the model up the cost
/// surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OmniscientNegative {
    scale: f64,
}

impl OmniscientNegative {
    /// Creates the attack with the given magnification.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `scale` is positive and finite.
    pub fn new(scale: f64) -> Result<Self, AttackError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(AttackError::config(
                "omniscient-negative",
                "scale must be positive and finite",
            ));
        }
        Ok(Self { scale })
    }

    /// Magnification applied to the negated gradient.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Attack for OmniscientNegative {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let gradient = ctx.gradient_estimate().ok_or_else(|| {
            AttackError::context("omniscient-negative", "no gradient information available")
        })?;
        Ok(vec![gradient.scaled(-self.scale); ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "omniscient-negative".into()
    }
}

/// "A little is enough"-style stealth attack (extension): shift every
/// coordinate of the honest mean by `z` honest standard deviations. Small `z`
/// keeps the forged vectors statistically inside the honest cloud while still
/// biasing the aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LittleIsEnough {
    z: f64,
}

impl LittleIsEnough {
    /// Creates the attack with shift `z` (in units of per-coordinate std).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `z` is finite and non-zero.
    pub fn new(z: f64) -> Result<Self, AttackError> {
        if z == 0.0 || !z.is_finite() {
            return Err(AttackError::config(
                "little-is-enough",
                "z must be finite and non-zero",
            ));
        }
        Ok(Self { z })
    }

    /// The shift in units of the per-coordinate standard deviation.
    pub fn z(&self) -> f64 {
        self.z
    }
}

impl Attack for LittleIsEnough {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let honest = ctx.honest_proposals;
        let mean = ctx.honest_mean().ok_or_else(|| {
            AttackError::context("little-is-enough", "no honest proposals to observe")
        })?;
        let dim = ctx.dim();
        // Per-coordinate standard deviation of the honest proposals.
        let mut std = Vector::zeros(dim);
        if honest.len() > 1 {
            for v in honest {
                for c in 0..dim {
                    let d = v[c] - mean[c];
                    std[c] += d * d;
                }
            }
            std.map_inplace(|s| (s / (honest.len() - 1) as f64).sqrt());
        }
        let mut forged = mean;
        forged.axpy(-self.z, &std);
        Ok(vec![forged; ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "little-is-enough".into()
    }
}

/// Copies one honest proposal verbatim (extension). Harmless in isolation but
/// reduces proposal diversity and, for selection rules, boosts the copied
/// worker's chance of being picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Mimic {
    victim: usize,
}

impl Mimic {
    /// Creates the attack copying the honest worker at index `victim`
    /// (modulo the number of honest workers in the round).
    pub fn new(victim: usize) -> Self {
        Self { victim }
    }

    /// Index of the honest worker whose proposal is copied.
    pub fn victim(&self) -> usize {
        self.victim
    }
}

impl Attack for Mimic {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        if ctx.honest_proposals.is_empty() {
            return Err(AttackError::context("mimic", "no honest proposals to copy"));
        }
        let victim = self.victim % ctx.honest_proposals.len();
        Ok(vec![
            ctx.honest_proposals[victim].clone();
            ctx.byzantine_count
        ])
    }

    fn name(&self) -> String {
        "mimic".into()
    }
}

/// A timing-aware adversary for partial-quorum rounds: the Byzantine workers
/// deliberately straggle, arriving after every honest proposal of their
/// round. Their (poisoned) vectors — `−scale ×` the honest mean, the
/// sign-flip construction — therefore miss the quorum whenever it can close
/// without them, and land as **stale carry-overs** in later rounds instead
/// (or are dropped by the engine's staleness bound). Under barrier engines
/// the timing is ignored and this degrades to a plain [`SignFlip`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    scale: f64,
}

impl Straggler {
    /// Creates the straggling adversary; the (late) proposals are
    /// `−scale × mean(honest)`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `scale` is positive and
    /// finite.
    pub fn new(scale: f64) -> Result<Self, AttackError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(AttackError::config(
                "straggler",
                "scale must be positive and finite",
            ));
        }
        Ok(Self { scale })
    }

    /// Magnification applied to the flipped honest mean.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Attack for Straggler {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let mean = ctx
            .honest_mean()
            .ok_or_else(|| AttackError::context("straggler", "no honest proposals to observe"))?;
        Ok(vec![mean.scaled(-self.scale); ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "straggler".into()
    }

    fn timing(&self) -> AttackTiming {
        AttackTiming::Straggle
    }
}

/// A timing-aware adversary for partial-quorum rounds: the Byzantine workers
/// wait until they have observed the proposals that would close the quorum,
/// then respond just before it closes — so they are always in the quorum and
/// always forge with full knowledge of exactly the set the server is about
/// to aggregate. The forged vectors are `−scale ×` the best gradient
/// estimate available (the true gradient when the workload exposes one,
/// otherwise the mean of the observed proposals). Under barrier engines the
/// timing is ignored and this degrades to [`OmniscientNegative`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LastToRespond {
    scale: f64,
}

impl LastToRespond {
    /// Creates the last-to-respond adversary with the given magnification.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::BadConfig`] unless `scale` is positive and
    /// finite.
    pub fn new(scale: f64) -> Result<Self, AttackError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(AttackError::config(
                "last-to-respond",
                "scale must be positive and finite",
            ));
        }
        Ok(Self { scale })
    }

    /// Magnification applied to the negated gradient estimate.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Attack for LastToRespond {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        let gradient = ctx.gradient_estimate().ok_or_else(|| {
            AttackError::context("last-to-respond", "no gradient information available")
        })?;
        Ok(vec![gradient.scaled(-self.scale); ctx.byzantine_count])
    }

    fn name(&self) -> String {
        "last-to-respond".into()
    }

    fn timing(&self) -> AttackTiming {
        AttackTiming::LastToRespond
    }
}

/// Fault injection: every Byzantine proposal is a NaN-filled vector. This is
/// the degenerate-input probe for the robustness stack (a robust location
/// estimator is only as robust as its handling of non-finite input): rules
/// and engines must either filter the poisoned proposals or fail with a
/// structured error — never panic, never step on garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NonFinite;

impl NonFinite {
    /// Creates the NaN-injection attack.
    pub fn new() -> Self {
        Self
    }
}

impl Attack for NonFinite {
    fn forge(
        &self,
        ctx: &AttackContext<'_>,
        _rng: &mut dyn rand::RngCore,
    ) -> Result<Vec<Vector>, AttackError> {
        Ok(vec![
            Vector::filled(ctx.dim(), f64::NAN);
            ctx.byzantine_count
        ])
    }

    fn name(&self) -> String {
        "non-finite".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_core::{Aggregator, Average, ClosestToBarycenter, Krum};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn honest_cloud(count: usize, dim: usize, seed: u64) -> Vec<Vector> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut v = Vector::filled(dim, 1.0);
                v.axpy(1.0, &Vector::gaussian(dim, 0.0, 0.1, &mut rng));
                v
            })
            .collect()
    }

    fn ctx<'a>(
        honest: &'a [Vector],
        params: &'a Vector,
        grad: Option<&'a Vector>,
        f: usize,
    ) -> AttackContext<'a> {
        AttackContext {
            honest_proposals: honest,
            current_params: params,
            true_gradient: grad,
            byzantine_count: f,
            total_workers: honest.len() + f,
            round: 3,
            aggregator_name: "average",
        }
    }

    #[test]
    fn no_attack_proposes_benign_vectors() {
        let honest = honest_cloud(5, 4, 0);
        let params = Vector::zeros(4);
        let c = ctx(&honest, &params, None, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let forged = NoAttack::new().forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 2);
        let mean = Vector::mean_of(&honest).unwrap();
        assert!(forged[0].distance(&mean) < 1e-12);
        assert_eq!(NoAttack.name(), "none");
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(NoAttack.forge(&c, &mut rng).is_err());
    }

    #[test]
    fn constant_target_forces_the_average_exactly() {
        let honest = honest_cloud(8, 6, 2);
        let params = Vector::zeros(6);
        let target = Vector::from(vec![5.0, -3.0, 0.0, 2.0, 9.0, -1.0]);
        let attack = ConstantTarget::new(target.clone());
        assert_eq!(attack.target(), &target);
        let c = ctx(&honest, &params, None, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 3);
        let mut all = honest.clone();
        all.extend(forged);
        let aggregate = Average::new().aggregate(&all).unwrap();
        assert!(
            aggregate.distance(&target) < 1e-9,
            "average should equal the target exactly (Lemma 3.1)"
        );
    }

    #[test]
    fn constant_target_with_single_attacker_also_works() {
        let honest = honest_cloud(6, 3, 4);
        let params = Vector::zeros(3);
        let target = Vector::from(vec![-10.0, 10.0, 0.5]);
        let attack = ConstantTarget::new(target.clone());
        let c = ctx(&honest, &params, None, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let forged = attack.forge(&c, &mut rng).unwrap();
        let mut all = honest.clone();
        all.extend(forged);
        let aggregate = Average::new().aggregate(&all).unwrap();
        assert!(aggregate.distance(&target) < 1e-9);
    }

    #[test]
    fn constant_target_rejects_dimension_mismatch_and_zero_f() {
        let honest = honest_cloud(4, 3, 6);
        let params = Vector::zeros(3);
        let attack = ConstantTarget::new(Vector::zeros(2));
        let c = ctx(&honest, &params, None, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!(attack.forge(&c, &mut rng).is_err());
        let attack = ConstantTarget::new(Vector::zeros(3));
        let c = ctx(&honest, &params, None, 0);
        assert!(attack.forge(&c, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn collusion_defeats_closest_to_barycenter_but_not_krum() {
        let honest = honest_cloud(5, 4, 7);
        let params = Vector::zeros(4);
        let attack = Collusion::new(1000.0).unwrap();
        assert_eq!(attack.magnitude(), 1000.0);
        let c = ctx(&honest, &params, None, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 2);
        let mut all = honest.clone();
        all.extend(forged);
        // The flawed rule selects a Byzantine index (5 or 6).
        let flawed = ClosestToBarycenter::new().aggregate_detailed(&all).unwrap();
        assert!(flawed.selected_index().unwrap() >= 5);
        // Krum still selects an honest one.
        let krum = Krum::new(7, 2).unwrap().aggregate_detailed(&all).unwrap();
        assert!(krum.selected_index().unwrap() < 5);
    }

    #[test]
    fn collusion_validation_and_degenerate_cases() {
        assert!(Collusion::new(0.0).is_err());
        assert!(Collusion::new(f64::INFINITY).is_err());
        let attack = Collusion::new(10.0).unwrap();
        let honest = honest_cloud(4, 2, 9);
        let params = Vector::zeros(2);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        // f = 1 falls back to proposing the honest barycenter.
        let c = ctx(&honest, &params, None, 1);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 1);
        assert!(forged[0].distance(&Vector::mean_of(&honest).unwrap()) < 1e-12);
        // No honest proposals -> context error.
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 2);
        assert!(attack.forge(&c, &mut rng).is_err());
        // f = 0 -> empty result.
        let c = ctx(&honest, &params, None, 0);
        assert!(attack.forge(&c, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn gaussian_noise_statistics() {
        assert!(GaussianNoise::new(0.0).is_err());
        assert!(GaussianNoise::new(f64::NAN).is_err());
        let attack = GaussianNoise::new(100.0).unwrap();
        assert_eq!(attack.std(), 100.0);
        let honest = honest_cloud(3, 50, 11);
        let params = Vector::zeros(50);
        let c = ctx(&honest, &params, None, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 4);
        // With std = 100 and d = 50, the norm should be large (≈ 100·√50).
        assert!(forged[0].norm() > 300.0);
        // Independent draws differ.
        assert_ne!(forged[0], forged[1]);
        assert_eq!(attack.name(), "gaussian-noise");
    }

    #[test]
    fn sign_flip_points_against_the_honest_mean() {
        assert!(SignFlip::new(-1.0).is_err());
        let attack = SignFlip::new(2.0).unwrap();
        assert_eq!(attack.scale(), 2.0);
        let honest = honest_cloud(6, 5, 13);
        let params = Vector::zeros(5);
        let c = ctx(&honest, &params, None, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let forged = attack.forge(&c, &mut rng).unwrap();
        let mean = Vector::mean_of(&honest).unwrap();
        assert!(forged[0].cosine_similarity(&mean).unwrap() < -0.999);
        assert!((forged[0].norm() - 2.0 * mean.norm()).abs() < 1e-9);
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(attack.forge(&c, &mut rng).is_err());
    }

    #[test]
    fn omniscient_uses_true_gradient_when_available() {
        assert!(OmniscientNegative::new(0.0).is_err());
        let attack = OmniscientNegative::new(3.0).unwrap();
        assert_eq!(attack.scale(), 3.0);
        let honest = honest_cloud(4, 3, 15);
        let params = Vector::zeros(3);
        let grad = Vector::from(vec![0.0, 2.0, 0.0]);
        let c = ctx(&honest, &params, Some(&grad), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged[0].as_slice(), &[0.0, -6.0, 0.0]);
        // Without the true gradient it falls back to the honest mean.
        let c = ctx(&honest, &params, None, 1);
        let forged = attack.forge(&c, &mut rng).unwrap();
        let mean = Vector::mean_of(&honest).unwrap();
        assert!(forged[0].cosine_similarity(&mean).unwrap() < -0.999);
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(attack.forge(&c, &mut rng).is_err());
    }

    #[test]
    fn little_is_enough_stays_near_the_honest_cloud() {
        assert!(LittleIsEnough::new(0.0).is_err());
        let attack = LittleIsEnough::new(1.5).unwrap();
        assert_eq!(attack.z(), 1.5);
        let honest = honest_cloud(10, 6, 17);
        let params = Vector::zeros(6);
        let c = ctx(&honest, &params, None, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 3);
        let mean = Vector::mean_of(&honest).unwrap();
        // Shift is bounded by z times the largest per-coordinate std (~0.1),
        // so the forged vector stays within a modest distance of the mean.
        assert!(forged[0].distance(&mean) < 1.5 * 0.3 * (6.0f64).sqrt());
        assert!(forged[0].distance(&mean) > 0.0);
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(attack.forge(&c, &mut rng).is_err());
    }

    #[test]
    fn mimic_copies_the_victim() {
        let attack = Mimic::new(2);
        assert_eq!(attack.victim(), 2);
        let honest = honest_cloud(4, 3, 19);
        let params = Vector::zeros(3);
        let c = ctx(&honest, &params, None, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged[0], honest[2]);
        assert_eq!(forged[1], honest[2]);
        // Victim index wraps around.
        let wrap = Mimic::new(7).forge(&c, &mut rng).unwrap();
        assert_eq!(wrap[0], honest[3]);
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(Mimic::new(0).forge(&c, &mut rng).is_err());
    }

    #[test]
    fn straggler_flips_the_mean_and_declares_straggle_timing() {
        assert!(Straggler::new(0.0).is_err());
        assert!(Straggler::new(f64::NAN).is_err());
        let attack = Straggler::new(2.0).unwrap();
        assert_eq!(attack.scale(), 2.0);
        assert_eq!(attack.timing(), AttackTiming::Straggle);
        assert_eq!(attack.name(), "straggler");
        let honest = honest_cloud(5, 4, 30);
        let params = Vector::zeros(4);
        let c = ctx(&honest, &params, None, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 2);
        let mean = Vector::mean_of(&honest).unwrap();
        assert!(forged[0].cosine_similarity(&mean).unwrap() < -0.999);
        let empty: Vec<Vector> = vec![];
        let c = ctx(&empty, &params, None, 1);
        assert!(attack.forge(&c, &mut rng).is_err());
    }

    #[test]
    fn last_to_respond_negates_the_observed_gradient() {
        assert!(LastToRespond::new(-1.0).is_err());
        let attack = LastToRespond::new(3.0).unwrap();
        assert_eq!(attack.scale(), 3.0);
        assert_eq!(attack.timing(), AttackTiming::LastToRespond);
        let honest = honest_cloud(4, 3, 32);
        let params = Vector::zeros(3);
        let grad = Vector::from(vec![0.0, 1.0, 0.0]);
        let c = ctx(&honest, &params, Some(&grad), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged[0].as_slice(), &[0.0, -3.0, 0.0]);
        // Without the true gradient it falls back to the observed mean.
        let c = ctx(&honest, &params, None, 1);
        let forged = attack.forge(&c, &mut rng).unwrap();
        let mean = Vector::mean_of(&honest).unwrap();
        assert!(forged[0].cosine_similarity(&mean).unwrap() < -0.999);
    }

    #[test]
    fn non_finite_attack_emits_nan_vectors() {
        let attack = NonFinite::new();
        assert_eq!(attack.timing(), AttackTiming::Honest);
        let honest = honest_cloud(4, 3, 34);
        let params = Vector::zeros(3);
        let c = ctx(&honest, &params, None, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let forged = attack.forge(&c, &mut rng).unwrap();
        assert_eq!(forged.len(), 2);
        assert!(forged.iter().all(|v| v.iter().all(|x| x.is_nan())));
    }

    #[test]
    fn attacks_work_behind_trait_objects() {
        let honest = honest_cloud(5, 3, 21);
        let params = Vector::zeros(3);
        let c = ctx(&honest, &params, None, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let attacks: Vec<Box<dyn Attack>> = vec![
            Box::new(NoAttack::new()),
            Box::new(GaussianNoise::new(10.0).unwrap()),
            Box::new(SignFlip::new(1.0).unwrap()),
            Box::new(Mimic::new(0)),
        ];
        for attack in &attacks {
            let forged = attack.forge(&c, &mut rng).unwrap();
            assert_eq!(forged.len(), 2, "attack {}", attack.name());
            assert!(forged.iter().all(|v| v.dim() == 3));
        }
    }
}
