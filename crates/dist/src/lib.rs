//! # krum-dist
//!
//! Synchronous parameter-server training engines for the Krum reproduction.
//!
//! The paper's model section fixes the protocol: each round `t`, the server
//! broadcasts `x_t`, every correct worker replies with a gradient estimate
//! `G(x_t, ξ)`, the Byzantine workers reply with anything (chosen with full
//! knowledge of the round), and the server applies
//! `x_{t+1} = x_t − γ_t · F(V_1, …, V_n)` for a choice function `F`.
//!
//! One [`RoundEngine`] implements that protocol as a
//! broadcast → propose → attack → aggregate → step → record pipeline,
//! parameterized by an [`ExecutionStrategy`]; two thin trainer facades pick
//! the strategy:
//!
//! * [`SyncTrainer`] — [`ExecutionStrategy::Sequential`], the reference
//!   engine;
//! * [`ThreadedTrainer`] — [`ExecutionStrategy::Threaded`]: honest worker
//!   gradients fan out over the `rayon` pool and a simulated
//!   [`NetworkModel`] (per-message latency + bandwidth) is charged to the
//!   round timings, for the cost-of-resilience experiments (E8).
//!
//! The engine is a deterministic function of [`TrainingConfig::seed`] —
//! worker, attack and network randomness are independent ChaCha streams
//! derived from it — so every strategy produces **identical parameter
//! trajectories** and experiments are exactly reproducible.
//!
//! Performance notes: the per-round proposal buffer and the aggregation
//! workspace ([`krum_core::AggregationContext`]) are allocated once and
//! reused, making the server-side aggregation path allocation-free in the
//! steady state; each pipeline phase is timed separately so the `O(n²·d)`
//! cost of Krum stays visible in the metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod error;
mod network;
mod sync;
mod threaded;

pub use config::{ClusterSpec, LearningRateSchedule, TrainingConfig};
pub use engine::{ExecutionStrategy, RoundEngine};
pub use error::TrainError;
pub use network::{LatencyModel, NetworkModel};
pub use sync::SyncTrainer;
pub use threaded::ThreadedTrainer;

/// Convenience prelude for the distributed-training crate.
pub mod prelude {
    pub use crate::{
        ClusterSpec, ExecutionStrategy, LatencyModel, LearningRateSchedule, NetworkModel,
        RoundEngine, SyncTrainer, ThreadedTrainer, TrainError, TrainingConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_attacks::{NoAttack, SignFlip};
    use krum_core::{Average, Krum};
    use krum_models::{GaussianEstimator, GradientEstimator, QuadraticCost};
    use krum_tensor::Vector;

    fn estimators(count: usize, dim: usize, sigma: f64) -> Vec<Box<dyn GradientEstimator>> {
        (0..count)
            .map(|_| {
                Box::new(
                    GaussianEstimator::new(
                        QuadraticCost::isotropic(Vector::zeros(dim), 0.0),
                        sigma,
                    )
                    .unwrap(),
                ) as Box<dyn GradientEstimator>
            })
            .collect()
    }

    fn config(rounds: usize, dim: usize) -> TrainingConfig {
        TrainingConfig {
            rounds,
            schedule: LearningRateSchedule::Constant { gamma: 0.2 },
            seed: 11,
            eval_every: 5,
            known_optimum: Some(Vector::zeros(dim)),
        }
    }

    #[test]
    fn sync_trainer_converges_on_clean_quadratic() {
        let dim = 8;
        let cluster = ClusterSpec::new(5, 0).unwrap();
        let mut trainer = SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(5, dim, 0.05),
            config(120, dim),
        )
        .unwrap();
        assert_eq!(trainer.cluster().workers(), 5);
        assert_eq!(trainer.dim(), dim);
        let (params, history) = trainer.run(Vector::filled(dim, 2.0)).unwrap();
        assert!(params.norm() < 0.2, "‖x‖ = {}", params.norm());
        assert_eq!(history.len(), 120);
        assert!(!history.summary().diverged);
        // distance-to-optimum decreases over the run.
        let first = history.rounds[0].distance_to_optimum.unwrap();
        let last = history.rounds[119].distance_to_optimum.unwrap();
        assert!(last < first * 0.2);
    }

    #[test]
    fn sync_trainer_runs_are_reproducible() {
        let dim = 6;
        let cluster = ClusterSpec::new(7, 2).unwrap();
        let run = || {
            let mut trainer = SyncTrainer::new(
                cluster,
                Box::new(Krum::new(7, 2).unwrap()),
                Box::new(SignFlip::new(3.0).unwrap()),
                estimators(5, dim, 0.2),
                config(30, dim),
            )
            .unwrap();
            trainer.run(Vector::filled(dim, 1.0)).unwrap().0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_round_advances_from_given_params() {
        let dim = 4;
        let cluster = ClusterSpec::new(5, 1).unwrap();
        let mut trainer = SyncTrainer::new(
            cluster,
            Box::new(Krum::new(5, 1).unwrap()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.0),
            config(1, dim),
        )
        .unwrap();
        let start = Vector::filled(dim, 1.0);
        let (next, record) = trainer.run_round(&start, 0).unwrap();
        // Zero noise: the aggregate is exactly the gradient x, so the update
        // is x ← x − 0.2·x.
        assert!(next.distance(&start.scaled(0.8)) < 1e-12);
        assert_eq!(record.round, 0);
        assert!(record.aggregation_nanos > 0);
        assert_eq!(record.selected_byzantine, Some(false));
    }

    #[test]
    fn construction_rejects_bad_shapes() {
        let dim = 4;
        let cluster = ClusterSpec::new(5, 1).unwrap();
        // Wrong estimator count.
        assert!(SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(3, dim, 0.1),
            config(5, dim),
        )
        .is_err());
        // Mismatched estimator dimensions.
        let mut mixed = estimators(3, dim, 0.1);
        mixed.extend(estimators(1, dim + 1, 0.1));
        assert!(SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            mixed,
            config(5, dim),
        )
        .is_err());
        // Known optimum with the wrong dimension.
        let bad_config = TrainingConfig {
            known_optimum: Some(Vector::zeros(dim + 2)),
            ..config(5, dim)
        };
        assert!(SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.1),
            bad_config,
        )
        .is_err());
        // Threaded engine wants honest + 1 estimators.
        let network = NetworkModel {
            latency: LatencyModel::Constant { nanos: 1_000 },
            nanos_per_byte: 0.1,
        };
        assert!(ThreadedTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.1),
            config(5, dim),
            network,
        )
        .is_err());
    }

    #[test]
    fn threaded_matches_sequential_trajectory() {
        let dim = 5;
        let cluster = ClusterSpec::new(6, 1).unwrap();
        let network = NetworkModel {
            latency: LatencyModel::Uniform {
                min_nanos: 1_000,
                max_nanos: 2_000,
            },
            nanos_per_byte: 0.5,
        };
        let mut sequential = SyncTrainer::new(
            cluster,
            Box::new(Krum::new(6, 1).unwrap()),
            Box::new(SignFlip::new(2.0).unwrap()),
            estimators(5, dim, 0.3),
            config(25, dim),
        )
        .unwrap();
        let mut threaded = ThreadedTrainer::new(
            cluster,
            Box::new(Krum::new(6, 1).unwrap()),
            Box::new(SignFlip::new(2.0).unwrap()),
            estimators(6, dim, 0.3),
            config(25, dim),
            network,
        )
        .unwrap();
        let start = Vector::filled(dim, 1.5);
        let (seq, seq_history) = sequential.run(start.clone()).unwrap();
        let (thr, thr_history) = threaded.run(start).unwrap();
        assert_eq!(seq, thr, "engines must follow identical trajectories");
        // The network charge only widens the round timings.
        assert!(thr_history.mean_round_nanos() >= seq_history.mean_round_nanos());
        assert!(thr_history.mean_round_nanos() >= 2_000.0);
        assert_eq!(threaded.network(), network);
        assert_eq!(threaded.cluster().honest(), 5);
        assert_eq!(threaded.dim(), dim);
        // Per-phase accounting: the sequential engine charges no network
        // time; the threaded engine records the simulated barrier.
        assert_eq!(seq_history.mean_network_nanos(), 0.0);
        assert!(thr_history.mean_network_nanos() >= 2_000.0);
        assert!(seq_history.mean_propose_nanos() > 0.0);
        assert!(thr_history.mean_attack_nanos() > 0.0);
    }

    #[test]
    fn round_engine_is_usable_directly() {
        let dim = 4;
        let cluster = ClusterSpec::new(5, 1).unwrap();
        let mut engine = RoundEngine::new(
            cluster,
            Box::new(Krum::new(5, 1).unwrap()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.0),
            None,
            config(3, dim),
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        assert_eq!(engine.strategy(), ExecutionStrategy::Sequential);
        assert_eq!(engine.config().rounds, 3);
        engine.set_aggregation_policy(krum_core::ExecutionPolicy::Sequential);
        let mut params = Vector::filled(dim, 1.0);
        let record = engine.step(&mut params, 0).unwrap();
        // Zero noise: the aggregate is exactly the gradient x.
        assert!(params.distance(&Vector::filled(dim, 0.8)) < 1e-12);
        assert!(record.aggregation_nanos > 0);
        assert!(record.propose_nanos > 0);
        assert_eq!(record.network_nanos, 0);
        // The pipeline phases are all contained in the round wall-clock.
        assert!(
            record.round_nanos
                >= record.propose_nanos + record.attack_nanos + record.aggregation_nanos
        );
        // A history produced directly by the engine carries the metadata.
        let history = engine.new_history();
        assert_eq!(history.workers, 5);
        assert!(history.aggregator.contains("krum"));
    }

    #[test]
    fn engine_strategies_match_trainer_trajectories() {
        // The same RoundEngine drives both facades; a bare engine with the
        // Threaded strategy must reproduce the ThreadedTrainer trajectory.
        let dim = 6;
        let cluster = ClusterSpec::new(7, 2).unwrap();
        let network = NetworkModel {
            latency: LatencyModel::Constant { nanos: 500 },
            nanos_per_byte: 0.2,
        };
        let mut engine = RoundEngine::new(
            cluster,
            Box::new(Krum::new(7, 2).unwrap()),
            Box::new(SignFlip::new(2.5).unwrap()),
            estimators(5, dim, 0.4),
            Some(estimators(1, dim, 0.4).pop().unwrap()),
            config(12, dim),
            ExecutionStrategy::Threaded { network },
        )
        .unwrap();
        let mut trainer = ThreadedTrainer::new(
            cluster,
            Box::new(Krum::new(7, 2).unwrap()),
            Box::new(SignFlip::new(2.5).unwrap()),
            estimators(6, dim, 0.4),
            config(12, dim),
            network,
        )
        .unwrap();
        let start = Vector::filled(dim, 1.0);
        let (a, _) = engine.run(start.clone()).unwrap();
        let (b, _) = trainer.run(start).unwrap();
        assert_eq!(a, b);
        assert!(trainer.engine_mut().strategy().network().is_some());
    }

    #[test]
    fn latency_models_sample_within_bounds() {
        let mut rng = crate::engine::stream_rng(3, 0);
        let constant = LatencyModel::Constant { nanos: 42 };
        assert_eq!(constant.sample(&mut rng), 42);
        let uniform = LatencyModel::Uniform {
            min_nanos: 10,
            max_nanos: 20,
        };
        for _ in 0..100 {
            let draw = uniform.sample(&mut rng);
            assert!((10..=20).contains(&draw));
        }
        // Degenerate range falls back to the minimum.
        let tight = LatencyModel::Uniform {
            min_nanos: 7,
            max_nanos: 7,
        };
        assert_eq!(tight.sample(&mut rng), 7);
    }

    #[test]
    fn network_round_cost_reflects_payload() {
        let mut rng = crate::engine::stream_rng(4, 0);
        let network = NetworkModel {
            latency: LatencyModel::Constant { nanos: 100 },
            nanos_per_byte: 1.0,
        };
        // 2 latencies + 2 × (8·d bytes × 1 ns/byte).
        assert_eq!(network.round_nanos(3, 10, &mut rng), 200 + 2 * 80);
    }
}
