//! # krum-dist
//!
//! Synchronous parameter-server training engines for the Krum reproduction.
//!
//! The paper's model section fixes the protocol: each round `t`, the server
//! broadcasts `x_t`, every correct worker replies with a gradient estimate
//! `G(x_t, ξ)`, the Byzantine workers reply with anything (chosen with full
//! knowledge of the round), and the server applies
//! `x_{t+1} = x_t − γ_t · F(V_1, …, V_n)` for a choice function `F`.
//!
//! One [`RoundEngine`] implements that protocol as a
//! broadcast → propose → attack → aggregate → step → record pipeline,
//! parameterized by an [`ExecutionStrategy`]; two thin trainer facades pick
//! the strategy:
//!
//! * [`SyncTrainer`] — [`ExecutionStrategy::Sequential`], the reference
//!   engine;
//! * [`ThreadedTrainer`] — [`ExecutionStrategy::Threaded`]: honest worker
//!   gradients fan out over the `rayon` pool and a simulated
//!   [`NetworkModel`] (per-message latency + bandwidth) is charged to the
//!   round timings, for the cost-of-resilience experiments (E8).
//!
//! The engine is a deterministic function of [`TrainingConfig::seed`] —
//! worker, attack and network randomness are independent ChaCha streams
//! derived from it — so every strategy produces **identical parameter
//! trajectories** and experiments are exactly reproducible.
//!
//! Performance notes: the per-round proposal buffer and the aggregation
//! workspace ([`krum_core::AggregationContext`]) are allocated once and
//! reused, making the server-side aggregation path allocation-free in the
//! steady state; each pipeline phase is timed separately so the `O(n²·d)`
//! cost of Krum stays visible in the metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod drift;
mod engine;
mod error;
mod network;
mod round_core;
mod sync;
mod threaded;

pub use config::{ClusterSpec, LearningRateSchedule, TrainingConfig};
pub use drift::DriftTracker;
pub use engine::{stream_rng, ExecutionStrategy, RoundEngine, ATTACK_STREAM};
pub use error::TrainError;
pub use network::{LatencyModel, NetworkModel, LATENCY_MODEL_NAMES};
pub use round_core::{AccuracyProbe, RoundCore};
pub use sync::SyncTrainer;
pub use threaded::ThreadedTrainer;

/// Convenience prelude for the distributed-training crate.
pub mod prelude {
    pub use crate::{
        ClusterSpec, DriftTracker, ExecutionStrategy, LatencyModel, LearningRateSchedule,
        NetworkModel, RoundEngine, SyncTrainer, ThreadedTrainer, TrainError, TrainingConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use krum_attacks::{NoAttack, SignFlip};
    use krum_core::{Average, Krum};
    use krum_models::{GaussianEstimator, GradientEstimator, QuadraticCost};
    use krum_tensor::Vector;

    fn estimators(count: usize, dim: usize, sigma: f64) -> Vec<Box<dyn GradientEstimator>> {
        (0..count)
            .map(|_| {
                Box::new(
                    GaussianEstimator::new(
                        QuadraticCost::isotropic(Vector::zeros(dim), 0.0),
                        sigma,
                    )
                    .unwrap(),
                ) as Box<dyn GradientEstimator>
            })
            .collect()
    }

    fn config(rounds: usize, dim: usize) -> TrainingConfig {
        TrainingConfig {
            rounds,
            schedule: LearningRateSchedule::Constant { gamma: 0.2 },
            seed: 11,
            eval_every: 5,
            known_optimum: Some(Vector::zeros(dim)),
        }
    }

    #[test]
    fn sync_trainer_converges_on_clean_quadratic() {
        let dim = 8;
        let cluster = ClusterSpec::new(5, 0).unwrap();
        let mut trainer = SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(5, dim, 0.05),
            config(120, dim),
        )
        .unwrap();
        assert_eq!(trainer.cluster().workers(), 5);
        assert_eq!(trainer.dim(), dim);
        let (params, history) = trainer.run(Vector::filled(dim, 2.0)).unwrap();
        assert!(params.norm() < 0.2, "‖x‖ = {}", params.norm());
        assert_eq!(history.len(), 120);
        assert!(!history.summary().diverged);
        // distance-to-optimum decreases over the run.
        let first = history.rounds[0].distance_to_optimum.unwrap();
        let last = history.rounds[119].distance_to_optimum.unwrap();
        assert!(last < first * 0.2);
    }

    #[test]
    fn sync_trainer_runs_are_reproducible() {
        let dim = 6;
        let cluster = ClusterSpec::new(7, 2).unwrap();
        let run = || {
            let mut trainer = SyncTrainer::new(
                cluster,
                Box::new(Krum::new(7, 2).unwrap()),
                Box::new(SignFlip::new(3.0).unwrap()),
                estimators(5, dim, 0.2),
                config(30, dim),
            )
            .unwrap();
            trainer.run(Vector::filled(dim, 1.0)).unwrap().0
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_round_advances_from_given_params() {
        let dim = 4;
        let cluster = ClusterSpec::new(5, 1).unwrap();
        let mut trainer = SyncTrainer::new(
            cluster,
            Box::new(Krum::new(5, 1).unwrap()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.0),
            config(1, dim),
        )
        .unwrap();
        let start = Vector::filled(dim, 1.0);
        let (next, record) = trainer.run_round(&start, 0).unwrap();
        // Zero noise: the aggregate is exactly the gradient x, so the update
        // is x ← x − 0.2·x.
        assert!(next.distance(&start.scaled(0.8)) < 1e-12);
        assert_eq!(record.round, 0);
        assert!(record.aggregation_nanos > 0);
        assert_eq!(record.selected_byzantine, Some(false));
    }

    #[test]
    fn construction_rejects_bad_shapes() {
        let dim = 4;
        let cluster = ClusterSpec::new(5, 1).unwrap();
        // Wrong estimator count.
        assert!(SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(3, dim, 0.1),
            config(5, dim),
        )
        .is_err());
        // Mismatched estimator dimensions.
        let mut mixed = estimators(3, dim, 0.1);
        mixed.extend(estimators(1, dim + 1, 0.1));
        assert!(SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            mixed,
            config(5, dim),
        )
        .is_err());
        // Known optimum with the wrong dimension.
        let bad_config = TrainingConfig {
            known_optimum: Some(Vector::zeros(dim + 2)),
            ..config(5, dim)
        };
        assert!(SyncTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.1),
            bad_config,
        )
        .is_err());
        // Threaded engine wants honest + 1 estimators.
        let network = NetworkModel {
            latency: LatencyModel::Constant { nanos: 1_000 },
            nanos_per_byte: 0.1,
        };
        assert!(ThreadedTrainer::new(
            cluster,
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.1),
            config(5, dim),
            network,
        )
        .is_err());
    }

    #[test]
    fn threaded_matches_sequential_trajectory() {
        let dim = 5;
        let cluster = ClusterSpec::new(6, 1).unwrap();
        let network = NetworkModel {
            latency: LatencyModel::Uniform {
                min_nanos: 1_000,
                max_nanos: 2_000,
            },
            nanos_per_byte: 0.5,
        };
        let mut sequential = SyncTrainer::new(
            cluster,
            Box::new(Krum::new(6, 1).unwrap()),
            Box::new(SignFlip::new(2.0).unwrap()),
            estimators(5, dim, 0.3),
            config(25, dim),
        )
        .unwrap();
        let mut threaded = ThreadedTrainer::new(
            cluster,
            Box::new(Krum::new(6, 1).unwrap()),
            Box::new(SignFlip::new(2.0).unwrap()),
            estimators(6, dim, 0.3),
            config(25, dim),
            network,
        )
        .unwrap();
        let start = Vector::filled(dim, 1.5);
        let (seq, seq_history) = sequential.run(start.clone()).unwrap();
        let (thr, thr_history) = threaded.run(start).unwrap();
        assert_eq!(seq, thr, "engines must follow identical trajectories");
        // The network charge only widens the round timings.
        assert!(thr_history.mean_round_nanos() >= seq_history.mean_round_nanos());
        assert!(thr_history.mean_round_nanos() >= 2_000.0);
        assert_eq!(threaded.network(), network);
        assert_eq!(threaded.cluster().honest(), 5);
        assert_eq!(threaded.dim(), dim);
        // Per-phase accounting: the sequential engine charges no network
        // time; the threaded engine records the simulated barrier.
        assert_eq!(seq_history.mean_network_nanos(), 0.0);
        assert!(thr_history.mean_network_nanos() >= 2_000.0);
        assert!(seq_history.mean_propose_nanos() > 0.0);
        assert!(thr_history.mean_attack_nanos() > 0.0);
    }

    #[test]
    fn round_engine_is_usable_directly() {
        let dim = 4;
        let cluster = ClusterSpec::new(5, 1).unwrap();
        let mut engine = RoundEngine::new(
            cluster,
            Box::new(Krum::new(5, 1).unwrap()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.0),
            None,
            config(3, dim),
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        assert_eq!(engine.strategy(), ExecutionStrategy::Sequential);
        assert_eq!(engine.config().rounds, 3);
        engine.set_aggregation_policy(krum_core::ExecutionPolicy::Sequential);
        let mut params = Vector::filled(dim, 1.0);
        let record = engine.step(&mut params, 0).unwrap();
        // Zero noise: the aggregate is exactly the gradient x.
        assert!(params.distance(&Vector::filled(dim, 0.8)) < 1e-12);
        assert!(record.aggregation_nanos > 0);
        assert!(record.propose_nanos > 0);
        assert_eq!(record.network_nanos, 0);
        // The pipeline phases are all contained in the round wall-clock.
        assert!(
            record.round_nanos
                >= record.propose_nanos + record.attack_nanos + record.aggregation_nanos
        );
        // A history produced directly by the engine carries the metadata.
        let history = engine.new_history();
        assert_eq!(history.workers, 5);
        assert!(history.aggregator.contains("krum"));
    }

    #[test]
    fn engine_strategies_match_trainer_trajectories() {
        // The same RoundEngine drives both facades; a bare engine with the
        // Threaded strategy must reproduce the ThreadedTrainer trajectory.
        let dim = 6;
        let cluster = ClusterSpec::new(7, 2).unwrap();
        let network = NetworkModel {
            latency: LatencyModel::Constant { nanos: 500 },
            nanos_per_byte: 0.2,
        };
        let mut engine = RoundEngine::new(
            cluster,
            Box::new(Krum::new(7, 2).unwrap()),
            Box::new(SignFlip::new(2.5).unwrap()),
            estimators(5, dim, 0.4),
            Some(estimators(1, dim, 0.4).pop().unwrap()),
            config(12, dim),
            ExecutionStrategy::Threaded { network },
        )
        .unwrap();
        let mut trainer = ThreadedTrainer::new(
            cluster,
            Box::new(Krum::new(7, 2).unwrap()),
            Box::new(SignFlip::new(2.5).unwrap()),
            estimators(6, dim, 0.4),
            config(12, dim),
            network,
        )
        .unwrap();
        let start = Vector::filled(dim, 1.0);
        let (a, _) = engine.run(start.clone()).unwrap();
        let (b, _) = trainer.run(start).unwrap();
        assert_eq!(a, b);
        assert!(trainer.engine_mut().strategy().network().is_some());
    }

    #[allow(clippy::too_many_arguments)]
    fn async_engine(
        n: usize,
        f: usize,
        dim: usize,
        sigma: f64,
        rounds: usize,
        quorum: usize,
        max_staleness: usize,
        network: NetworkModel,
        attack: Box<dyn krum_attacks::Attack>,
    ) -> RoundEngine {
        // The rule is built for the quorum size, not n — Krum's 2f + 2 < n
        // precondition is re-validated against what actually gets aggregated.
        RoundEngine::new(
            ClusterSpec::new(n, f).unwrap(),
            Box::new(Krum::new(quorum, f).unwrap()),
            attack,
            estimators(n - f, dim, sigma),
            None,
            config(rounds, dim),
            ExecutionStrategy::AsyncQuorum {
                quorum,
                max_staleness,
                network,
                reuse_stale: false,
            },
        )
        .unwrap()
    }

    /// A reuse-stale engine: the rule is built for `n` (the full latest
    /// table is aggregated every round), `quorum` is the refresh pace.
    #[allow(clippy::too_many_arguments)]
    fn reuse_engine(
        n: usize,
        f: usize,
        dim: usize,
        sigma: f64,
        rounds: usize,
        quorum: usize,
        max_staleness: usize,
        network: NetworkModel,
        attack: Box<dyn krum_attacks::Attack>,
        gram_cache: bool,
    ) -> RoundEngine {
        let mut engine = RoundEngine::new(
            ClusterSpec::new(n, f).unwrap(),
            Box::new(Krum::new(n, f).unwrap()),
            attack,
            estimators(n - f, dim, sigma),
            None,
            config(rounds, dim),
            ExecutionStrategy::AsyncQuorum {
                quorum,
                max_staleness,
                network,
                reuse_stale: true,
            },
        )
        .unwrap();
        engine.set_gram_cache(gram_cache);
        engine
    }

    /// Reuse mode with a full refresh every round collapses to the barrier
    /// protocol: same proposals, same order, same trajectory as Sequential.
    #[test]
    fn reuse_full_refresh_matches_sequential_exactly() {
        let (n, f, dim, rounds) = (9, 2, 5, 20);
        let start = Vector::filled(dim, 1.2);
        let mut sequential = RoundEngine::new(
            ClusterSpec::new(n, f).unwrap(),
            Box::new(Krum::new(n, f).unwrap()),
            Box::new(SignFlip::new(2.0).unwrap()),
            estimators(n - f, dim, 0.3),
            None,
            config(rounds, dim),
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        let mut reuse = reuse_engine(
            n,
            f,
            dim,
            0.3,
            rounds,
            n,
            0,
            zero_latency(),
            Box::new(SignFlip::new(2.0).unwrap()),
            true,
        );
        let (a, ha) = sequential.run(start.clone()).unwrap();
        let (b, hb) = reuse.run(start).unwrap();
        assert_eq!(a, b, "full-refresh reuse must reproduce the barrier");
        for (ra, rb) in ha.rounds.iter().zip(hb.rounds.iter()) {
            assert_eq!(ra.aggregate_norm.to_bits(), rb.aggregate_norm.to_bits());
            assert_eq!(ra.selected_worker, rb.selected_worker);
        }
        // Every round refreshed everything: no staleness anywhere.
        assert!(hb
            .rounds
            .iter()
            .all(|r| r.stale_in_quorum == Some(0) && r.quorum_size == Some(n)));
    }

    /// The incremental Gram cache is a pure optimisation: trajectories with
    /// it on and off are bit-identical under every adversary timing and a
    /// heavy-tailed network.
    #[test]
    fn reuse_gram_cache_on_and_off_are_bit_identical() {
        let network = NetworkModel {
            latency: LatencyModel::Pareto {
                min_nanos: 1_000,
                alpha: 1.4,
            },
            nanos_per_byte: 0.05,
        };
        let attacks: Vec<fn() -> Box<dyn krum_attacks::Attack>> = vec![
            || Box::new(SignFlip::new(2.0).unwrap()),
            || Box::new(krum_attacks::Straggler::new(3.0).unwrap()),
            || Box::new(krum_attacks::LastToRespond::new(2.5).unwrap()),
        ];
        for make_attack in attacks {
            let (n, f, dim, rounds) = (12, 2, 6, 25);
            // A quarter of the table refreshes per round, stale entries
            // tolerated up to 4 rounds.
            let mut cached =
                reuse_engine(n, f, dim, 0.4, rounds, 3, 4, network, make_attack(), true);
            let mut uncached =
                reuse_engine(n, f, dim, 0.4, rounds, 3, 4, network, make_attack(), false);
            let start = Vector::filled(dim, 1.0);
            let (a, ha) = cached.run(start.clone()).unwrap();
            let (b, hb) = uncached.run(start).unwrap();
            let name = cached.new_history().attack;
            assert_eq!(a, b, "cache must not change the trajectory ({name})");
            for (ra, rb) in ha.rounds.iter().zip(hb.rounds.iter()) {
                assert_eq!(
                    ra.aggregate_norm.to_bits(),
                    rb.aggregate_norm.to_bits(),
                    "round {} diverged under {name}",
                    ra.round
                );
                assert_eq!(ra.selected_worker, rb.selected_worker);
                assert_eq!(ra.stale_in_quorum, rb.stale_in_quorum);
            }
            // The partial refresh actually exercised staleness.
            assert!(ha.rounds.iter().any(|r| r.stale_in_quorum > Some(0)));
        }
    }

    /// The staleness bound is enforced by forced refreshes, and reuse mode
    /// accepts refresh paces below the `n − f` quorum floor.
    #[test]
    fn reuse_staleness_bound_forces_refreshes() {
        let (n, f, dim, rounds) = (10, 2, 4, 30);
        let mut engine = reuse_engine(
            n,
            f,
            dim,
            0.2,
            rounds,
            1, // far below n − f: legal in reuse mode
            3,
            zero_latency(),
            Box::new(SignFlip::new(1.5).unwrap()),
            true,
        );
        let (_, history) = engine.run(Vector::filled(dim, 1.0)).unwrap();
        for record in history.rounds.iter() {
            // No table entry ever exceeds the staleness bound.
            assert!(record.max_staleness_in_quorum <= Some(3));
            // Staleness lives in the table, not a carry pool.
            assert_eq!(record.pending_carryover, Some(0));
            assert_eq!(record.quorum_size.map(|q| q >= 1), Some(true));
        }
        assert!(history.rounds.iter().any(|r| r.stale_in_quorum > Some(0)));

        // Bounds: zero pace is rejected, any positive pace up to n is fine.
        let make = |quorum: usize| {
            RoundEngine::new(
                ClusterSpec::new(9, 2).unwrap(),
                Box::new(Average::new()),
                Box::new(NoAttack::new()),
                estimators(7, 4, 0.1),
                None,
                config(5, 4),
                ExecutionStrategy::AsyncQuorum {
                    quorum,
                    max_staleness: 1,
                    network: zero_latency(),
                    reuse_stale: true,
                },
            )
        };
        assert!(make(0).is_err(), "a zero refresh pace can never progress");
        assert!(make(1).is_ok(), "reuse mode has no n - f floor");
        assert!(make(9).is_ok());
        assert!(make(10).is_err(), "pace beyond n is meaningless");
    }

    fn zero_latency() -> NetworkModel {
        NetworkModel {
            latency: LatencyModel::Constant { nanos: 0 },
            nanos_per_byte: 0.0,
        }
    }

    /// Acceptance: `AsyncQuorum` with `quorum = n` and zero latency
    /// reproduces the Sequential trajectory exactly, record for record.
    #[test]
    fn async_full_quorum_zero_latency_matches_sequential_exactly() {
        let (n, f, dim, rounds) = (7, 2, 6, 30);
        let start = Vector::filled(dim, 1.5);
        let mut sequential = RoundEngine::new(
            ClusterSpec::new(n, f).unwrap(),
            Box::new(Krum::new(n, f).unwrap()),
            Box::new(SignFlip::new(3.0).unwrap()),
            estimators(n - f, dim, 0.3),
            None,
            config(rounds, dim),
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        let mut quorum = async_engine(
            n,
            f,
            dim,
            0.3,
            rounds,
            n,
            2,
            zero_latency(),
            Box::new(SignFlip::new(3.0).unwrap()),
        );
        let (seq, seq_history) = sequential.run(start.clone()).unwrap();
        let (qrm, qrm_history) = quorum.run(start).unwrap();
        assert_eq!(seq, qrm, "full-quorum async must equal the barrier");
        for (a, b) in seq_history.rounds.iter().zip(&qrm_history.rounds) {
            assert_eq!(a.aggregate_norm, b.aggregate_norm);
            assert_eq!(a.selected_worker, b.selected_worker);
            assert_eq!(a.distance_to_optimum, b.distance_to_optimum);
        }
        // A full quorum never carries or drops anything.
        assert!((qrm_history.mean_quorum_size() - n as f64).abs() < 1e-12);
        assert_eq!(qrm_history.total_dropped_stale(), 0);
        assert_eq!(qrm_history.mean_stale_in_quorum(), 0.0);
    }

    /// Acceptance: async-quorum trajectories are bit-identical across
    /// repeated runs of the same seed, including under a heavy-tailed
    /// network and a partial quorum.
    #[test]
    fn async_quorum_trajectories_are_reproducible() {
        let network = NetworkModel {
            latency: LatencyModel::Pareto {
                min_nanos: 10_000,
                alpha: 1.1,
            },
            nanos_per_byte: 0.05,
        };
        let run = || {
            let mut engine = async_engine(
                9,
                2,
                5,
                0.3,
                25,
                7,
                2,
                network,
                Box::new(SignFlip::new(2.0).unwrap()),
            );
            engine.run(Vector::filled(5, 1.0)).unwrap()
        };
        let (a, ha) = run();
        let (b, hb) = run();
        assert_eq!(a, b);
        // Every deterministic column matches bit-for-bit (the measured
        // wall-clock nanos are the only fields allowed to differ).
        for (x, y) in ha.rounds.iter().zip(&hb.rounds) {
            assert_eq!(x.aggregate_norm, y.aggregate_norm);
            assert_eq!(x.selected_worker, y.selected_worker);
            assert_eq!(x.distance_to_optimum, y.distance_to_optimum);
            assert_eq!(x.network_nanos, y.network_nanos, "simulated charge");
            assert_eq!(x.quorum_size, y.quorum_size);
            assert_eq!(x.stale_in_quorum, y.stale_in_quorum);
            assert_eq!(x.max_staleness_in_quorum, y.max_staleness_in_quorum);
            assert_eq!(x.dropped_stale, y.dropped_stale);
            assert_eq!(x.pending_carryover, y.pending_carryover);
        }
    }

    /// A partial quorum under latency dispersion actually carries
    /// stragglers: the staleness stats are populated and stale proposals
    /// re-enter later quorums.
    #[test]
    fn partial_quorum_carries_stragglers_and_reports_staleness() {
        let network = NetworkModel {
            latency: LatencyModel::Uniform {
                min_nanos: 1_000,
                max_nanos: 1_000_000,
            },
            nanos_per_byte: 0.0,
        };
        let mut engine = async_engine(9, 2, 5, 0.3, 40, 7, 3, network, Box::new(NoAttack::new()));
        let (params, history) = engine.run(Vector::filled(5, 1.0)).unwrap();
        assert!(params.is_finite());
        assert!((history.mean_quorum_size() - 7.0).abs() < 1e-12);
        // With 9 proposals racing for 7 slots every round, carry-over is the
        // steady state and stale proposals make it into later quorums.
        assert!(history.mean_stale_in_quorum() > 0.0);
        let carried: usize = history
            .rounds
            .iter()
            .filter_map(|r| r.pending_carryover)
            .sum();
        assert!(carried > 0);
        // The network charge is the quorum cutoff, not the slowest worker:
        // strictly positive under this latency model.
        assert!(history.mean_network_nanos() > 0.0);
    }

    /// The straggling adversary misses every quorum that can close without
    /// it: with `max_staleness = 0` its proposals are dropped every round
    /// and the aggregation never sees a Byzantine vector.
    #[test]
    fn straggling_adversary_is_dropped_by_a_tight_staleness_bound() {
        let mut engine = async_engine(
            9,
            2,
            5,
            0.3,
            30,
            7,
            0,
            zero_latency(),
            Box::new(krum_attacks::Straggler::new(4.0).unwrap()),
        );
        let (params, history) = engine.run(Vector::filled(5, 1.0)).unwrap();
        assert!(params.is_finite());
        // The 2 Byzantine proposals straggle past the bound every round.
        assert_eq!(history.total_dropped_stale(), 2 * 30);
        let stats = history.selection_stats();
        assert_eq!(stats.byzantine_selected(), 0);
        // With staleness allowed, the poisoned stragglers do land in later
        // quorums (as stale carry-overs competing for slots).
        let mut engine = async_engine(
            9,
            2,
            5,
            0.3,
            30,
            7,
            2,
            zero_latency(),
            Box::new(krum_attacks::Straggler::new(4.0).unwrap()),
        );
        let (_, lax_history) = engine.run(Vector::filled(5, 1.0)).unwrap();
        assert!(lax_history.mean_stale_in_quorum() > 0.0);
        assert!(lax_history.total_dropped_stale() < 2 * 30);
    }

    /// Fixed far-away Byzantine proposals: every round (and hence every
    /// carried straggler) is the same vector, so `k` Byzantine entries in a
    /// quorum form a 0-diameter cluster of size `k`.
    struct ConstantByz;

    impl krum_attacks::Attack for ConstantByz {
        fn forge(
            &self,
            ctx: &krum_attacks::AttackContext<'_>,
            _rng: &mut dyn rand::RngCore,
        ) -> Result<Vec<Vector>, krum_attacks::AttackError> {
            Ok(vec![Vector::filled(ctx.dim(), -50.0); ctx.byzantine_count])
        }

        fn name(&self) -> String {
            "constant-byz".into()
        }
    }

    /// Regression: a quorum admits at most one proposal per worker (the
    /// paper's model — one vector per worker per aggregation), so the
    /// Byzantine share of a quorum is structurally capped at `f` and Krum's
    /// re-validated `2f + 2 < quorum` precondition actually holds. The
    /// per-worker uniqueness is enforced by a `debug_assert` inside
    /// `step_async` (active in this test build); behaviourally, `ConstantByz`
    /// forms a 0-diameter Byzantine cluster across rounds, so any quorum
    /// that ever held 2f = 4 of its vectors would hand Krum(7, 2) a 0-score
    /// cluster (neighbours = 3) that wins the argmin outright.
    #[test]
    fn quorum_never_aggregates_more_than_f_byzantine_proposals() {
        let network = NetworkModel {
            latency: LatencyModel::Pareto {
                min_nanos: 10_000,
                alpha: 1.05,
            },
            nanos_per_byte: 0.0,
        };
        let rounds = 500;
        let mut engine = async_engine(9, 2, 5, 0.3, rounds, 7, 3, network, Box::new(ConstantByz));
        let (params, history) = engine.run(Vector::filled(5, 1.0)).unwrap();
        assert!(params.is_finite());
        let stats = history.selection_stats();
        assert_eq!(stats.total(), rounds);
        assert_eq!(
            stats.byzantine_selected(),
            0,
            "an over-represented Byzantine cluster must never win the quorum"
        );
    }

    /// An adversary that changes timing between rounds (the trait allows
    /// it): straggle one round, respond-last the next, so its carried
    /// stragglers are already in the quorum a respond-last round wants to
    /// fill.
    struct FlipFlopTiming {
        calls: std::sync::atomic::AtomicUsize,
    }

    impl krum_attacks::Attack for FlipFlopTiming {
        fn forge(
            &self,
            ctx: &krum_attacks::AttackContext<'_>,
            _rng: &mut dyn rand::RngCore,
        ) -> Result<Vec<Vector>, krum_attacks::AttackError> {
            let mean = ctx
                .honest_mean()
                .unwrap_or_else(|| Vector::zeros(ctx.dim()));
            Ok(vec![mean.scaled(-2.0); ctx.byzantine_count])
        }

        fn name(&self) -> String {
            "flip-flop".into()
        }

        fn timing(&self) -> krum_attacks::AttackTiming {
            let call = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if call.is_multiple_of(2) {
                krum_attacks::AttackTiming::Straggle
            } else {
                krum_attacks::AttackTiming::LastToRespond
            }
        }
    }

    /// Regression: when a respond-last round wants to fill the quorum but a
    /// carried Byzantine straggler from the previous round already holds
    /// that worker's slot, the fill must skip it (per-worker cap — enforced
    /// by the engine's debug_assert, active in this build) and close the
    /// quorum on the next legitimate arrivals instead.
    #[test]
    fn respond_last_fill_respects_the_per_worker_cap_for_carried_stragglers() {
        let mut engine = async_engine(
            9,
            2,
            5,
            0.3,
            40,
            7,
            2,
            zero_latency(),
            Box::new(FlipFlopTiming {
                calls: std::sync::atomic::AtomicUsize::new(0),
            }),
        );
        let (params, history) = engine.run(Vector::filled(5, 1.0)).unwrap();
        assert!(params.is_finite());
        assert_eq!(history.len(), 40);
        // Straggle rounds push Byzantine proposals into the carry pool; the
        // respond-last rounds aggregate them as stale entries.
        assert!(history.mean_stale_in_quorum() > 0.0);
        assert!((history.mean_quorum_size() - 7.0).abs() < 1e-12);
    }

    /// The last-to-respond adversary always lands in the quorum, yet Krum
    /// (validated against the quorum size) keeps selecting honest proposals
    /// and the trajectory still converges.
    #[test]
    fn last_to_respond_adversary_is_survived_by_quorum_krum() {
        let mut engine = async_engine(
            11,
            2,
            6,
            0.2,
            120,
            9,
            1,
            zero_latency(),
            Box::new(krum_attacks::LastToRespond::new(3.0).unwrap()),
        );
        let (params, history) = engine.run(Vector::filled(6, 2.0)).unwrap();
        assert!(params.is_finite());
        assert!(params.norm() < 0.7, "‖x‖ = {}", params.norm());
        // The adversary is in every quorum but loses the selection far more
        // often than it wins it.
        let stats = history.selection_stats();
        assert!(stats.total() > 0);
        assert!(stats.byzantine_rate() < 0.2);
    }

    /// Satellite: the engine validates the quorum bounds up front.
    #[test]
    fn async_quorum_bounds_are_validated() {
        let make = |quorum: usize| {
            RoundEngine::new(
                ClusterSpec::new(9, 2).unwrap(),
                Box::new(Average::new()),
                Box::new(NoAttack::new()),
                estimators(7, 4, 0.1),
                None,
                config(5, 4),
                ExecutionStrategy::AsyncQuorum {
                    quorum,
                    max_staleness: 1,
                    network: zero_latency(),
                    reuse_stale: false,
                },
            )
        };
        assert!(make(6).is_err(), "quorum < n - f must be rejected");
        assert!(make(10).is_err(), "quorum > n must be rejected");
        assert!(make(7).is_ok());
        assert!(make(9).is_ok());
        // Pareto latency validation is enforced at engine construction too.
        let bad_network = RoundEngine::new(
            ClusterSpec::new(9, 2).unwrap(),
            Box::new(Average::new()),
            Box::new(NoAttack::new()),
            estimators(7, 4, 0.1),
            None,
            config(5, 4),
            ExecutionStrategy::AsyncQuorum {
                quorum: 8,
                max_staleness: 1,
                reuse_stale: false,
                network: NetworkModel {
                    latency: LatencyModel::Pareto {
                        min_nanos: 10,
                        alpha: 0.0,
                    },
                    nanos_per_byte: 0.0,
                },
            },
        );
        assert!(bad_network.is_err());
    }

    /// Satellite regression: a fully poisoned round (NaN aggregate) is a
    /// structured `PoisonedRound` error from the engine — never a silent
    /// step onto garbage parameters.
    #[test]
    fn poisoned_round_is_a_structured_engine_error() {
        let dim = 4;
        let mut trainer = SyncTrainer::new(
            ClusterSpec::new(6, 2).unwrap(),
            Box::new(Average::new()),
            Box::new(krum_attacks::NonFinite::new()),
            estimators(4, dim, 0.1),
            config(10, dim),
        )
        .unwrap();
        let err = trainer.run(Vector::filled(dim, 1.0)).unwrap_err();
        assert!(
            matches!(err, TrainError::PoisonedRound { round: 0, .. }),
            "got: {err}"
        );
        assert!(err.to_string().contains("poisoned round"));
        // Krum filters the same poison and completes finitely.
        let mut trainer = SyncTrainer::new(
            ClusterSpec::new(7, 2).unwrap(),
            Box::new(Krum::new(7, 2).unwrap()),
            Box::new(krum_attacks::NonFinite::new()),
            estimators(5, dim, 0.1),
            config(10, dim),
        )
        .unwrap();
        let (params, history) = trainer.run(Vector::filled(dim, 1.0)).unwrap();
        assert!(params.is_finite());
        assert!(!history.summary().diverged);
    }

    /// Satellite: when `rounds % eval_every != 0`, the final round still
    /// evaluates, so the last recorded loss describes the returned model.
    #[test]
    fn final_round_always_evaluates_even_off_cadence() {
        let dim = 4;
        let mut engine = RoundEngine::new(
            ClusterSpec::new(5, 1).unwrap(),
            Box::new(Krum::new(5, 1).unwrap()),
            Box::new(NoAttack::new()),
            estimators(4, dim, 0.1),
            None,
            TrainingConfig {
                rounds: 7,
                eval_every: 2,
                ..config(7, dim)
            },
            ExecutionStrategy::Sequential,
        )
        .unwrap();
        let (_, history) = engine.run(Vector::filled(dim, 1.0)).unwrap();
        assert_eq!(history.len(), 7);
        // Cadence rounds 0, 2, 4, 6 — and 6 is also the final round.
        let evaluated: Vec<usize> = history
            .rounds
            .iter()
            .filter(|r| r.loss.is_some())
            .map(|r| r.round)
            .collect();
        assert_eq!(evaluated, vec![0, 2, 4, 6]);
        assert!(
            history.last().unwrap().loss.is_some(),
            "the last round must always evaluate"
        );
    }

    #[test]
    fn latency_models_sample_within_bounds() {
        let mut rng = crate::engine::stream_rng(3, 0);
        let constant = LatencyModel::Constant { nanos: 42 };
        assert_eq!(constant.sample(&mut rng), 42);
        let uniform = LatencyModel::Uniform {
            min_nanos: 10,
            max_nanos: 20,
        };
        for _ in 0..100 {
            let draw = uniform.sample(&mut rng);
            assert!((10..=20).contains(&draw));
        }
        // Degenerate range falls back to the minimum.
        let tight = LatencyModel::Uniform {
            min_nanos: 7,
            max_nanos: 7,
        };
        assert_eq!(tight.sample(&mut rng), 7);
    }

    #[test]
    fn network_round_cost_reflects_payload() {
        let mut rng = crate::engine::stream_rng(4, 0);
        let network = NetworkModel {
            latency: LatencyModel::Constant { nanos: 100 },
            nanos_per_byte: 1.0,
        };
        // 2 latencies + 2 × (8·d bytes × 1 ns/byte).
        assert_eq!(network.round_nanos(3, 10, &mut rng), 200 + 2 * 80);
    }
}
