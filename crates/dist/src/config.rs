//! Cluster shape, learning-rate schedules and run configuration.

use krum_tensor::Vector;
use serde::{Deserialize, Serialize};

use crate::error::TrainError;

/// Shape of the worker cluster: `n` workers, of which `f` are Byzantine.
///
/// Workers `0 .. n − f` are the correct (honest) ones; workers
/// `n − f .. n` are controlled by the adversary. The trainers use this
/// ordering when attributing selections to honest or Byzantine workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    n: usize,
    f: usize,
}

impl ClusterSpec {
    /// Creates a cluster of `n` workers with `f` Byzantine among them.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] unless `1 ≤ n` and `f < n`.
    pub fn new(n: usize, f: usize) -> Result<Self, TrainError> {
        if n == 0 {
            return Err(TrainError::config("cluster needs at least one worker"));
        }
        if f >= n {
            return Err(TrainError::config(format!(
                "cluster needs f < n, got n = {n}, f = {f}"
            )));
        }
        Ok(Self { n, f })
    }

    /// Total number of workers `n`.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// Number of Byzantine workers `f`.
    pub fn byzantine(&self) -> usize {
        self.f
    }

    /// Number of honest workers `n − f`.
    pub fn honest(&self) -> usize {
        self.n - self.f
    }
}

/// Learning-rate schedule `γ_t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LearningRateSchedule {
    /// Fixed rate `γ_t = gamma`.
    Constant {
        /// The constant learning rate.
        gamma: f64,
    },
    /// Inverse-time decay `γ_t = gamma / (1 + t/tau)` — the `1/t`-style
    /// schedule the paper's convergence conditions (`Σ γ_t = ∞`,
    /// `Σ γ_t² < ∞`) call for.
    InverseTime {
        /// Initial learning rate.
        gamma: f64,
        /// Decay time constant (in rounds).
        tau: f64,
    },
}

impl LearningRateSchedule {
    /// The learning rate at round `t`.
    pub fn rate(&self, round: usize) -> f64 {
        match *self {
            Self::Constant { gamma } => gamma,
            Self::InverseTime { gamma, tau } => gamma / (1.0 + round as f64 / tau),
        }
    }

    /// Validates the schedule parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] for non-positive or non-finite
    /// parameters.
    pub fn validate(&self) -> Result<(), TrainError> {
        let ok = match *self {
            Self::Constant { gamma } => gamma > 0.0 && gamma.is_finite(),
            Self::InverseTime { gamma, tau } => {
                gamma > 0.0 && gamma.is_finite() && tau > 0.0 && tau.is_finite()
            }
        };
        if ok {
            Ok(())
        } else {
            Err(TrainError::config(
                "learning-rate parameters must be positive and finite",
            ))
        }
    }
}

impl std::fmt::Display for LearningRateSchedule {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::Constant { gamma } => write!(out, "constant(gamma={gamma})"),
            Self::InverseTime { gamma, tau } => {
                write!(out, "inverse-time(gamma={gamma}, tau={tau})")
            }
        }
    }
}

/// Configuration of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of synchronous rounds to run.
    pub rounds: usize,
    /// Learning-rate schedule.
    pub schedule: LearningRateSchedule,
    /// Master seed; every worker RNG, the attack RNG and the network RNG are
    /// derived from it deterministically, so runs are reproducible and the
    /// sequential and threaded engines follow identical trajectories.
    pub seed: u64,
    /// Evaluate loss/accuracy every this many rounds (the final round is
    /// always evaluated). Must be at least 1; set `eval_every = rounds` to
    /// evaluate only at the edges of the run.
    pub eval_every: usize,
    /// Known optimum `x*`, recorded as `‖x_t − x*‖` per round when set.
    pub known_optimum: Option<Vector>,
}

impl TrainingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] when `rounds` is zero, when
    /// `eval_every` is zero (a degenerate cadence that used to silently
    /// disable periodic evaluation — use `eval_every = rounds` to evaluate
    /// only at the edges of the run), when the known optimum is non-finite,
    /// or when the schedule is invalid.
    pub fn validate(&self) -> Result<(), TrainError> {
        if self.rounds == 0 {
            return Err(TrainError::config("rounds must be >= 1"));
        }
        if self.eval_every == 0 {
            return Err(TrainError::config(
                "eval_every must be >= 1 (use eval_every = rounds to evaluate only the final round)",
            ));
        }
        if let Some(optimum) = &self.known_optimum {
            if optimum.iter().any(|x| !x.is_finite()) {
                return Err(TrainError::config(
                    "known optimum must have finite coordinates",
                ));
            }
        }
        self.schedule.validate()
    }

    /// Whether round `round` (of `self.rounds`) is an evaluation round.
    /// `eval_every` is validated to be non-zero before a run starts.
    pub(crate) fn eval_due(&self, round: usize) -> bool {
        round + 1 == self.rounds || (self.eval_every != 0 && round.is_multiple_of(self.eval_every))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_spec_validation() {
        assert!(ClusterSpec::new(0, 0).is_err());
        assert!(ClusterSpec::new(4, 4).is_err());
        assert!(ClusterSpec::new(4, 5).is_err());
        let c = ClusterSpec::new(15, 4).unwrap();
        assert_eq!(c.workers(), 15);
        assert_eq!(c.byzantine(), 4);
        assert_eq!(c.honest(), 11);
    }

    #[test]
    fn schedules_produce_expected_rates() {
        let c = LearningRateSchedule::Constant { gamma: 0.1 };
        assert_eq!(c.rate(0), 0.1);
        assert_eq!(c.rate(100), 0.1);
        let i = LearningRateSchedule::InverseTime {
            gamma: 0.2,
            tau: 50.0,
        };
        assert_eq!(i.rate(0), 0.2);
        assert!((i.rate(50) - 0.1).abs() < 1e-12);
        assert!(i.rate(200) < i.rate(100));
    }

    #[test]
    fn schedule_validation() {
        assert!(LearningRateSchedule::Constant { gamma: 0.0 }
            .validate()
            .is_err());
        assert!(LearningRateSchedule::Constant { gamma: f64::NAN }
            .validate()
            .is_err());
        assert!(LearningRateSchedule::InverseTime {
            gamma: 0.1,
            tau: 0.0
        }
        .validate()
        .is_err());
        assert!(LearningRateSchedule::Constant { gamma: 0.5 }
            .validate()
            .is_ok());
    }

    #[test]
    fn config_validation_and_eval_cadence() {
        let config = TrainingConfig {
            rounds: 10,
            schedule: LearningRateSchedule::Constant { gamma: 0.1 },
            seed: 1,
            eval_every: 4,
            known_optimum: None,
        };
        config.validate().unwrap();
        assert!(config.eval_due(0));
        assert!(!config.eval_due(1));
        assert!(config.eval_due(4));
        assert!(config.eval_due(8));
        assert!(config.eval_due(9), "final round always evaluates");
        let bad = TrainingConfig {
            rounds: 0,
            ..config.clone()
        };
        assert!(bad.validate().is_err());
        // A zero evaluation cadence is a configuration bug, not a "never
        // evaluate" request — it must be rejected with a descriptive error.
        let degenerate = TrainingConfig {
            eval_every: 0,
            ..config.clone()
        };
        let err = degenerate.validate().unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)));
        assert!(err.to_string().contains("eval_every"));
        let non_finite = TrainingConfig {
            known_optimum: Some(Vector::filled(3, f64::NAN)),
            ..config.clone()
        };
        assert!(non_finite.validate().is_err());
        // eval_every = rounds evaluates only at the edges of the run.
        let lazy = TrainingConfig {
            eval_every: 10,
            ..config
        };
        lazy.validate().unwrap();
        assert!(lazy.eval_due(0));
        assert!(!lazy.eval_due(5));
        assert!(lazy.eval_due(9));
    }

    #[test]
    fn schedules_display_readably() {
        assert_eq!(
            LearningRateSchedule::Constant { gamma: 0.1 }.to_string(),
            "constant(gamma=0.1)"
        );
        assert_eq!(
            LearningRateSchedule::InverseTime {
                gamma: 0.2,
                tau: 50.0
            }
            .to_string(),
            "inverse-time(gamma=0.2, tau=50)"
        );
    }

    #[test]
    fn serde_round_trip() {
        let config = TrainingConfig {
            rounds: 5,
            schedule: LearningRateSchedule::InverseTime {
                gamma: 0.3,
                tau: 20.0,
            },
            seed: 7,
            eval_every: 2,
            known_optimum: Some(Vector::zeros(3)),
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: TrainingConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
