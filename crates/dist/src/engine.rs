//! The shared round engine — one implementation of the paper's synchronous
//! protocol behind every trainer.
//!
//! Each round is one pass through the pipeline
//!
//! ```text
//! broadcast → propose → attack → aggregate → step → record
//! ```
//!
//! * **broadcast** — the server publishes `x_t` (in-process: the parameter
//!   borrow handed to the workers);
//! * **propose** — every honest worker estimates a gradient at `x_t`;
//! * **attack** — the omniscient adversary observes the round and forges the
//!   `f` Byzantine proposals;
//! * **aggregate** — the server applies the choice function `F` through a
//!   reused [`AggregationContext`] (zero steady-state heap allocations on
//!   the aggregation path);
//! * **step** — `x_{t+1} = x_t − γ_t · F(V_1, …, V_n)`;
//! * **record** — per-phase wall-clock timings and convergence metrics go
//!   into a [`RoundRecord`].
//!
//! The pipeline is parameterized by an [`ExecutionStrategy`]: sequential
//! (the reference engine) or threaded (honest gradients fan out over the
//! `rayon` pool and a simulated [`NetworkModel`] charges communication time
//! to the metrics). Because every random stream derives from the master
//! seed, **both strategies follow bit-identical parameter trajectories** —
//! the strategy changes only wall-clock columns. New scenarios (stragglers,
//! partial participation, async staleness) should be added here as strategy
//! variants rather than as new trainer copies.

use std::time::Instant;

use krum_attacks::{Attack, AttackContext};
use krum_core::{AggregationContext, Aggregator, ExecutionPolicy};
use krum_metrics::{RoundRecord, TrainingHistory};
use krum_models::GradientEstimator;
use krum_tensor::Vector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::config::{ClusterSpec, TrainingConfig};
use crate::error::TrainError;
use crate::network::NetworkModel;

/// Callback measuring held-out accuracy of a parameter vector.
pub(crate) type AccuracyProbe = Box<dyn Fn(&Vector) -> Option<f64> + Send + Sync>;

/// Derives an independent RNG stream from the master seed.
pub(crate) fn stream_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// RNG stream index reserved for the adversary.
pub(crate) const ATTACK_STREAM: u64 = u64::MAX - 1;
/// RNG stream index reserved for the simulated network.
pub(crate) const NETWORK_STREAM: u64 = u64::MAX - 2;

/// How the round pipeline executes one round.
///
/// The strategy affects wall-clock behaviour only; the parameter trajectory
/// is a deterministic function of [`TrainingConfig::seed`] under every
/// strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionStrategy {
    /// Honest workers run one after the other on the server thread — the
    /// reference engine of [`SyncTrainer`](crate::SyncTrainer).
    Sequential,
    /// Honest worker gradients are computed in parallel on the `rayon` pool
    /// and the simulated [`NetworkModel`] charges per-round communication
    /// time to the metrics — the engine of
    /// [`ThreadedTrainer`](crate::ThreadedTrainer).
    Threaded {
        /// The simulated network charged to each round's timings.
        network: NetworkModel,
    },
}

impl ExecutionStrategy {
    /// Whether honest-gradient computation fans out over the thread pool.
    fn parallel_workers(&self) -> bool {
        matches!(self, Self::Threaded { .. })
    }

    /// The simulated network, when the strategy carries one.
    pub(crate) fn network(&self) -> Option<NetworkModel> {
        match *self {
            Self::Sequential => None,
            Self::Threaded { network } => Some(network),
        }
    }
}

impl std::fmt::Display for ExecutionStrategy {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sequential => out.write_str("sequential"),
            Self::Threaded { network } => write!(out, "threaded({network})"),
        }
    }
}

/// The shared synchronous-round engine behind
/// [`SyncTrainer`](crate::SyncTrainer) and
/// [`ThreadedTrainer`](crate::ThreadedTrainer).
///
/// Holds the cluster state (aggregator, attack, worker estimators, RNG
/// streams) and executes one round at a time through the
/// broadcast → propose → attack → aggregate → step → record pipeline. Built
/// perf-first: the proposal buffer and the [`AggregationContext`] are
/// allocated once and reused across rounds, and worker RNGs are independent
/// streams derived from the master seed so every execution strategy follows
/// the same trajectory.
pub struct RoundEngine {
    cluster: ClusterSpec,
    aggregator: Box<dyn Aggregator>,
    aggregator_name: String,
    attack: Box<dyn Attack>,
    attack_name: String,
    /// One estimator per honest worker.
    estimators: Vec<Box<dyn GradientEstimator>>,
    /// Dedicated metrics/adversary probe; when absent, `estimators[0]`
    /// serves the probe queries.
    probe: Option<Box<dyn GradientEstimator>>,
    config: TrainingConfig,
    accuracy_probe: Option<AccuracyProbe>,
    strategy: ExecutionStrategy,
    dim: usize,
    /// One independent RNG per honest worker.
    worker_rngs: Vec<ChaCha8Rng>,
    attack_rng: ChaCha8Rng,
    network_rng: ChaCha8Rng,
    /// Per-round proposal scratch (`n` slots), reused across rounds.
    proposals: Vec<Vector>,
    /// Reusable aggregation workspace — the server's hot path performs zero
    /// steady-state heap allocations through it.
    ctx: AggregationContext,
}

impl RoundEngine {
    /// Builds an engine, validating the configuration.
    ///
    /// `estimators` supplies exactly one gradient estimator per honest
    /// worker; `probe`, when given, serves the metrics/adversary queries
    /// (loss, true gradient) so the worker estimators stay exclusive to the
    /// propose phase (otherwise `estimators[0]` is shared).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] when the configuration is
    /// invalid or the estimator count/dimensions are inconsistent.
    pub fn new(
        cluster: ClusterSpec,
        aggregator: Box<dyn Aggregator>,
        attack: Box<dyn Attack>,
        estimators: Vec<Box<dyn GradientEstimator>>,
        probe: Option<Box<dyn GradientEstimator>>,
        config: TrainingConfig,
        strategy: ExecutionStrategy,
    ) -> Result<Self, TrainError> {
        config.validate()?;
        if estimators.len() != cluster.honest() {
            return Err(TrainError::config(format!(
                "expected one estimator per honest worker ({}), got {}",
                cluster.honest(),
                estimators.len()
            )));
        }
        let dim = estimators
            .first()
            .map(|e| e.dim())
            .ok_or_else(|| TrainError::config("at least one honest worker is required"))?;
        if let Some(worker) = estimators.iter().position(|e| e.dim() != dim) {
            return Err(TrainError::config(format!(
                "estimator {worker} has dimension {}, expected {dim}",
                estimators[worker].dim()
            )));
        }
        if let Some(p) = &probe {
            if p.dim() != dim {
                return Err(TrainError::config(format!(
                    "probe estimator has dimension {}, expected {dim}",
                    p.dim()
                )));
            }
        }
        if let Some(optimum) = &config.known_optimum {
            if optimum.dim() != dim {
                return Err(TrainError::config(format!(
                    "known optimum has dimension {}, expected {dim}",
                    optimum.dim()
                )));
            }
        }
        let worker_rngs = (0..cluster.honest())
            .map(|w| stream_rng(config.seed, w as u64))
            .collect();
        let proposals = vec![Vector::zeros(dim); cluster.workers()];
        Ok(Self {
            cluster,
            aggregator_name: aggregator.name(),
            aggregator,
            attack_name: attack.name(),
            attack,
            estimators,
            probe,
            attack_rng: stream_rng(config.seed, ATTACK_STREAM),
            network_rng: stream_rng(config.seed, NETWORK_STREAM),
            config,
            accuracy_probe: None,
            strategy,
            dim,
            worker_rngs,
            proposals,
            ctx: AggregationContext::new(),
        })
    }

    /// Attaches a held-out accuracy probe, called on evaluation rounds with
    /// the current parameters.
    pub fn set_accuracy_probe(&mut self, probe: AccuracyProbe) {
        self.accuracy_probe = Some(probe);
    }

    /// Overrides the aggregation workspace's execution policy (e.g. force
    /// [`ExecutionPolicy::Sequential`] for allocation-free profiling).
    pub fn set_aggregation_policy(&mut self, policy: ExecutionPolicy) {
        self.ctx.set_policy(policy);
    }

    /// The cluster this engine drives.
    pub fn cluster(&self) -> ClusterSpec {
        self.cluster
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The execution strategy of this engine.
    pub fn strategy(&self) -> ExecutionStrategy {
        self.strategy
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    fn probe_estimator(&self) -> &dyn GradientEstimator {
        self.probe
            .as_deref()
            .unwrap_or_else(|| &*self.estimators[0])
    }

    /// Runs the configured number of rounds from `start`, returning the
    /// final parameters and the per-round history.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when a worker, the attack or the aggregator
    /// fails mid-run.
    pub fn run(&mut self, start: Vector) -> Result<(Vector, TrainingHistory), TrainError> {
        let mut params = start;
        let mut history = self.new_history();
        for round in 0..self.config.rounds {
            let record = self.step(&mut params, round)?;
            history.push(record);
        }
        Ok((params, history))
    }

    /// Runs a single round from the given parameters (without mutating
    /// them), returning the updated parameters and the round record.
    ///
    /// # Errors
    ///
    /// Same as [`RoundEngine::run`].
    pub fn run_round(
        &mut self,
        params: &Vector,
        round: usize,
    ) -> Result<(Vector, RoundRecord), TrainError> {
        let mut next = params.clone();
        let record = self.step(&mut next, round)?;
        Ok((next, record))
    }

    /// Executes one pass of the round pipeline, applying the update to
    /// `params` in place. Returns the round's metrics record with per-phase
    /// timings.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when a worker, the attack or the aggregator
    /// fails.
    pub fn step(&mut self, params: &mut Vector, round: usize) -> Result<RoundRecord, TrainError> {
        let round_start = Instant::now();
        let honest = self.cluster.honest();
        let byzantine = self.cluster.byzantine();

        // Phase 1+2: broadcast + propose. The server publishes `x_t` (the
        // shared borrow below) and every honest worker estimates a gradient
        // at it; the scratch buffer is reused, only the estimator outputs
        // are fresh.
        let propose_start = Instant::now();
        if self.strategy.parallel_workers() && honest > 1 {
            let params_ref: &Vector = params;
            let outputs: Result<Vec<Vector>, _> = self.estimators[..honest]
                .iter()
                .zip(self.worker_rngs.iter_mut())
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(estimator, rng)| estimator.estimate(params_ref, rng))
                .collect();
            for (slot, proposal) in self.proposals.iter_mut().zip(outputs?) {
                *slot = proposal;
            }
        } else {
            for w in 0..honest {
                self.proposals[w] =
                    self.estimators[w].estimate(params, &mut self.worker_rngs[w])?;
            }
        }
        let propose_nanos = propose_start.elapsed().as_nanos();

        // Phase 3: attack. The omniscient adversary observes everything,
        // including the true gradient when the workload exposes one.
        let attack_start = Instant::now();
        let true_gradient = self.probe_estimator().true_gradient(params);
        let forged = {
            let ctx = AttackContext {
                honest_proposals: &self.proposals[..honest],
                current_params: params,
                true_gradient: true_gradient.as_ref(),
                byzantine_count: byzantine,
                total_workers: self.cluster.workers(),
                round,
                aggregator_name: &self.aggregator_name,
            };
            self.attack.forge(&ctx, &mut self.attack_rng)?
        };
        if forged.len() != byzantine {
            return Err(TrainError::AttackContract {
                attack: self.attack_name.clone(),
                message: format!("returned {} proposals, expected {byzantine}", forged.len()),
            });
        }
        for (slot, proposal) in self.proposals[honest..].iter_mut().zip(forged) {
            if proposal.dim() != self.dim {
                return Err(TrainError::AttackContract {
                    attack: self.attack_name.clone(),
                    message: format!(
                        "returned a proposal of dimension {}, expected {}",
                        proposal.dim(),
                        self.dim
                    ),
                });
            }
            *slot = proposal;
        }
        let attack_nanos = attack_start.elapsed().as_nanos();

        // Phase 4: aggregate — the paper's O(n²·d) server-side hot path,
        // through the reused workspace (no steady-state allocations).
        let aggregation_start = Instant::now();
        self.aggregator
            .aggregate_in(&mut self.ctx, &self.proposals)?;
        let aggregation_nanos = aggregation_start.elapsed().as_nanos();
        let aggregation = self.ctx.output();

        // Phase 5: step — apply the SGD update.
        let learning_rate = self.config.schedule.rate(round);
        params.axpy(-learning_rate, &aggregation.value);

        // Phase 6: record.
        let mut record = RoundRecord::new(round, aggregation.value.norm(), learning_rate);
        record.propose_nanos = propose_nanos;
        record.attack_nanos = attack_nanos;
        record.aggregation_nanos = aggregation_nanos;
        record.selected_worker = aggregation.selected_index();
        record.selected_byzantine = record.selected_worker.map(|w| w >= honest);
        if let Some(gradient) = &true_gradient {
            record.true_gradient_norm = Some(gradient.norm());
            record.alignment = aggregation.value.cosine_similarity(gradient);
        }
        if let Some(optimum) = &self.config.known_optimum {
            record.distance_to_optimum = Some(params.distance(optimum));
        }
        if self.config.eval_due(round) {
            record.loss = self.probe_estimator().loss(params);
            if let Some(probe) = &self.accuracy_probe {
                record.accuracy = probe(params);
            }
        }
        record.round_nanos = round_start.elapsed().as_nanos();

        // The simulated network (threaded strategy) charges the synchronous
        // barrier's communication time on top of the measured wall clock.
        if let ExecutionStrategy::Threaded { network } = self.strategy {
            let simulated =
                network.round_nanos(self.cluster.workers(), self.dim, &mut self.network_rng);
            record.network_nanos = simulated;
            record.round_nanos += simulated;
        }
        Ok(record)
    }

    /// Metadata-filled empty history for a run of this engine.
    pub fn new_history(&self) -> TrainingHistory {
        TrainingHistory::new(
            format!(
                "{} vs {} (n={}, f={}, d={})",
                self.aggregator_name,
                self.attack_name,
                self.cluster.workers(),
                self.cluster.byzantine(),
                self.dim
            ),
            self.aggregator_name.clone(),
            self.attack_name.clone(),
            self.cluster.workers(),
            self.cluster.byzantine(),
        )
    }
}
