//! The shared round engine — one implementation of the paper's protocol
//! behind every trainer.
//!
//! Each round is one pass through the pipeline
//!
//! ```text
//! broadcast → propose → attack → aggregate → step → record
//! ```
//!
//! * **broadcast** — the server publishes `x_t` (in-process: the parameter
//!   borrow handed to the workers);
//! * **propose** — every honest worker estimates a gradient at `x_t`;
//! * **attack** — the omniscient adversary observes the round and forges the
//!   `f` Byzantine proposals;
//! * **aggregate** — the server applies the choice function `F` through a
//!   reused [`AggregationContext`] (zero steady-state heap allocations on
//!   the aggregation path for the barrier strategies);
//! * **step** — `x_{t+1} = x_t − γ_t · F(…)`;
//! * **record** — per-phase wall-clock timings and convergence metrics go
//!   into a [`RoundRecord`].
//!
//! The pipeline is parameterized by an [`ExecutionStrategy`]:
//!
//! * [`ExecutionStrategy::Sequential`] — the reference barrier engine;
//! * [`ExecutionStrategy::Threaded`] — honest gradients fan out over the
//!   `rayon` pool and a simulated [`NetworkModel`] charges the synchronous
//!   barrier (slowest worker) to the metrics;
//! * [`ExecutionStrategy::AsyncQuorum`] — the asynchronous-leaning server of
//!   the paper's Byzantine model: each round aggregates the fastest
//!   `quorum ≥ n − f` arrivals under the simulated network, carries the
//!   stragglers into later rounds up to a staleness bound, and honours the
//!   adversary's [`AttackTiming`] (straggle, respond-last). The aggregation
//!   rule must be built for `quorum` proposals — Krum's `2f + 2 < n`
//!   precondition is re-validated against the quorum size, not `n`.
//!
//! Because every random stream derives from the master seed, every strategy
//! is **bit-reproducible**, and the two barrier strategies follow identical
//! parameter trajectories. `AsyncQuorum` with `quorum = n` selects every
//! proposal every round, so it reproduces the Sequential trajectory exactly
//! (for any latency model — the network then only changes timing columns).

use std::sync::Arc;
use std::time::Instant;

use krum_attacks::{Attack, AttackContext, AttackTiming, RoundFeedback};
use krum_compress::GradientCodec;
use krum_core::{Aggregator, ExecutionPolicy};
use krum_metrics::{RoundRecord, TrainingHistory};
use krum_models::GradientEstimator;
use krum_tensor::Vector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::config::{ClusterSpec, TrainingConfig};
use crate::drift::DriftTracker;
use crate::error::TrainError;
use crate::network::NetworkModel;
use crate::round_core::{AccuracyProbe, RoundCore};

/// Derives an independent RNG stream from the master seed.
///
/// Every source of randomness in a run — each honest worker, the adversary,
/// the simulated network — is one stream of this family, so in-process and
/// networked executions of the same scenario can consume identical draws:
/// worker `w` uses `stream_rng(seed, w)`, the adversary uses
/// [`ATTACK_STREAM`]. Public so `krum-server`'s remote workers reproduce the
/// in-process trajectories exactly.
pub fn stream_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// RNG stream index reserved for the adversary (see [`stream_rng`]).
pub const ATTACK_STREAM: u64 = u64::MAX - 1;
/// RNG stream index reserved for the simulated network.
pub(crate) const NETWORK_STREAM: u64 = u64::MAX - 2;

/// How the round pipeline executes one round.
///
/// The barrier strategies (`Sequential`, `Threaded`) affect wall-clock
/// behaviour only and share one parameter trajectory per seed.
/// `AsyncQuorum` changes *which proposals each round aggregates* — its
/// trajectory is still a deterministic function of
/// [`TrainingConfig::seed`], and coincides with the barrier trajectory when
/// `quorum = n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionStrategy {
    /// Honest workers run one after the other on the server thread — the
    /// reference engine of [`SyncTrainer`](crate::SyncTrainer).
    Sequential,
    /// Honest worker gradients are computed in parallel on the `rayon` pool
    /// and the simulated [`NetworkModel`] charges per-round communication
    /// time to the metrics — the engine of
    /// [`ThreadedTrainer`](crate::ThreadedTrainer).
    Threaded {
        /// The simulated network charged to each round's timings.
        network: NetworkModel,
    },
    /// Partial-quorum rounds: the server aggregates the fastest `quorum`
    /// proposals under the simulated network and carries the stragglers
    /// into later rounds with a staleness bound. Timing-aware adversaries
    /// ([`AttackTiming`]) straggle deliberately or wait to observe the
    /// closing quorum before responding.
    ///
    /// Arrived-but-unaggregated proposals are consumed oldest-first, with at
    /// most **one proposal per worker per quorum** (the paper's model: each
    /// worker contributes one vector per aggregation — this is what caps
    /// the Byzantine share of a quorum at `f`). With every worker proposing
    /// each round and only `quorum < n` consumed, the surplus forms a stale
    /// backlog bounded by `max_staleness` — the steady-state cost of a
    /// partial quorum is *staleness*, and the
    /// `stale_in_quorum`/`dropped_stale` columns of
    /// [`RoundRecord`](krum_metrics::RoundRecord) make it visible.
    AsyncQuorum {
        /// How many proposals close a round (`n − f ≤ quorum ≤ n`). The
        /// aggregation rule must be configured for this many proposals.
        quorum: usize,
        /// Maximum age (in rounds) a straggler proposal may reach and still
        /// be aggregated; older in-flight proposals are dropped. `0` drops
        /// every straggler at the end of its round.
        max_staleness: usize,
        /// The simulated network deciding per-worker arrival order and the
        /// quorum's network charge.
        network: NetworkModel,
        /// Stale-gradient mode: the server keeps the **latest** proposal of
        /// every worker and aggregates all `n` of them each round; `quorum`
        /// becomes the number of *fresh refreshes* per round (`1 ≤ quorum ≤
        /// n`, no `n − f` floor) and `max_staleness` the forced-refresh
        /// bound (a table entry older than it must be refreshed before the
        /// round closes). The aggregation rule is built for `n`, and
        /// because only `quorum` of the `n` rows change per round, the
        /// incremental Gram cache recomputes only those rows — the
        /// steady-state cost drops from `n(n−1)/2` to `≈ q·n` dot products.
        reuse_stale: bool,
    },
}

impl ExecutionStrategy {
    /// Whether honest-gradient computation fans out over the thread pool.
    fn parallel_workers(&self) -> bool {
        matches!(self, Self::Threaded { .. })
    }

    /// The simulated network, when the strategy carries one.
    pub(crate) fn network(&self) -> Option<NetworkModel> {
        match *self {
            Self::Sequential => None,
            Self::Threaded { network } | Self::AsyncQuorum { network, .. } => Some(network),
        }
    }
}

impl std::fmt::Display for ExecutionStrategy {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sequential => out.write_str("sequential"),
            Self::Threaded { network } => write!(out, "threaded({network})"),
            Self::AsyncQuorum {
                quorum,
                max_staleness,
                network,
                reuse_stale,
            } => {
                write!(
                    out,
                    "async-quorum(q={quorum}, staleness<={max_staleness}, {network}"
                )?;
                if *reuse_stale {
                    out.write_str(", reuse")?;
                }
                out.write_str(")")
            }
        }
    }
}

/// An in-flight proposal the async-quorum strategy carries across rounds.
/// Everything in the pending pool has already reached the server (it arrived
/// after the previous round's quorum closed), so it is available — and ages —
/// from the next round on.
#[derive(Debug, Clone)]
struct PendingProposal {
    /// Worker that issued the proposal (`≥ n − f` means Byzantine).
    worker: usize,
    /// Round the proposal's gradient was computed at.
    issued_round: usize,
    /// The proposed vector.
    vector: Vector,
}

/// One proposal competing for a slot in this round's quorum.
struct Candidate {
    /// Sort tier: 0 = already arrived (carried straggler), 1 = fresh racing
    /// arrival, 2 = deliberately late (straggling Byzantine worker).
    tier: u8,
    /// Simulated arrival nanos within the round (tier 1 only).
    arrival: u128,
    /// Round the proposal was issued at.
    issued_round: usize,
    /// Issuing worker.
    worker: usize,
    /// The proposed vector.
    vector: Vector,
}

impl Candidate {
    fn sort_key(&self) -> (u8, u128, usize, usize) {
        (self.tier, self.arrival, self.issued_round, self.worker)
    }
}

/// Forges the Byzantine proposals and enforces the attack contract (count
/// and dimensions). `observed` is what the adversary has seen this round —
/// every fresh honest proposal for barrier strategies and racing/straggling
/// adversaries, or the quorum-closing set for a last-to-respond adversary.
#[allow(clippy::too_many_arguments)]
fn forge_proposals(
    attack: &dyn Attack,
    attack_name: &str,
    rng: &mut ChaCha8Rng,
    observed: &[Vector],
    params: &Vector,
    true_gradient: Option<&Vector>,
    byzantine: usize,
    total_workers: usize,
    round: usize,
    aggregator_name: &str,
    dim: usize,
) -> Result<Vec<Vector>, TrainError> {
    let ctx = AttackContext {
        honest_proposals: observed,
        current_params: params,
        true_gradient,
        byzantine_count: byzantine,
        total_workers,
        round,
        aggregator_name,
    };
    let forged = attack.forge(&ctx, rng)?;
    if forged.len() != byzantine {
        return Err(TrainError::AttackContract {
            attack: attack_name.to_string(),
            message: format!("returned {} proposals, expected {byzantine}", forged.len()),
        });
    }
    for proposal in &forged {
        if proposal.dim() != dim {
            return Err(TrainError::AttackContract {
                attack: attack_name.to_string(),
                message: format!(
                    "returned a proposal of dimension {}, expected {}",
                    proposal.dim(),
                    dim
                ),
            });
        }
    }
    Ok(forged)
}

/// Feeds the round's observers once the aggregate is accepted: the drift
/// tracker fills the drift columns of the record, and a stateful adversary
/// receives the [`RoundFeedback`] it adapts on. `worker_ids[i]` is the
/// worker behind `proposals[i]`; the record's selection fields must already
/// be remapped to worker ids. Stateless attacks pay no feedback cost (no
/// clone, no observe call), so pre-existing trajectories are untouched.
fn observe_round(
    drift: &mut DriftTracker,
    attack: &mut dyn Attack,
    record: &mut RoundRecord,
    aggregate: &Vector,
    proposals: &[Vector],
    worker_ids: &[usize],
    honest: usize,
) {
    drift.observe(
        record,
        aggregate,
        proposals,
        worker_ids,
        honest,
        record.learning_rate,
    );
    if attack.stateful() {
        let feedback = RoundFeedback {
            round: record.round,
            aggregate: aggregate.clone(),
            learning_rate: record.learning_rate,
            selected_worker: record.selected_worker,
            selected_byzantine: record.selected_byzantine,
            quorum_workers: worker_ids.to_vec(),
        };
        attack.observe(&feedback);
    }
}

/// Applies the codec's canonical quantize → dequantize transform to each
/// vector in place (`reference` is the round's broadcast params, used by
/// delta codecs). This is the in-process twin of an encode on one socket
/// and a decode on the other: the engine aggregates exactly the vectors a
/// remote server would reconstruct off the wire.
fn transform_vectors(codec: &dyn GradientCodec, vectors: &mut [Vector], reference: &[f64]) {
    for vector in vectors {
        codec.transform(vector.as_mut_slice(), reference);
    }
}

/// The shared round engine behind [`SyncTrainer`](crate::SyncTrainer) and
/// [`ThreadedTrainer`](crate::ThreadedTrainer), and the only implementation
/// of the async partial-quorum protocol.
///
/// Holds the cluster state (aggregator, attack, worker estimators, RNG
/// streams) and executes one round at a time through the
/// broadcast → propose → attack → aggregate → step → record pipeline. Built
/// perf-first: the proposal buffer and the [`AggregationContext`] are
/// allocated once and reused across rounds, and worker RNGs are independent
/// streams derived from the master seed so every execution strategy follows
/// a reproducible trajectory.
pub struct RoundEngine {
    cluster: ClusterSpec,
    /// The server half of the pipeline (aggregate → step → record), shared
    /// with the networked execution world (`krum-server`).
    core: RoundCore,
    attack: Box<dyn Attack>,
    attack_name: String,
    /// One estimator per honest worker.
    estimators: Vec<Box<dyn GradientEstimator>>,
    /// Dedicated metrics/adversary probe; when absent, `estimators[0]`
    /// serves the probe queries.
    probe: Option<Box<dyn GradientEstimator>>,
    strategy: ExecutionStrategy,
    dim: usize,
    /// One independent RNG per honest worker.
    worker_rngs: Vec<ChaCha8Rng>,
    attack_rng: ChaCha8Rng,
    network_rng: ChaCha8Rng,
    /// Per-round proposal scratch (`n` slots), reused across rounds.
    proposals: Vec<Vector>,
    /// In-flight straggler proposals carried across rounds (async quorum
    /// strategy only; always empty for the barrier strategies).
    pending: Vec<PendingProposal>,
    /// The vectors aggregated this round under the async strategy, in
    /// `(issued_round, worker)` order.
    quorum_vectors: Vec<Vector>,
    /// `(worker, issued_round)` per entry of `quorum_vectors`, to attribute
    /// selections back to workers.
    quorum_meta: Vec<(usize, usize)>,
    /// Latest-proposal table for the reuse-stale async mode: one slot per
    /// worker, refreshed in place (`assign`), aggregated at arity `n` every
    /// round. Empty until the first reuse round.
    latest: Vec<Vector>,
    /// Round each `latest` entry was issued at.
    latest_issued: Vec<usize>,
    /// Per-worker refresh counters, handed to the aggregation workspace so
    /// the incremental Gram cache knows which rows changed.
    generations: Vec<u64>,
    /// Whether reuse-stale rounds arm the incremental Gram cache (on by
    /// default; benches disable it to measure the full-recompute baseline).
    gram_cache: bool,
    /// Drift-metrics accumulator, fed after every closed round.
    drift: DriftTracker,
    /// Identity worker map `0..n` — the proposal layout of the barrier and
    /// reuse-stale paths, where slot `i` *is* worker `i`.
    identity_ids: Vec<usize>,
    /// Worker ids behind this round's aggregated vectors on the async path
    /// (the worker components of `quorum_meta`), rebuilt each round.
    round_workers: Vec<usize>,
}

impl RoundEngine {
    /// Builds an engine, validating the configuration.
    ///
    /// `estimators` supplies exactly one gradient estimator per honest
    /// worker; `probe`, when given, serves the metrics/adversary queries
    /// (loss, true gradient) so the worker estimators stay exclusive to the
    /// propose phase (otherwise `estimators[0]` is shared).
    ///
    /// Under [`ExecutionStrategy::AsyncQuorum`] the aggregator must be
    /// configured for `quorum` proposals (not `n`): the engine feeds it
    /// exactly `quorum` vectors per round, and rules with a worker-count
    /// precondition (Krum's `2f + 2 < n`) must hold it against the quorum
    /// size. The scenario layer does this automatically.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] when the configuration is
    /// invalid, the estimator count/dimensions are inconsistent, the quorum
    /// bounds `n − f ≤ quorum ≤ n` are violated, or the network model is
    /// invalid.
    pub fn new(
        cluster: ClusterSpec,
        aggregator: Box<dyn Aggregator>,
        attack: Box<dyn Attack>,
        estimators: Vec<Box<dyn GradientEstimator>>,
        probe: Option<Box<dyn GradientEstimator>>,
        config: TrainingConfig,
        strategy: ExecutionStrategy,
    ) -> Result<Self, TrainError> {
        config.validate()?;
        match &strategy {
            ExecutionStrategy::Sequential => {}
            ExecutionStrategy::Threaded { network } => network.validate()?,
            ExecutionStrategy::AsyncQuorum {
                quorum,
                network,
                reuse_stale,
                ..
            } => {
                network.validate()?;
                let n = cluster.workers();
                if *reuse_stale {
                    // Reuse mode aggregates the full latest-proposal table
                    // every round; `quorum` only paces refreshes, so any
                    // positive rate up to full refresh is meaningful.
                    if *quorum < 1 || *quorum > n {
                        return Err(TrainError::config(format!(
                            "reuse-stale quorum must satisfy 1 <= quorum <= n, got quorum = \
                             {quorum} with n = {n}"
                        )));
                    }
                } else {
                    let min = cluster.honest();
                    if *quorum < min || *quorum > n {
                        return Err(TrainError::config(format!(
                            "async quorum must satisfy n - f <= quorum <= n, got quorum = \
                             {quorum} with n = {n}, f = {}",
                            cluster.byzantine()
                        )));
                    }
                }
            }
        }
        if estimators.len() != cluster.honest() {
            return Err(TrainError::config(format!(
                "expected one estimator per honest worker ({}), got {}",
                cluster.honest(),
                estimators.len()
            )));
        }
        let dim = estimators
            .first()
            .map(|e| e.dim())
            .ok_or_else(|| TrainError::config("at least one honest worker is required"))?;
        if let Some(worker) = estimators.iter().position(|e| e.dim() != dim) {
            return Err(TrainError::config(format!(
                "estimator {worker} has dimension {}, expected {dim}",
                estimators[worker].dim()
            )));
        }
        if let Some(p) = &probe {
            if p.dim() != dim {
                return Err(TrainError::config(format!(
                    "probe estimator has dimension {}, expected {dim}",
                    p.dim()
                )));
            }
        }
        if let Some(optimum) = &config.known_optimum {
            if optimum.dim() != dim {
                return Err(TrainError::config(format!(
                    "known optimum has dimension {}, expected {dim}",
                    optimum.dim()
                )));
            }
        }
        let seed = config.seed;
        let worker_rngs = (0..cluster.honest())
            .map(|w| stream_rng(seed, w as u64))
            .collect();
        let proposals = vec![Vector::zeros(dim); cluster.workers()];
        Ok(Self {
            cluster,
            core: RoundCore::new(cluster, aggregator, config, dim)?,
            attack_name: attack.name(),
            attack,
            estimators,
            probe,
            attack_rng: stream_rng(seed, ATTACK_STREAM),
            network_rng: stream_rng(seed, NETWORK_STREAM),
            strategy,
            dim,
            worker_rngs,
            proposals,
            pending: Vec::new(),
            quorum_vectors: Vec::new(),
            quorum_meta: Vec::new(),
            latest: Vec::new(),
            latest_issued: Vec::new(),
            generations: Vec::new(),
            gram_cache: true,
            drift: DriftTracker::new(),
            identity_ids: (0..cluster.workers()).collect(),
            round_workers: Vec::new(),
        })
    }

    /// Attaches a held-out accuracy probe, called on evaluation rounds with
    /// the current parameters.
    pub fn set_accuracy_probe(&mut self, probe: AccuracyProbe) {
        self.core.set_accuracy_probe(probe);
    }

    /// Attaches a gradient codec: every proposal is passed through the
    /// codec's canonical quantize → dequantize transform **before** the
    /// adversary observes it and before aggregation, and the parameter
    /// vector is re-projected after every step — the same pipeline a
    /// compressed wire imposes, so an in-process run of a compressed
    /// scenario is bit-identical to serving it over sockets.
    ///
    /// The caller owns transforming the *initial* parameters once (the
    /// scenario layer does this), mirroring the first broadcast's
    /// encode/decode.
    pub fn set_compression(&mut self, codec: Arc<dyn GradientCodec>) {
        self.core.set_compression(codec);
    }

    /// Overrides the aggregation workspace's execution policy (e.g. force
    /// [`ExecutionPolicy::Sequential`] for allocation-free profiling).
    pub fn set_aggregation_policy(&mut self, policy: ExecutionPolicy) {
        self.core.set_aggregation_policy(policy);
    }

    /// Enables or disables the incremental Gram cache for reuse-stale async
    /// rounds (on by default). Trajectories are bit-identical either way —
    /// the cache only changes how much of the pairwise-distance matrix is
    /// recomputed per round.
    pub fn set_gram_cache(&mut self, enabled: bool) {
        self.gram_cache = enabled;
        if !enabled {
            self.core.invalidate_gram_cache();
        }
    }

    /// The cluster this engine drives.
    pub fn cluster(&self) -> ClusterSpec {
        self.cluster
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The execution strategy of this engine.
    pub fn strategy(&self) -> ExecutionStrategy {
        self.strategy
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        self.core.config()
    }

    fn probe_estimator(&self) -> &dyn GradientEstimator {
        self.probe
            .as_deref()
            .unwrap_or_else(|| &*self.estimators[0])
    }

    /// Runs the configured number of rounds from `start`, returning the
    /// final parameters and the per-round history. The last round is always
    /// an evaluation round (see [`TrainingConfig::eval_every`]), so the
    /// final recorded loss/accuracy always describes the returned model.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when a worker, the attack or the aggregator
    /// fails mid-run, or when a poisoned round produces a NaN update
    /// ([`TrainError::PoisonedRound`]).
    pub fn run(&mut self, start: Vector) -> Result<(Vector, TrainingHistory), TrainError> {
        let mut params = start;
        let mut history = self.new_history();
        let rounds = self.core.config().rounds;
        for round in 0..rounds {
            let record = self.step(&mut params, round)?;
            history.push(record);
        }
        Ok((params, history))
    }

    /// Runs a single round from the given parameters (without mutating
    /// them), returning the updated parameters and the round record.
    ///
    /// # Errors
    ///
    /// Same as [`RoundEngine::run`].
    pub fn run_round(
        &mut self,
        params: &Vector,
        round: usize,
    ) -> Result<(Vector, RoundRecord), TrainError> {
        let mut next = params.clone();
        let record = self.step(&mut next, round)?;
        Ok((next, record))
    }

    /// Executes one pass of the round pipeline, applying the update to
    /// `params` in place. Returns the round's metrics record with per-phase
    /// timings (and, under the async strategy, the quorum/staleness stats).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when a worker, the attack or the aggregator
    /// fails, or when the aggregate update is NaN (a poisoned round).
    pub fn step(&mut self, params: &mut Vector, round: usize) -> Result<RoundRecord, TrainError> {
        match self.strategy {
            ExecutionStrategy::AsyncQuorum {
                quorum,
                max_staleness,
                network,
                reuse_stale,
            } => {
                if reuse_stale {
                    self.step_reuse(params, round, quorum, max_staleness, network)
                } else {
                    self.step_async(params, round, quorum, max_staleness, network)
                }
            }
            _ => self.step_barrier(params, round),
        }
    }

    /// One full-barrier round (sequential or threaded).
    fn step_barrier(
        &mut self,
        params: &mut Vector,
        round: usize,
    ) -> Result<RoundRecord, TrainError> {
        let round_start = Instant::now();
        let honest = self.cluster.honest();
        let byzantine = self.cluster.byzantine();

        // Phase 1+2: broadcast + propose. The server publishes `x_t` (the
        // shared borrow below) and every honest worker estimates a gradient
        // at it; the scratch buffer is reused, only the estimator outputs
        // are fresh.
        let propose_start = Instant::now();
        if self.strategy.parallel_workers() && honest > 1 {
            let params_ref: &Vector = params;
            let outputs: Result<Vec<Vector>, _> = self.estimators[..honest]
                .iter()
                .zip(self.worker_rngs.iter_mut())
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(estimator, rng)| estimator.estimate(params_ref, rng))
                .collect();
            for (slot, proposal) in self.proposals.iter_mut().zip(outputs?) {
                *slot = proposal;
            }
        } else {
            for w in 0..honest {
                self.proposals[w] =
                    self.estimators[w].estimate(params, &mut self.worker_rngs[w])?;
            }
        }
        // Quantize-before-aggregate: under a codec the adversary observes
        // (and the server aggregates) the dequantized proposals, exactly
        // as a remote worker's encode → server decode would produce.
        if let Some(codec) = self.core.compression() {
            transform_vectors(&**codec, &mut self.proposals[..honest], params.as_slice());
        }
        let propose_nanos = propose_start.elapsed().as_nanos();

        // Phase 3: attack. The omniscient adversary observes everything,
        // including the true gradient when the workload exposes one.
        let attack_start = Instant::now();
        let true_gradient = self.probe_estimator().true_gradient(params);
        let forged = forge_proposals(
            &*self.attack,
            &self.attack_name,
            &mut self.attack_rng,
            &self.proposals[..honest],
            params,
            true_gradient.as_ref(),
            byzantine,
            self.cluster.workers(),
            round,
            self.core.aggregator_name(),
            self.dim,
        )?;
        for (slot, proposal) in self.proposals[honest..].iter_mut().zip(forged) {
            *slot = proposal;
        }
        // Byzantine proposals cross the same wire as honest ones: quantize
        // them too (NaN/∞ payloads survive — the codecs escape non-finite
        // blocks — so poisoning attacks stay faithful).
        if let Some(codec) = self.core.compression() {
            transform_vectors(&**codec, &mut self.proposals[honest..], params.as_slice());
        }
        let attack_nanos = attack_start.elapsed().as_nanos();

        // Phases 4–6: aggregate → step → record through the shared core —
        // the paper's O(n²·d) server-side hot path, through the reused
        // workspace (no steady-state allocations).
        let probe = self.probe.as_deref().unwrap_or(&*self.estimators[0]);
        let mut record =
            self.core
                .close_round(params, round, &self.proposals, true_gradient, Some(probe))?;
        record.propose_nanos = propose_nanos;
        record.attack_nanos = attack_nanos;
        record.round_nanos = round_start.elapsed().as_nanos();
        observe_round(
            &mut self.drift,
            &mut *self.attack,
            &mut record,
            self.core.last_aggregate(),
            &self.proposals,
            &self.identity_ids,
            honest,
        );

        // The simulated network (threaded strategy) charges the synchronous
        // barrier's communication time on top of the measured wall clock.
        if let ExecutionStrategy::Threaded { network } = self.strategy {
            let simulated =
                network.round_nanos(self.cluster.workers(), self.dim, &mut self.network_rng);
            record.network_nanos = simulated;
            record.round_nanos += simulated;
        }
        Ok(record)
    }

    /// One partial-quorum round: aggregate the fastest `quorum` arrivals,
    /// carry the stragglers forward (bounded by `max_staleness`), honour the
    /// adversary's timing.
    fn step_async(
        &mut self,
        params: &mut Vector,
        round: usize,
        quorum: usize,
        max_staleness: usize,
        network: NetworkModel,
    ) -> Result<RoundRecord, TrainError> {
        let round_start = Instant::now();
        let honest = self.cluster.honest();
        let byzantine = self.cluster.byzantine();

        // Phase 1+2: broadcast + propose — every honest worker estimates at
        // `x_t`, consuming the same per-worker RNG streams (in the same
        // order) as the barrier strategies, so `quorum = n` reproduces the
        // Sequential trajectory bit-for-bit.
        let propose_start = Instant::now();
        for w in 0..honest {
            self.proposals[w] = self.estimators[w].estimate(params, &mut self.worker_rngs[w])?;
        }
        // Quantize-before-aggregate, against this round's params (carried
        // stragglers were transformed at their issue round and ride as-is,
        // matching a server that decodes proposals at arrival).
        if let Some(codec) = self.core.compression() {
            transform_vectors(&**codec, &mut self.proposals[..honest], params.as_slice());
        }
        let propose_nanos = propose_start.elapsed().as_nanos();

        // Carried stragglers are available immediately: they arrived after
        // the previous round's quorum closed. (The carry step already
        // enforced the staleness bound, so everything pending is usable.)
        let mut candidates: Vec<Candidate> = self
            .pending
            .drain(..)
            .map(|entry| Candidate {
                tier: 0,
                arrival: 0,
                issued_round: entry.issued_round,
                worker: entry.worker,
                vector: entry.vector,
            })
            .collect();

        // Phase 3: attack — timing-aware. Racing and straggling adversaries
        // forge now (observing every fresh honest proposal, as in the
        // barrier engines); a last-to-respond adversary forges after the
        // quorum-closing set is known.
        let attack_start = Instant::now();
        let true_gradient = self.probe_estimator().true_gradient(params);
        let timing = self.attack.timing();
        let early_forged = match timing {
            AttackTiming::Honest | AttackTiming::Straggle => {
                let mut forged = forge_proposals(
                    &*self.attack,
                    &self.attack_name,
                    &mut self.attack_rng,
                    &self.proposals[..honest],
                    params,
                    true_gradient.as_ref(),
                    byzantine,
                    self.cluster.workers(),
                    round,
                    self.core.aggregator_name(),
                    self.dim,
                )?;
                if let Some(codec) = self.core.compression() {
                    transform_vectors(&**codec, &mut forged, params.as_slice());
                }
                Some(forged)
            }
            AttackTiming::LastToRespond => None,
        };

        // Fresh honest arrivals race under the simulated network. The
        // proposal vectors are moved out of the scratch buffer (it is
        // refilled at the top of the next round), so the async path avoids
        // cloning the fresh gradients.
        let mut max_fresh_arrival: u128 = 0;
        for w in 0..honest {
            let arrival = network.worker_round_trip_nanos(self.dim, &mut self.network_rng);
            max_fresh_arrival = max_fresh_arrival.max(arrival);
            candidates.push(Candidate {
                tier: 1,
                arrival,
                issued_round: round,
                worker: w,
                vector: std::mem::replace(&mut self.proposals[w], Vector::zeros(0)),
            });
        }
        if let Some(forged) = early_forged {
            for (b, vector) in forged.into_iter().enumerate() {
                let (tier, arrival) = if timing == AttackTiming::Straggle {
                    // Deliberately after every honest proposal: out of the
                    // quorum unless the server cannot close without
                    // Byzantine slots (quorum > available others).
                    (2, u128::MAX)
                } else {
                    (
                        1,
                        network.worker_round_trip_nanos(self.dim, &mut self.network_rng),
                    )
                };
                candidates.push(Candidate {
                    tier,
                    arrival,
                    issued_round: round,
                    worker: honest + b,
                    vector,
                });
            }
        }

        candidates.sort_by_key(Candidate::sort_key);

        // Quorum selection. At most **one proposal per worker** enters a
        // quorum — the paper's model has each worker contribute one vector
        // per aggregation, and this is what caps the Byzantine share of a
        // quorum at `f` (otherwise a Byzantine worker's carried straggler
        // plus its fresh proposal could both land in one round and defeat a
        // rule validated for `f` of `quorum`). The earliest arrival per
        // worker wins; a worker's newer proposal stays in flight and
        // competes again next round (or ages out).
        let mut taken = vec![false; self.cluster.workers()];
        let mut selected: Vec<Candidate> = Vec::with_capacity(quorum);
        let want = match timing {
            // The adversary watches the wire and slips its proposals in just
            // before the quorum would close: only `quorum − f` legitimate
            // arrivals are observed before the Byzantine workers respond.
            AttackTiming::LastToRespond => quorum.saturating_sub(byzantine),
            _ => quorum,
        };
        let mut rest: Vec<Candidate> = Vec::with_capacity(candidates.len());
        for c in candidates.drain(..) {
            if selected.len() < want && !taken[c.worker] {
                taken[c.worker] = true;
                selected.push(c);
            } else {
                rest.push(c);
            }
        }
        candidates = rest;

        // The arrival that closes the quorum so far (carried proposals cost
        // nothing; a straggling Byzantine worker pulled in to fill the
        // quorum arrives right after the slowest honest proposal).
        let effective_arrival = |c: &Candidate| -> u128 {
            match c.tier {
                0 => 0,
                2 => max_fresh_arrival,
                _ => c.arrival,
            }
        };
        let mut cutoff_nanos = selected.iter().map(&effective_arrival).max().unwrap_or(0);

        // Move the selection into the reusable quorum buffers (no vector
        // clones on this path).
        self.quorum_vectors.clear();
        self.quorum_meta.clear();
        for c in selected {
            self.quorum_meta.push((c.worker, c.issued_round));
            self.quorum_vectors.push(c.vector);
        }

        if timing == AttackTiming::LastToRespond {
            // The Byzantine workers respond with full knowledge of exactly
            // the set about to be aggregated, timed at its closing arrival —
            // the server never waits for them, so the quorum's network
            // charge stays the observed cutoff, not the barrier's slowest
            // worker.
            let mut forged = forge_proposals(
                &*self.attack,
                &self.attack_name,
                &mut self.attack_rng,
                &self.quorum_vectors,
                params,
                true_gradient.as_ref(),
                byzantine,
                self.cluster.workers(),
                round,
                self.core.aggregator_name(),
                self.dim,
            )?;
            if let Some(codec) = self.core.compression() {
                transform_vectors(&**codec, &mut forged, params.as_slice());
            }
            for (b, vector) in forged.into_iter().enumerate() {
                if self.quorum_vectors.len() >= quorum {
                    break;
                }
                let worker = honest + b;
                // A Byzantine worker already in the quorum (via a carried
                // straggler) does not get a second proposal in.
                if taken[worker] {
                    continue;
                }
                taken[worker] = true;
                self.quorum_meta.push((worker, round));
                self.quorum_vectors.push(vector);
            }
            // If skipped duplicates left slots open, the quorum closes on
            // the next legitimate arrivals instead (extending the cutoff).
            if self.quorum_vectors.len() < quorum {
                let mut rest: Vec<Candidate> = Vec::with_capacity(candidates.len());
                for c in candidates.drain(..) {
                    if self.quorum_vectors.len() < quorum && !taken[c.worker] {
                        taken[c.worker] = true;
                        cutoff_nanos = cutoff_nanos.max(effective_arrival(&c));
                        self.quorum_meta.push((c.worker, c.issued_round));
                        self.quorum_vectors.push(c.vector);
                    } else {
                        rest.push(c);
                    }
                }
                candidates = rest;
            }
        }
        let attack_nanos = attack_start.elapsed().as_nanos();
        debug_assert!(
            {
                let mut seen = vec![false; self.cluster.workers()];
                self.quorum_meta
                    .iter()
                    .all(|&(w, _)| !std::mem::replace(&mut seen[w], true))
            },
            "a quorum must hold at most one proposal per worker (Byzantine share <= f)"
        );

        // Quorum/staleness stats.
        let quorum_size = self.quorum_meta.len();
        let stale_in_quorum = self
            .quorum_meta
            .iter()
            .filter(|&&(_, issued)| issued < round)
            .count();
        let max_staleness_in_quorum = self
            .quorum_meta
            .iter()
            .map(|&(_, issued)| round - issued)
            .max()
            .unwrap_or(0);

        // Aggregation input order: (issued_round, worker) — with a full
        // fresh quorum this is plain worker order, matching the barrier
        // engines' proposal layout.
        let mut ordered: Vec<((usize, usize), Vector)> = self
            .quorum_meta
            .drain(..)
            .zip(self.quorum_vectors.drain(..))
            .collect();
        ordered.sort_by_key(|&((worker, issued), _)| (issued, worker));
        for (meta, vector) in ordered {
            self.quorum_meta.push(meta);
            self.quorum_vectors.push(vector);
        }

        // Hand the slot → worker map to the aggregation workspace so
        // stateful rules (reputation weights) key their cross-round memory
        // by worker id, not by quorum slot — slots are not stable worker
        // identities when `quorum < n`.
        self.round_workers.clear();
        self.round_workers
            .extend(self.quorum_meta.iter().map(|&(worker, _)| worker));
        self.core.set_slot_workers(&self.round_workers);

        // Unselected arrivals carry into the next round — unless carrying
        // them would exceed the staleness bound, in which case the server
        // drops them on the floor (and the metrics say so).
        let mut dropped_stale = 0usize;
        for c in candidates {
            let staleness_next = round + 1 - c.issued_round;
            if staleness_next > max_staleness {
                dropped_stale += 1;
            } else {
                self.pending.push(PendingProposal {
                    worker: c.worker,
                    issued_round: c.issued_round,
                    vector: c.vector,
                });
            }
        }
        let pending_carryover = self.pending.len();

        // Phases 4–6: aggregate → step → record over the partial set,
        // through the shared core. The rule was built for `quorum`
        // proposals, so its preconditions (Krum's `2f + 2 < n`) hold
        // against the quorum size; selection attribution is remapped
        // through the quorum below.
        let probe = self.probe.as_deref().unwrap_or(&*self.estimators[0]);
        let mut record = self.core.close_round(
            params,
            round,
            &self.quorum_vectors,
            true_gradient,
            Some(probe),
        )?;
        record.propose_nanos = propose_nanos;
        record.attack_nanos = attack_nanos;
        record.round_nanos = round_start.elapsed().as_nanos();
        record.selected_worker = record.selected_worker.map(|slot| self.quorum_meta[slot].0);
        record.selected_byzantine = record.selected_worker.map(|w| w >= honest);
        record.quorum_size = Some(quorum_size);
        record.stale_in_quorum = Some(stale_in_quorum);
        record.max_staleness_in_quorum = Some(max_staleness_in_quorum);
        record.dropped_stale = Some(dropped_stale);
        record.pending_carryover = Some(pending_carryover);
        record.network_nanos = cutoff_nanos;
        record.round_nanos += cutoff_nanos;
        observe_round(
            &mut self.drift,
            &mut *self.attack,
            &mut record,
            self.core.last_aggregate(),
            &self.quorum_vectors,
            &self.round_workers,
            honest,
        );
        Ok(record)
    }

    /// One reuse-stale round: the server aggregates the full latest-proposal
    /// table (arity `n`) after refreshing `quorum` entries — the
    /// stale-gradient parameter-server model, where workers overwrite their
    /// slot whenever they finish and the server never waits for more than
    /// the refresh pace plus the staleness bound.
    ///
    /// Refresh selection per round:
    ///
    /// 1. every entry whose age reached `max_staleness` **must** refresh
    ///    (round 0 forces the whole table — there is nothing to reuse);
    /// 2. remaining capacity up to `quorum` goes to the earliest fresh
    ///    arrivals under the simulated network, honouring the adversary's
    ///    timing: straggling Byzantine workers only land when forced (at
    ///    the slowest honest arrival), last-to-respond ones always land,
    ///    forging after observing the honest refreshes.
    ///
    /// Fresh proposals that do not land are discarded (the worker will
    /// recompute at a newer `x_t` anyway) and show up in `dropped_stale`;
    /// `pending_carryover` is always 0 — staleness lives in the table
    /// itself, visible through `stale_in_quorum`.
    fn step_reuse(
        &mut self,
        params: &mut Vector,
        round: usize,
        quorum: usize,
        max_staleness: usize,
        network: NetworkModel,
    ) -> Result<RoundRecord, TrainError> {
        let round_start = Instant::now();
        let honest = self.cluster.honest();
        let byzantine = self.cluster.byzantine();
        let n = self.cluster.workers();

        // Phase 1+2: broadcast + propose — same per-worker RNG streams in
        // the same order as every other strategy.
        let propose_start = Instant::now();
        for w in 0..honest {
            self.proposals[w] = self.estimators[w].estimate(params, &mut self.worker_rngs[w])?;
        }
        // Quantize-before-aggregate: table entries hold dequantized
        // vectors, refreshed against the params of their refresh round.
        if let Some(codec) = self.core.compression() {
            transform_vectors(&**codec, &mut self.proposals[..honest], params.as_slice());
        }
        let propose_nanos = propose_start.elapsed().as_nanos();

        // First reuse round: size the table (the only allocating round).
        let cold_start = self.latest.len() != n;
        if cold_start {
            self.latest = vec![Vector::zeros(self.dim); n];
            self.latest_issued = vec![0; n];
            self.generations = vec![0; n];
        }
        let forced = |w: usize| cold_start || round - self.latest_issued[w] >= max_staleness;

        // Phase 3: attack — timing-aware, as in `step_async`.
        let attack_start = Instant::now();
        let true_gradient = self.probe_estimator().true_gradient(params);
        let timing = self.attack.timing();
        let early_forged = match timing {
            AttackTiming::Honest | AttackTiming::Straggle => {
                let mut forged = forge_proposals(
                    &*self.attack,
                    &self.attack_name,
                    &mut self.attack_rng,
                    &self.proposals[..honest],
                    params,
                    true_gradient.as_ref(),
                    byzantine,
                    n,
                    round,
                    self.core.aggregator_name(),
                    self.dim,
                )?;
                if let Some(codec) = self.core.compression() {
                    transform_vectors(&**codec, &mut forged, params.as_slice());
                }
                Some(forged)
            }
            AttackTiming::LastToRespond => None,
        };

        // Arrival race. Honest workers always draw (keeping the network
        // stream aligned across timings); Byzantine arrivals depend on the
        // adversary's timing.
        let mut arrival = vec![u128::MAX; n];
        let mut max_honest_arrival: u128 = 0;
        for slot in arrival.iter_mut().take(honest) {
            *slot = network.worker_round_trip_nanos(self.dim, &mut self.network_rng);
            max_honest_arrival = max_honest_arrival.max(*slot);
        }
        match timing {
            AttackTiming::Honest => {
                for slot in arrival.iter_mut().skip(honest) {
                    *slot = network.worker_round_trip_nanos(self.dim, &mut self.network_rng);
                }
            }
            // Deliberately after every honest proposal; `u128::MAX` keeps
            // them out of the race, `effective` charges the honest cutoff
            // when the staleness bound forces them in.
            AttackTiming::Straggle | AttackTiming::LastToRespond => {}
        }

        // Refresh selection: forced entries first, then earliest arrivals
        // up to `quorum`. A last-to-respond adversary always refreshes (it
        // is never the bottleneck), so its slots are pre-charged.
        let mut refresh = vec![false; n];
        let mut refreshed = 0usize;
        for (w, slot) in refresh.iter_mut().enumerate() {
            let always = timing == AttackTiming::LastToRespond && w >= honest;
            if forced(w) || always {
                *slot = true;
                refreshed += 1;
            }
        }
        if refreshed < quorum {
            let mut race: Vec<(u128, usize)> = (0..n)
                .filter(|&w| !refresh[w])
                .filter(|&w| timing != AttackTiming::LastToRespond || w < honest)
                .map(|w| (arrival[w], w))
                .collect();
            race.sort_unstable();
            for &(_, w) in race.iter().take(quorum - refreshed) {
                refresh[w] = true;
                refreshed += 1;
            }
        }

        // Land the honest refreshes (moving out of the scratch buffer) and
        // compute the round's network charge: the slowest landed arrival,
        // with straggling Byzantine workers pulled in at the honest cutoff.
        let mut cutoff_nanos: u128 = 0;
        let mut dropped_stale = 0usize;
        for w in 0..honest {
            if refresh[w] {
                self.latest[w].assign(self.proposals[w].as_slice());
                self.latest_issued[w] = round;
                self.generations[w] = self.generations[w].wrapping_add(1);
                cutoff_nanos = cutoff_nanos.max(arrival[w]);
            } else {
                // The fresh gradient goes unused: by the next round the
                // worker re-estimates at the new parameters.
                dropped_stale += 1;
            }
        }
        if let Some(forged) = early_forged {
            for (b, vector) in forged.into_iter().enumerate() {
                let w = honest + b;
                if refresh[w] {
                    self.latest[w].assign(vector.as_slice());
                    self.latest_issued[w] = round;
                    self.generations[w] = self.generations[w].wrapping_add(1);
                    cutoff_nanos = cutoff_nanos.max(match timing {
                        AttackTiming::Straggle => max_honest_arrival,
                        _ => arrival[w],
                    });
                } else {
                    dropped_stale += 1;
                }
            }
        } else {
            // Last-to-respond: forge now, observing exactly the honest
            // entries that landed this round, timed at the closing arrival.
            let observed: Vec<Vector> = (0..honest)
                .filter(|&w| refresh[w])
                .map(|w| self.latest[w].clone())
                .collect();
            let mut forged = forge_proposals(
                &*self.attack,
                &self.attack_name,
                &mut self.attack_rng,
                &observed,
                params,
                true_gradient.as_ref(),
                byzantine,
                n,
                round,
                self.core.aggregator_name(),
                self.dim,
            )?;
            if let Some(codec) = self.core.compression() {
                transform_vectors(&**codec, &mut forged, params.as_slice());
            }
            for (b, vector) in forged.into_iter().enumerate() {
                let w = honest + b;
                if refresh[w] {
                    self.latest[w].assign(vector.as_slice());
                    self.latest_issued[w] = round;
                    self.generations[w] = self.generations[w].wrapping_add(1);
                }
            }
        }
        let attack_nanos = attack_start.elapsed().as_nanos();

        // Table staleness stats (the table *is* the quorum here).
        let stale_in_quorum = self
            .latest_issued
            .iter()
            .filter(|&&issued| issued < round)
            .count();
        let max_staleness_in_quorum = self
            .latest_issued
            .iter()
            .map(|&issued| round - issued)
            .max()
            .unwrap_or(0);

        // Phases 4–6: aggregate the full table at arity `n`. Arming the
        // per-worker generations lets the workspace recompute only the
        // refreshed Gram rows — bit-identical to a full recompute.
        if self.gram_cache {
            self.core.set_generations(&self.generations);
        }
        let probe = self.probe.as_deref().unwrap_or(&*self.estimators[0]);
        let mut record =
            self.core
                .close_round(params, round, &self.latest, true_gradient, Some(probe))?;
        record.propose_nanos = propose_nanos;
        record.attack_nanos = attack_nanos;
        record.round_nanos = round_start.elapsed().as_nanos();
        // The table is in worker order, so the selection index is already a
        // worker id and `close_round` attributed Byzantine selection right.
        record.quorum_size = Some(refreshed);
        record.stale_in_quorum = Some(stale_in_quorum);
        record.max_staleness_in_quorum = Some(max_staleness_in_quorum);
        record.dropped_stale = Some(dropped_stale);
        record.pending_carryover = Some(0);
        record.network_nanos = cutoff_nanos;
        record.round_nanos += cutoff_nanos;
        observe_round(
            &mut self.drift,
            &mut *self.attack,
            &mut record,
            self.core.last_aggregate(),
            &self.latest,
            &self.identity_ids,
            honest,
        );
        Ok(record)
    }

    /// Metadata-filled empty history for a run of this engine.
    pub fn new_history(&self) -> TrainingHistory {
        TrainingHistory::new(
            format!(
                "{} vs {} (n={}, f={}, d={})",
                self.core.aggregator_name(),
                self.attack_name,
                self.cluster.workers(),
                self.cluster.byzantine(),
                self.dim
            ),
            self.core.aggregator_name().to_string(),
            self.attack_name.clone(),
            self.cluster.workers(),
            self.cluster.byzantine(),
        )
    }
}
