//! Shared round engine behind both trainers.
//!
//! Holds the cluster state (aggregator, attack, worker estimators, RNG
//! streams) and executes one synchronous round at a time. Built perf-first:
//! the proposal buffer is allocated once and reused across rounds, worker
//! RNGs are independent streams derived from the master seed (so the
//! sequential and threaded engines follow bit-identical trajectories), and
//! the honest-gradient fan-out can run serially or on the `rayon` pool.

use std::time::Instant;

use krum_attacks::{Attack, AttackContext};
use krum_core::Aggregator;
use krum_metrics::RoundRecord;
use krum_models::GradientEstimator;
use krum_tensor::Vector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::config::{ClusterSpec, TrainingConfig};
use crate::error::TrainError;

/// Callback measuring held-out accuracy of a parameter vector.
pub(crate) type AccuracyProbe = Box<dyn Fn(&Vector) -> Option<f64> + Send + Sync>;

/// Derives an independent RNG stream from the master seed.
pub(crate) fn stream_rng(seed: u64, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// RNG stream index reserved for the adversary.
pub(crate) const ATTACK_STREAM: u64 = u64::MAX - 1;
/// RNG stream index reserved for the simulated network.
pub(crate) const NETWORK_STREAM: u64 = u64::MAX - 2;

/// The state shared by [`SyncTrainer`](crate::SyncTrainer) and
/// [`ThreadedTrainer`](crate::ThreadedTrainer).
pub(crate) struct EngineCore {
    pub(crate) cluster: ClusterSpec,
    pub(crate) aggregator: Box<dyn Aggregator>,
    pub(crate) aggregator_name: String,
    pub(crate) attack: Box<dyn Attack>,
    pub(crate) attack_name: String,
    /// One estimator per honest worker.
    pub(crate) estimators: Vec<Box<dyn GradientEstimator>>,
    /// Dedicated metrics/adversary probe; the sequential engine shares
    /// `estimators[0]` instead.
    pub(crate) probe: Option<Box<dyn GradientEstimator>>,
    pub(crate) config: TrainingConfig,
    pub(crate) accuracy_probe: Option<AccuracyProbe>,
    pub(crate) dim: usize,
    /// One independent RNG per honest worker.
    worker_rngs: Vec<ChaCha8Rng>,
    attack_rng: ChaCha8Rng,
    /// Per-round proposal scratch (`n` slots), reused across rounds.
    proposals: Vec<Vector>,
}

impl EngineCore {
    /// Builds the core, validating the configuration.
    pub(crate) fn new(
        cluster: ClusterSpec,
        aggregator: Box<dyn Aggregator>,
        attack: Box<dyn Attack>,
        estimators: Vec<Box<dyn GradientEstimator>>,
        probe: Option<Box<dyn GradientEstimator>>,
        config: TrainingConfig,
    ) -> Result<Self, TrainError> {
        config.validate()?;
        if estimators.len() != cluster.honest() {
            return Err(TrainError::config(format!(
                "expected one estimator per honest worker ({}), got {}",
                cluster.honest(),
                estimators.len()
            )));
        }
        let dim = estimators
            .first()
            .map(|e| e.dim())
            .ok_or_else(|| TrainError::config("at least one honest worker is required"))?;
        if let Some(worker) = estimators.iter().position(|e| e.dim() != dim) {
            return Err(TrainError::config(format!(
                "estimator {worker} has dimension {}, expected {dim}",
                estimators[worker].dim()
            )));
        }
        if let Some(p) = &probe {
            if p.dim() != dim {
                return Err(TrainError::config(format!(
                    "probe estimator has dimension {}, expected {dim}",
                    p.dim()
                )));
            }
        }
        if let Some(optimum) = &config.known_optimum {
            if optimum.dim() != dim {
                return Err(TrainError::config(format!(
                    "known optimum has dimension {}, expected {dim}",
                    optimum.dim()
                )));
            }
        }
        let worker_rngs = (0..cluster.honest())
            .map(|w| stream_rng(config.seed, w as u64))
            .collect();
        let proposals = vec![Vector::zeros(dim); cluster.workers()];
        Ok(Self {
            cluster,
            aggregator_name: aggregator.name(),
            aggregator,
            attack_name: attack.name(),
            attack,
            estimators,
            probe,
            attack_rng: stream_rng(config.seed, ATTACK_STREAM),
            config,
            accuracy_probe: None,
            dim,
            worker_rngs,
            proposals,
        })
    }

    fn probe_estimator(&self) -> &dyn GradientEstimator {
        self.probe
            .as_deref()
            .unwrap_or_else(|| &*self.estimators[0])
    }

    /// Runs one synchronous round: workers estimate gradients at `params`,
    /// the adversary forges its proposals, the server aggregates and applies
    /// the update in place. Returns the round's metrics record.
    pub(crate) fn step(
        &mut self,
        params: &mut Vector,
        round: usize,
        parallel: bool,
    ) -> Result<RoundRecord, TrainError> {
        let round_start = Instant::now();
        let honest = self.cluster.honest();
        let byzantine = self.cluster.byzantine();

        // 1. Honest workers compute their gradient estimates (the scratch
        //    buffer is reused; only the estimator outputs are fresh).
        if parallel && honest > 1 {
            let params_ref: &Vector = params;
            let outputs: Result<Vec<Vector>, _> = self.estimators[..honest]
                .iter()
                .zip(self.worker_rngs.iter_mut())
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(estimator, rng)| estimator.estimate(params_ref, rng))
                .collect();
            for (slot, proposal) in self.proposals.iter_mut().zip(outputs?) {
                *slot = proposal;
            }
        } else {
            for w in 0..honest {
                self.proposals[w] =
                    self.estimators[w].estimate(params, &mut self.worker_rngs[w])?;
            }
        }

        // 2. The omniscient adversary observes everything, including the true
        //    gradient when the workload exposes one.
        let true_gradient = self.probe_estimator().true_gradient(params);
        let forged = {
            let ctx = AttackContext {
                honest_proposals: &self.proposals[..honest],
                current_params: params,
                true_gradient: true_gradient.as_ref(),
                byzantine_count: byzantine,
                total_workers: self.cluster.workers(),
                round,
                aggregator_name: &self.aggregator_name,
            };
            self.attack.forge(&ctx, &mut self.attack_rng)?
        };
        if forged.len() != byzantine {
            return Err(TrainError::AttackContract {
                attack: self.attack_name.clone(),
                message: format!("returned {} proposals, expected {byzantine}", forged.len()),
            });
        }
        for (slot, proposal) in self.proposals[honest..].iter_mut().zip(forged) {
            if proposal.dim() != self.dim {
                return Err(TrainError::AttackContract {
                    attack: self.attack_name.clone(),
                    message: format!(
                        "returned a proposal of dimension {}, expected {}",
                        proposal.dim(),
                        self.dim
                    ),
                });
            }
            *slot = proposal;
        }

        // 3. Server-side aggregation (timed separately: this is the paper's
        //    O(n²·d) hot path).
        let aggregation_start = Instant::now();
        let aggregation = self.aggregator.aggregate_detailed(&self.proposals)?;
        let aggregation_nanos = aggregation_start.elapsed().as_nanos();

        // 4. Apply the SGD update.
        let learning_rate = self.config.schedule.rate(round);
        params.axpy(-learning_rate, &aggregation.value);

        // 5. Metrics.
        let mut record = RoundRecord::new(round, aggregation.value.norm(), learning_rate);
        record.aggregation_nanos = aggregation_nanos;
        record.selected_worker = aggregation.selected_index();
        record.selected_byzantine = record.selected_worker.map(|w| w >= honest);
        if let Some(gradient) = &true_gradient {
            record.true_gradient_norm = Some(gradient.norm());
            record.alignment = aggregation.value.cosine_similarity(gradient);
        }
        if let Some(optimum) = &self.config.known_optimum {
            record.distance_to_optimum = Some(params.distance(optimum));
        }
        if self.config.eval_due(round) {
            record.loss = self.probe_estimator().loss(params);
            if let Some(probe) = &self.accuracy_probe {
                record.accuracy = probe(params);
            }
        }
        record.round_nanos = round_start.elapsed().as_nanos();
        Ok(record)
    }

    /// Metadata-filled empty history for a run of this engine.
    pub(crate) fn new_history(&self) -> krum_metrics::TrainingHistory {
        krum_metrics::TrainingHistory::new(
            format!(
                "{} vs {} (n={}, f={}, d={})",
                self.aggregator_name,
                self.attack_name,
                self.cluster.workers(),
                self.cluster.byzantine(),
                self.dim
            ),
            self.aggregator_name.clone(),
            self.attack_name.clone(),
            self.cluster.workers(),
            self.cluster.byzantine(),
        )
    }
}
