//! The sequential parameter-server engine.

use krum_attacks::Attack;
use krum_core::Aggregator;
use krum_metrics::{RoundRecord, TrainingHistory};
use krum_models::GradientEstimator;
use krum_tensor::Vector;

use crate::config::{ClusterSpec, TrainingConfig};
use crate::engine::{ExecutionStrategy, RoundEngine};
use crate::error::TrainError;

/// The synchronous parameter server of the paper's model section, executed
/// sequentially: each round, every honest worker estimates a gradient at the
/// broadcast parameters, the Byzantine workers forge theirs with full
/// knowledge of the round, and the server applies the aggregation rule.
///
/// A thin wrapper over [`RoundEngine`] with
/// [`ExecutionStrategy::Sequential`]. The engine is deterministic: every
/// random stream derives from [`TrainingConfig::seed`], so a run is exactly
/// reproducible (and matches the [`ThreadedTrainer`](crate::ThreadedTrainer)
/// trajectory for the same seed).
pub struct SyncTrainer {
    engine: RoundEngine,
}

impl SyncTrainer {
    /// Creates a trainer.
    ///
    /// `estimators` supplies exactly one gradient estimator per **honest**
    /// worker (`cluster.honest()` of them); the Byzantine workers' proposals
    /// come from `attack`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] when the configuration is
    /// invalid or the estimator count/dimensions are inconsistent.
    pub fn new(
        cluster: ClusterSpec,
        aggregator: Box<dyn Aggregator>,
        attack: Box<dyn Attack>,
        estimators: Vec<Box<dyn GradientEstimator>>,
        config: TrainingConfig,
    ) -> Result<Self, TrainError> {
        Ok(Self {
            engine: RoundEngine::new(
                cluster,
                aggregator,
                attack,
                estimators,
                None,
                config,
                ExecutionStrategy::Sequential,
            )?,
        })
    }

    /// Attaches a held-out accuracy probe, called on evaluation rounds with
    /// the current parameters.
    #[must_use]
    pub fn with_accuracy_probe(
        mut self,
        probe: impl Fn(&Vector) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        self.engine.set_accuracy_probe(Box::new(probe));
        self
    }

    /// Runs the configured number of rounds from `start`, returning the final
    /// parameters and the per-round history.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when a worker, the attack or the aggregator
    /// fails mid-run.
    pub fn run(&mut self, start: Vector) -> Result<(Vector, TrainingHistory), TrainError> {
        self.engine.run(start)
    }

    /// Runs a single round from the given parameters (without mutating them),
    /// returning the updated parameters and the round record. Used by the
    /// round-duration benchmarks.
    ///
    /// # Errors
    ///
    /// Same as [`SyncTrainer::run`].
    pub fn run_round(
        &mut self,
        params: &Vector,
        round: usize,
    ) -> Result<(Vector, RoundRecord), TrainError> {
        self.engine.run_round(params, round)
    }

    /// The cluster this trainer drives.
    pub fn cluster(&self) -> ClusterSpec {
        self.engine.cluster()
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.engine.dim()
    }

    /// The shared round engine backing this trainer (e.g. to adjust the
    /// aggregation execution policy or drive rounds directly).
    pub fn engine_mut(&mut self) -> &mut RoundEngine {
        &mut self.engine
    }
}
