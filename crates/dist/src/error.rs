//! Error type for the training engines.

use krum_attacks::AttackError;
use krum_core::AggregationError;
use krum_models::ModelError;
use thiserror::Error;

/// Errors raised while configuring or running a training engine.
#[derive(Debug, Error)]
pub enum TrainError {
    /// The trainer was configured inconsistently.
    #[error("invalid training configuration: {0}")]
    InvalidConfig(String),
    /// A worker's gradient estimator failed.
    #[error("worker gradient estimation failed: {0}")]
    Model(#[from] ModelError),
    /// The Byzantine strategy rejected the round context.
    #[error("attack failed: {0}")]
    Attack(#[from] AttackError),
    /// The aggregation rule rejected the proposals.
    #[error("aggregation failed: {0}")]
    Aggregation(#[from] AggregationError),
    /// The Byzantine strategy violated its contract (wrong vector count or
    /// dimension).
    #[error("attack `{attack}` violated its contract: {message}")]
    AttackContract {
        /// Name of the offending attack.
        attack: String,
        /// What went wrong.
        message: String,
    },
    /// The aggregation produced a NaN update: the round was poisoned beyond
    /// what the rule could filter, and stepping on it would silently corrupt
    /// the whole trajectory.
    #[error(
        "round {round}: aggregation by `{aggregator}` produced a non-finite (NaN) update — \
         poisoned round; refusing to step"
    )]
    PoisonedRound {
        /// Round index at which the poisoned aggregate appeared.
        round: usize,
        /// Name of the aggregation rule.
        aggregator: String,
    },
}

impl TrainError {
    /// Convenience constructor for [`TrainError::InvalidConfig`].
    pub fn config(message: impl Into<String>) -> Self {
        Self::InvalidConfig(message.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TrainError::config("rounds must be >= 1");
        assert!(e.to_string().contains("rounds"));
        let e = TrainError::AttackContract {
            attack: "broken".into(),
            message: "returned 1 proposals, expected 2".into(),
        };
        assert!(e.to_string().contains("broken"));
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn error_conversions_and_traits() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<TrainError>();
        let inner = AggregationError::NoProposals;
        let e: TrainError = inner.into();
        assert!(matches!(e, TrainError::Aggregation(_)));
        assert!(e.to_string().contains("aggregation"));
    }
}
