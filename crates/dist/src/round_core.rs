//! The server half of the round pipeline, exposed as a reusable hook.
//!
//! [`RoundCore`] owns what the parameter *server* owns — the aggregation
//! rule, the reusable [`AggregationContext`], the training configuration and
//! the metrics probes — and exposes one operation:
//! [`close_round`](RoundCore::close_round) takes the proposals of a round
//! (however they were collected: computed in-process by [`RoundEngine`]
//! (crate::RoundEngine), or arrived as bytes on sockets in `krum-server`)
//! and runs the tail of the pipeline: **aggregate → step → record**.
//!
//! Before this type existed the tail lived as a private closure of the
//! in-process engine, so a networked server would have had to duplicate the
//! NaN-poisoning check, the learning-rate schedule and the record layout.
//! Now both execution worlds share one implementation, which is what makes
//! the loopback server reproduce in-process trajectories bit-for-bit.

use std::sync::Arc;
use std::time::Instant;

use krum_compress::GradientCodec;
use krum_core::{AggregationContext, Aggregator, ExecutionPolicy, StatefulState};
use krum_metrics::RoundRecord;
use krum_models::GradientEstimator;
use krum_tensor::Vector;

use crate::config::{ClusterSpec, TrainingConfig};
use crate::error::TrainError;

/// Callback measuring held-out accuracy of a parameter vector.
pub type AccuracyProbe = Box<dyn Fn(&Vector) -> Option<f64> + Send + Sync>;

/// The server-side round state shared by every execution world: the
/// aggregation rule behind its zero-allocation workspace, the SGD schedule,
/// and the metrics probes. See the module docs for the design rationale.
pub struct RoundCore {
    cluster: ClusterSpec,
    aggregator: Box<dyn Aggregator>,
    aggregator_name: String,
    config: TrainingConfig,
    dim: usize,
    /// Reusable aggregation workspace — zero steady-state heap allocations
    /// on the aggregation path.
    ctx: AggregationContext,
    accuracy_probe: Option<AccuracyProbe>,
    compression: Option<Arc<dyn GradientCodec>>,
}

impl RoundCore {
    /// Builds the core, validating the configuration against the model
    /// dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] when the training configuration
    /// is invalid, `dim` is zero, or the known optimum has the wrong
    /// dimension.
    pub fn new(
        cluster: ClusterSpec,
        aggregator: Box<dyn Aggregator>,
        config: TrainingConfig,
        dim: usize,
    ) -> Result<Self, TrainError> {
        config.validate()?;
        if dim == 0 {
            return Err(TrainError::config("model dimension must be >= 1"));
        }
        if let Some(optimum) = &config.known_optimum {
            if optimum.dim() != dim {
                return Err(TrainError::config(format!(
                    "known optimum has dimension {}, expected {dim}",
                    optimum.dim()
                )));
            }
        }
        Ok(Self {
            cluster,
            aggregator_name: aggregator.name(),
            aggregator,
            config,
            dim,
            ctx: AggregationContext::new(),
            accuracy_probe: None,
            compression: None,
        })
    }

    /// The cluster this core serves.
    pub fn cluster(&self) -> ClusterSpec {
        self.cluster
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Display name of the aggregation rule.
    pub fn aggregator_name(&self) -> &str {
        &self.aggregator_name
    }

    /// Attaches a held-out accuracy probe, called on evaluation rounds with
    /// the post-update parameters.
    pub fn set_accuracy_probe(&mut self, probe: AccuracyProbe) {
        self.accuracy_probe = Some(probe);
    }

    /// Attaches a gradient codec: after every SGD step the parameter
    /// vector is passed through the codec's canonical quantize →
    /// dequantize params transform, so the trajectory lives in the
    /// codec's representable set on every execution world (the broadcast
    /// a remote worker decodes *is* the vector an in-process engine
    /// computes). Idempotent transforms make checkpoint/resume safe.
    pub fn set_compression(&mut self, codec: Arc<dyn GradientCodec>) {
        self.compression = Some(codec);
    }

    /// The attached gradient codec, if any.
    pub fn compression(&self) -> Option<&Arc<dyn GradientCodec>> {
        self.compression.as_ref()
    }

    /// Overrides the aggregation workspace's execution policy (e.g. force
    /// [`ExecutionPolicy::Sequential`] for allocation-free profiling).
    pub fn set_aggregation_policy(&mut self, policy: ExecutionPolicy) {
        self.ctx.set_policy(policy);
    }

    /// Arms the workspace's incremental Gram cache for the next aggregation:
    /// `generations[w]` is a counter bumped whenever worker `w`'s proposal
    /// changes, so an unchanged counter lets the kernel skip recomputing that
    /// worker's distance rows. One-shot — the next `close_round` consumes it.
    /// Results are bit-identical whether or not this is called.
    pub fn set_generations(&mut self, generations: &[u64]) {
        self.ctx.set_generations(generations);
    }

    /// Drops any cached Gram state (e.g. after the proposal table was
    /// rebuilt out-of-band); the next aggregation recomputes from scratch.
    pub fn invalidate_gram_cache(&mut self) {
        self.ctx.invalidate_gram_cache();
    }

    /// The aggregate accepted by the most recent
    /// [`close_round`](RoundCore::close_round) — what a stateful adversary
    /// is shown as round feedback.
    pub fn last_aggregate(&self) -> &Vector {
        &self.ctx.output().value
    }

    /// Snapshot of the stateful-rule memory (reputation weights, clip
    /// anchor), `None` when no stateful rule has run. Serialisable into
    /// server checkpoints.
    pub fn export_stateful_state(&self) -> Option<StatefulState> {
        self.ctx.stateful_state().cloned()
    }

    /// Installs (or clears) the stateful-rule memory — the resume half of
    /// checkpointing. Restoring the exported state reproduces the
    /// trajectory bit-identically.
    pub fn import_stateful_state(&mut self, state: Option<StatefulState>) {
        self.ctx.set_stateful_state(state);
    }

    /// Declares the worker id behind each proposal slot of the next
    /// [`close_round`](RoundCore::close_round), so per-worker rule state
    /// (reputation weights) follows workers through partial quorums. Not
    /// needed when the proposal slice is in worker order.
    pub fn set_slot_workers(&mut self, workers: &[usize]) {
        self.ctx.set_slot_workers(workers);
    }

    /// Whether `round` is an evaluation round under the configured cadence
    /// (the final round always is).
    pub fn eval_due(&self, round: usize) -> bool {
        self.config.eval_due(round)
    }

    /// Closes one round over externally collected `proposals`: aggregates
    /// them through the reused workspace, rejects a NaN-poisoned aggregate,
    /// applies the SGD step `x ← x − γ_t · F(…)` to `params` in place, and
    /// returns the round's record.
    ///
    /// `true_gradient` (when the workload exposes one) fills the
    /// alignment/gradient-norm metrics; `probe` serves the loss measurement
    /// on evaluation rounds. The record's `selected_worker` is the raw
    /// aggregation index — when the proposal slice is not in worker order
    /// (partial quorums), the caller remaps it.
    ///
    /// Timing fields beyond `aggregation_nanos` (propose/attack/network/
    /// round wall-clock, wire bytes) are the caller's to fill: only the
    /// caller knows how the proposals travelled.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when the aggregation rule fails, or
    /// [`TrainError::PoisonedRound`] when the aggregate contains NaN —
    /// stepping on it would silently corrupt every later round. (±∞ is left
    /// to the divergence reporting: overflowing runs are a legitimate
    /// experimental outcome, garbage is not.)
    pub fn close_round(
        &mut self,
        params: &mut Vector,
        round: usize,
        proposals: &[Vector],
        true_gradient: Option<Vector>,
        probe: Option<&dyn GradientEstimator>,
    ) -> Result<RoundRecord, TrainError> {
        self.close_round_inner(params, round, proposals, true_gradient, probe, None)
    }

    /// [`close_round`](RoundCore::close_round) with a caller-supplied
    /// aggregation rule replacing the configured one for this round only.
    ///
    /// This serves crash-degraded rounds: when workers crash mid-round and
    /// the crash policy proceeds at quorum, the round closes over fewer
    /// proposals than the rule was built for, so the caller rebuilds the
    /// same rule at the smaller arity and closes through it. The core's own
    /// rule, workspace and schedule state are untouched; only the aggregate
    /// comes from `aggregator`.
    ///
    /// # Errors
    ///
    /// As [`close_round`](RoundCore::close_round).
    pub fn close_round_with(
        &mut self,
        aggregator: &dyn Aggregator,
        params: &mut Vector,
        round: usize,
        proposals: &[Vector],
        true_gradient: Option<Vector>,
        probe: Option<&dyn GradientEstimator>,
    ) -> Result<RoundRecord, TrainError> {
        self.close_round_inner(
            params,
            round,
            proposals,
            true_gradient,
            probe,
            Some(aggregator),
        )
    }

    fn close_round_inner(
        &mut self,
        params: &mut Vector,
        round: usize,
        proposals: &[Vector],
        true_gradient: Option<Vector>,
        probe: Option<&dyn GradientEstimator>,
        override_rule: Option<&dyn Aggregator>,
    ) -> Result<RoundRecord, TrainError> {
        let aggregator = override_rule.unwrap_or(&*self.aggregator);
        let aggregation_start = Instant::now();
        aggregator.aggregate_in(&mut self.ctx, proposals)?;
        let aggregation_nanos = aggregation_start.elapsed().as_nanos();
        let aggregation = self.ctx.output();

        // A NaN aggregate means the round was poisoned beyond what the rule
        // could filter (e.g. averaging over a NaN proposal) — fail
        // structurally instead of stepping onto garbage.
        if aggregation.value.iter().any(|x| x.is_nan()) {
            return Err(TrainError::PoisonedRound {
                round,
                aggregator: self.aggregator_name.clone(),
            });
        }

        // Step: apply the SGD update, then re-project onto the codec's
        // representable set so the next round's broadcast (raw in memory,
        // encoded on the wire) is the same vector everywhere.
        let learning_rate = self.config.schedule.rate(round);
        params.axpy(-learning_rate, &aggregation.value);
        if let Some(codec) = &self.compression {
            codec.transform_params(params.as_mut_slice());
        }

        // Record.
        let mut record = RoundRecord::new(round, aggregation.value.norm(), learning_rate);
        record.aggregation_nanos = aggregation_nanos;
        record.selected_worker = aggregation.selected_index();
        record.selected_byzantine = record.selected_worker.map(|w| w >= self.cluster.honest());
        record.reputation_spread = self
            .ctx
            .stateful_state()
            .and_then(StatefulState::reputation_spread);
        if let Some(gradient) = &true_gradient {
            record.true_gradient_norm = Some(gradient.norm());
            record.alignment = aggregation.value.cosine_similarity(gradient);
        }
        if let Some(optimum) = &self.config.known_optimum {
            record.distance_to_optimum = Some(params.distance(optimum));
        }
        if self.config.eval_due(round) {
            if let Some(probe) = probe {
                record.loss = probe.loss(params);
            }
            if let Some(accuracy) = &self.accuracy_probe {
                record.accuracy = accuracy(params);
            }
        }
        Ok(record)
    }
}

impl std::fmt::Debug for RoundCore {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        out.debug_struct("RoundCore")
            .field("cluster", &self.cluster)
            .field("aggregator", &self.aggregator_name)
            .field("dim", &self.dim)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LearningRateSchedule;
    use krum_core::{Average, Krum};

    fn config(rounds: usize, dim: usize) -> TrainingConfig {
        TrainingConfig {
            rounds,
            schedule: LearningRateSchedule::Constant { gamma: 0.5 },
            seed: 1,
            eval_every: 2,
            known_optimum: Some(Vector::zeros(dim)),
        }
    }

    #[test]
    fn close_round_aggregates_steps_and_records() {
        let cluster = ClusterSpec::new(5, 1).unwrap();
        let mut core =
            RoundCore::new(cluster, Box::new(Krum::new(5, 1).unwrap()), config(4, 3), 3).unwrap();
        assert_eq!(core.dim(), 3);
        assert_eq!(core.cluster().workers(), 5);
        assert!(core.aggregator_name().contains("krum"));
        assert!(core.eval_due(0) && !core.eval_due(1) && core.eval_due(3));

        let proposals = vec![Vector::filled(3, 1.0); 5];
        let mut params = Vector::filled(3, 2.0);
        let record = core
            .close_round(&mut params, 0, &proposals, None, None)
            .unwrap();
        // x ← x − 0.5 · (1, 1, 1).
        assert!(params.distance(&Vector::filled(3, 1.5)) < 1e-12);
        assert_eq!(record.round, 0);
        assert_eq!(record.aggregate_norm, Vector::filled(3, 1.0).norm());
        assert_eq!(record.selected_byzantine, Some(false));
        assert!(record.distance_to_optimum.is_some());
        assert!(record.aggregation_nanos > 0);
        // Timing fields the caller owns stay zero.
        assert_eq!(record.propose_nanos, 0);
        assert_eq!(record.round_nanos, 0);
    }

    #[test]
    fn close_round_with_drives_a_degraded_arity_rule() {
        let cluster = ClusterSpec::new(6, 1).unwrap();
        let mut core =
            RoundCore::new(cluster, Box::new(Krum::new(6, 1).unwrap()), config(4, 3), 3).unwrap();
        // Only 5 of 6 proposals survived a crash: the configured rule was
        // built for n=6 and rejects the arity…
        let proposals = vec![Vector::filled(3, 1.0); 5];
        let mut params = Vector::filled(3, 2.0);
        assert!(core
            .close_round(&mut params, 0, &proposals, None, None)
            .is_err());
        // …but the same rule rebuilt at the surviving arity closes the
        // round through the shared workspace, schedule and record path.
        let degraded = Krum::new(5, 1).unwrap();
        let record = core
            .close_round_with(&degraded, &mut params, 0, &proposals, None, None)
            .unwrap();
        assert!(params.distance(&Vector::filled(3, 1.5)) < 1e-12);
        assert_eq!(record.round, 0);
        assert_eq!(record.selected_byzantine, Some(false));
        // The configured rule is untouched for the next full-strength round.
        let full = vec![Vector::filled(3, 1.0); 6];
        assert!(core.close_round(&mut params, 1, &full, None, None).is_ok());
    }

    #[test]
    fn close_round_rejects_nan_aggregates() {
        let cluster = ClusterSpec::new(4, 1).unwrap();
        let mut core = RoundCore::new(cluster, Box::new(Average::new()), config(2, 2), 2).unwrap();
        let mut proposals = vec![Vector::filled(2, 1.0); 4];
        proposals[3] = Vector::from(vec![f64::NAN, 0.0]);
        let mut params = Vector::filled(2, 1.0);
        let before = params.clone();
        let err = core
            .close_round(&mut params, 1, &proposals, None, None)
            .unwrap_err();
        assert!(matches!(err, TrainError::PoisonedRound { round: 1, .. }));
        // The poisoned step was not applied.
        assert_eq!(params, before);
    }

    #[test]
    fn construction_validates_dimension_and_optimum() {
        let cluster = ClusterSpec::new(4, 1).unwrap();
        assert!(RoundCore::new(cluster, Box::new(Average::new()), config(2, 2), 0).is_err());
        let mut bad = config(2, 2);
        bad.known_optimum = Some(Vector::zeros(5));
        assert!(RoundCore::new(cluster, Box::new(Average::new()), bad, 2).is_err());
    }
}
