//! Drift metrics: how far the adversary actually moved the trajectory.
//!
//! Adaptive (stateful) attacks do not announce themselves with huge
//! outliers — their proposals sit inside the honest cloud and bias the
//! trajectory a little every round. [`DriftTracker`] measures that bias with
//! two per-round quantities:
//!
//! * `dist_to_honest_mean` — `‖F − μ_honest‖`, the distance between the
//!   round's accepted aggregate and the mean of its honest proposals;
//! * `attacker_displacement` — the cumulative projection of the applied
//!   updates onto the attack direction (Byzantine mean minus honest mean,
//!   unit-normed): `Σ_t γ_t · ⟨F_t − μ_t, d̂_t⟩`. This is the attacker's net
//!   pull on the parameters; a defense works exactly when this stays flat.
//!
//! The tracker is shared by the in-process engines and the `krum-server`
//! job driver so both worlds fill the same columns from the same arithmetic
//! — the loopback-equals-in-process invariant extends to the drift metrics.
//! All scratch is owned by the tracker; steady-state observations allocate
//! nothing.

use krum_metrics::RoundRecord;
use krum_tensor::Vector;

/// Accumulates drift metrics across rounds. Create one per run, call
/// [`DriftTracker::observe`] after every closed round, and it fills the
/// drift columns of the round's [`RoundRecord`].
#[derive(Debug, Clone, Default)]
pub struct DriftTracker {
    /// Cumulative projection of the applied updates onto the attack
    /// direction.
    displacement: f64,
    /// Scratch: mean of the round's honest proposals.
    honest_mean: Vector,
    /// Scratch: mean of the round's Byzantine proposals.
    byz_mean: Vector,
}

impl DriftTracker {
    /// A tracker starting from zero displacement.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracker resuming from a checkpointed run: `displacement` is the
    /// last recorded `attacker_displacement` (or 0 when none was recorded),
    /// so the resumed column continues the original series exactly.
    pub fn resume(displacement: f64) -> Self {
        Self {
            displacement,
            ..Self::default()
        }
    }

    /// The cumulative attacker displacement so far.
    pub fn displacement(&self) -> f64 {
        self.displacement
    }

    /// Digests one closed round and fills the drift columns of its record.
    ///
    /// `proposals` are the vectors the round aggregated, `worker_ids[i]` the
    /// worker behind `proposals[i]` (workers `>= honest` are Byzantine),
    /// `aggregate` the accepted `F`, and `learning_rate` the `γ_t` the step
    /// applied. Rounds without honest proposals in the quorum leave the
    /// columns untouched; rounds without Byzantine proposals record the
    /// distance but carry the displacement unchanged.
    pub fn observe(
        &mut self,
        record: &mut RoundRecord,
        aggregate: &Vector,
        proposals: &[Vector],
        worker_ids: &[usize],
        honest: usize,
        learning_rate: f64,
    ) {
        debug_assert_eq!(proposals.len(), worker_ids.len());
        let dim = aggregate.dim();
        self.honest_mean.resize(dim, 0.0);
        self.honest_mean.fill(0.0);
        self.byz_mean.resize(dim, 0.0);
        self.byz_mean.fill(0.0);
        let mut honest_count = 0usize;
        let mut byz_count = 0usize;
        for (v, &w) in proposals.iter().zip(worker_ids) {
            if v.dim() != dim {
                continue;
            }
            if w < honest {
                self.honest_mean.axpy(1.0, v);
                honest_count += 1;
            } else {
                self.byz_mean.axpy(1.0, v);
                byz_count += 1;
            }
        }
        if honest_count == 0 {
            return;
        }
        self.honest_mean.scale(1.0 / honest_count as f64);
        // ‖F − μ‖ without allocating: accumulate the squared difference.
        let mut dist_sq = 0.0;
        for c in 0..dim {
            let d = aggregate[c] - self.honest_mean[c];
            dist_sq += d * d;
        }
        record.dist_to_honest_mean = Some(dist_sq.sqrt());
        if byz_count == 0 {
            record.attacker_displacement = Some(self.displacement);
            return;
        }
        self.byz_mean.scale(1.0 / byz_count as f64);
        // Attack direction d̂ = (μ_byz − μ_honest) / ‖·‖; project the applied
        // update γ·(F − μ_honest) onto it.
        let mut dir_sq = 0.0;
        let mut dot = 0.0;
        for c in 0..dim {
            let d = self.byz_mean[c] - self.honest_mean[c];
            dir_sq += d * d;
            dot += d * (aggregate[c] - self.honest_mean[c]);
        }
        let dir_norm = dir_sq.sqrt();
        if dir_norm > 0.0 && dot.is_finite() {
            self.displacement += learning_rate * dot / dir_norm;
        }
        record.attacker_displacement = Some(self.displacement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RoundRecord {
        RoundRecord::new(0, 1.0, 0.1)
    }

    #[test]
    fn honest_only_round_records_distance_but_not_displacement_motion() {
        let mut tracker = DriftTracker::new();
        let proposals = vec![Vector::filled(3, 1.0), Vector::filled(3, 3.0)];
        let aggregate = Vector::filled(3, 2.5);
        let mut r = record();
        tracker.observe(&mut r, &aggregate, &proposals, &[0, 1], 2, 0.5);
        // μ = (2, 2, 2), ‖F − μ‖ = 0.5·√3.
        let expected = 0.5 * 3.0f64.sqrt();
        assert!((r.dist_to_honest_mean.unwrap() - expected).abs() < 1e-12);
        assert_eq!(r.attacker_displacement, Some(0.0));
        assert_eq!(tracker.displacement(), 0.0);
    }

    #[test]
    fn displacement_accumulates_along_the_attack_direction() {
        let mut tracker = DriftTracker::new();
        // Honest at 0, attacker at (1, 0): attack direction is +x.
        let proposals = vec![
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![0.0, 0.0]),
            Vector::from(vec![1.0, 0.0]),
        ];
        let ids = [0usize, 1, 2];
        // The accepted aggregate moved 0.3 along +x: with γ = 1 the
        // displacement grows by 0.3 per round.
        let aggregate = Vector::from(vec![0.3, 0.0]);
        let mut r = record();
        tracker.observe(&mut r, &aggregate, &proposals, &ids, 2, 1.0);
        assert!((tracker.displacement() - 0.3).abs() < 1e-12);
        let mut r2 = record();
        tracker.observe(&mut r2, &aggregate, &proposals, &ids, 2, 1.0);
        assert!((r2.attacker_displacement.unwrap() - 0.6).abs() < 1e-12);
        // Movement *against* the attack direction subtracts.
        let repelled = Vector::from(vec![-0.1, 0.0]);
        let mut r3 = record();
        tracker.observe(&mut r3, &repelled, &proposals, &ids, 2, 1.0);
        assert!((tracker.displacement() - 0.5).abs() < 1e-12);
        // Orthogonal movement projects to zero.
        let orthogonal = Vector::from(vec![0.0, 2.0]);
        let mut r4 = record();
        tracker.observe(&mut r4, &orthogonal, &proposals, &ids, 2, 1.0);
        assert!((tracker.displacement() - 0.5).abs() < 1e-12);
        // The learning rate scales the projection.
        let mut r5 = record();
        tracker.observe(&mut r5, &aggregate, &proposals, &ids, 2, 0.1);
        assert!((tracker.displacement() - 0.53).abs() < 1e-12);
    }

    #[test]
    fn resume_continues_the_series() {
        let mut tracker = DriftTracker::resume(7.5);
        assert_eq!(tracker.displacement(), 7.5);
        let proposals = vec![Vector::from(vec![0.0]), Vector::from(vec![1.0])];
        let aggregate = Vector::from(vec![0.5]);
        let mut r = record();
        tracker.observe(&mut r, &aggregate, &proposals, &[0, 1], 1, 1.0);
        assert!((r.attacker_displacement.unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rounds_leave_the_columns_sane() {
        let mut tracker = DriftTracker::new();
        // No honest proposals in the quorum: nothing is recorded.
        let proposals = vec![Vector::from(vec![1.0])];
        let mut r = record();
        tracker.observe(&mut r, &Vector::from(vec![1.0]), &proposals, &[5], 2, 1.0);
        assert!(r.dist_to_honest_mean.is_none());
        assert!(r.attacker_displacement.is_none());
        // Byzantine mean coinciding with the honest mean: zero direction,
        // displacement holds instead of dividing by zero.
        let coincide = vec![Vector::from(vec![2.0]), Vector::from(vec![2.0])];
        let mut r = record();
        tracker.observe(&mut r, &Vector::from(vec![2.0]), &coincide, &[0, 9], 1, 1.0);
        assert_eq!(r.attacker_displacement, Some(0.0));
        assert!(tracker.displacement().is_finite());
    }
}
