//! The threaded parameter-server engine with a simulated network.

use krum_attacks::Attack;
use krum_core::Aggregator;
use krum_metrics::{RoundRecord, TrainingHistory};
use krum_models::GradientEstimator;
use krum_tensor::Vector;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::config::{ClusterSpec, TrainingConfig};
use crate::engine::{stream_rng, EngineCore, NETWORK_STREAM};
use crate::error::TrainError;

/// One-way message latency model for the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed latency.
    Constant {
        /// One-way latency in nanoseconds.
        nanos: u64,
    },
    /// Latency drawn uniformly from `[min_nanos, max_nanos]` per message.
    Uniform {
        /// Minimum one-way latency in nanoseconds.
        min_nanos: u64,
        /// Maximum one-way latency in nanoseconds.
        max_nanos: u64,
    },
}

impl LatencyModel {
    /// Draws one one-way latency.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        match *self {
            Self::Constant { nanos } => nanos,
            Self::Uniform {
                min_nanos,
                max_nanos,
            } => {
                if min_nanos >= max_nanos {
                    min_nanos
                } else {
                    rng.gen_range(min_nanos..=max_nanos)
                }
            }
        }
    }
}

/// Simulated network: per-message latency plus byte-proportional transfer
/// time. One round charges, per worker, a parameter broadcast down and a
/// gradient push up (both `8·d` bytes), and the synchronous barrier waits
/// for the slowest worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message one-way latency.
    pub latency: LatencyModel,
    /// Transfer cost per payload byte, in nanoseconds.
    pub nanos_per_byte: f64,
}

impl NetworkModel {
    /// Simulated nanoseconds the synchronous barrier spends on the network
    /// for one round: the slowest worker's round trip.
    pub(crate) fn round_nanos(&self, workers: usize, dim: usize, rng: &mut ChaCha8Rng) -> u128 {
        let payload = (dim as f64 * 8.0 * self.nanos_per_byte).max(0.0) as u128;
        let mut slowest: u128 = 0;
        for _ in 0..workers {
            let down = self.latency.sample(rng) as u128;
            let up = self.latency.sample(rng) as u128;
            slowest = slowest.max(down + up + 2 * payload);
        }
        slowest
    }
}

/// The threaded variant of [`SyncTrainer`](crate::SyncTrainer): honest
/// worker gradients are computed in parallel on the `rayon` pool, and a
/// simulated [`NetworkModel`] charges communication time to each round's
/// wall-clock metrics.
///
/// Because every worker owns an independent RNG stream derived from the
/// master seed, the parameter trajectory is **identical** to the sequential
/// engine's for the same configuration — parallelism and the simulated
/// network change only the timing columns.
pub struct ThreadedTrainer {
    core: EngineCore,
    network: NetworkModel,
    network_rng: ChaCha8Rng,
}

impl ThreadedTrainer {
    /// Creates a threaded trainer.
    ///
    /// `estimators` supplies one estimator per honest worker **plus one
    /// trailing probe estimator** (`cluster.honest() + 1` in total). The
    /// probe serves the metrics/adversary queries (loss, true gradient) so
    /// the worker estimators are exclusively owned by the parallel fan-out.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] when the configuration is
    /// invalid or the estimator count/dimensions are inconsistent.
    pub fn new(
        cluster: ClusterSpec,
        aggregator: Box<dyn Aggregator>,
        attack: Box<dyn Attack>,
        mut estimators: Vec<Box<dyn GradientEstimator>>,
        config: TrainingConfig,
        network: NetworkModel,
    ) -> Result<Self, TrainError> {
        if estimators.len() != cluster.honest() + 1 {
            return Err(TrainError::config(format!(
                "the threaded engine expects one estimator per honest worker plus a probe \
                 ({} total), got {}",
                cluster.honest() + 1,
                estimators.len()
            )));
        }
        let probe = estimators.pop().expect("length checked above");
        let network_rng = stream_rng(config.seed, NETWORK_STREAM);
        Ok(Self {
            core: EngineCore::new(cluster, aggregator, attack, estimators, Some(probe), config)?,
            network,
            network_rng,
        })
    }

    /// Attaches a held-out accuracy probe, called on evaluation rounds.
    #[must_use]
    pub fn with_accuracy_probe(
        mut self,
        probe: impl Fn(&Vector) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        self.core.accuracy_probe = Some(Box::new(probe));
        self
    }

    /// Runs the configured number of rounds from `start`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when a worker, the attack or the aggregator
    /// fails mid-run.
    pub fn run(&mut self, start: Vector) -> Result<(Vector, TrainingHistory), TrainError> {
        let mut params = start;
        let mut history = self.core.new_history();
        for round in 0..self.core.config.rounds {
            let record = self.step(&mut params, round)?;
            history.push(record);
        }
        Ok((params, history))
    }

    /// Runs a single round from the given parameters (without mutating them).
    ///
    /// # Errors
    ///
    /// Same as [`ThreadedTrainer::run`].
    pub fn run_round(
        &mut self,
        params: &Vector,
        round: usize,
    ) -> Result<(Vector, RoundRecord), TrainError> {
        let mut next = params.clone();
        let record = self.step(&mut next, round)?;
        Ok((next, record))
    }

    fn step(&mut self, params: &mut Vector, round: usize) -> Result<RoundRecord, TrainError> {
        let mut record = self.core.step(params, round, true)?;
        let simulated = self.network.round_nanos(
            self.core.cluster.workers(),
            self.core.dim,
            &mut self.network_rng,
        );
        record.round_nanos += simulated;
        Ok(record)
    }

    /// The cluster this trainer drives.
    pub fn cluster(&self) -> ClusterSpec {
        self.core.cluster
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.core.dim
    }

    /// The simulated network model.
    pub fn network(&self) -> NetworkModel {
        self.network
    }
}
