//! The threaded parameter-server engine with a simulated network.

use krum_attacks::Attack;
use krum_core::Aggregator;
use krum_metrics::{RoundRecord, TrainingHistory};
use krum_models::GradientEstimator;
use krum_tensor::Vector;

use crate::config::{ClusterSpec, TrainingConfig};
use crate::engine::{ExecutionStrategy, RoundEngine};
use crate::error::TrainError;
use crate::network::NetworkModel;

/// The threaded variant of [`SyncTrainer`](crate::SyncTrainer): honest
/// worker gradients are computed in parallel on the `rayon` pool, and a
/// simulated [`NetworkModel`] charges communication time to each round's
/// wall-clock metrics.
///
/// A thin wrapper over [`RoundEngine`] with
/// [`ExecutionStrategy::Threaded`]. Because every worker owns an independent
/// RNG stream derived from the master seed, the parameter trajectory is
/// **identical** to the sequential engine's for the same configuration —
/// parallelism and the simulated network change only the timing columns.
pub struct ThreadedTrainer {
    engine: RoundEngine,
}

impl ThreadedTrainer {
    /// Creates a threaded trainer.
    ///
    /// `estimators` supplies one estimator per honest worker **plus one
    /// trailing probe estimator** (`cluster.honest() + 1` in total). The
    /// probe serves the metrics/adversary queries (loss, true gradient) so
    /// the worker estimators are exclusively owned by the parallel fan-out.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] when the configuration is
    /// invalid or the estimator count/dimensions are inconsistent.
    pub fn new(
        cluster: ClusterSpec,
        aggregator: Box<dyn Aggregator>,
        attack: Box<dyn Attack>,
        mut estimators: Vec<Box<dyn GradientEstimator>>,
        config: TrainingConfig,
        network: NetworkModel,
    ) -> Result<Self, TrainError> {
        if estimators.len() != cluster.honest() + 1 {
            return Err(TrainError::config(format!(
                "the threaded engine expects one estimator per honest worker plus a probe \
                 ({} total), got {}",
                cluster.honest() + 1,
                estimators.len()
            )));
        }
        let probe = estimators.pop().expect("length checked above");
        Ok(Self {
            engine: RoundEngine::new(
                cluster,
                aggregator,
                attack,
                estimators,
                Some(probe),
                config,
                ExecutionStrategy::Threaded { network },
            )?,
        })
    }

    /// Attaches a held-out accuracy probe, called on evaluation rounds.
    #[must_use]
    pub fn with_accuracy_probe(
        mut self,
        probe: impl Fn(&Vector) -> Option<f64> + Send + Sync + 'static,
    ) -> Self {
        self.engine.set_accuracy_probe(Box::new(probe));
        self
    }

    /// Runs the configured number of rounds from `start`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when a worker, the attack or the aggregator
    /// fails mid-run.
    pub fn run(&mut self, start: Vector) -> Result<(Vector, TrainingHistory), TrainError> {
        self.engine.run(start)
    }

    /// Runs a single round from the given parameters (without mutating them).
    ///
    /// # Errors
    ///
    /// Same as [`ThreadedTrainer::run`].
    pub fn run_round(
        &mut self,
        params: &Vector,
        round: usize,
    ) -> Result<(Vector, RoundRecord), TrainError> {
        self.engine.run_round(params, round)
    }

    /// The cluster this trainer drives.
    pub fn cluster(&self) -> ClusterSpec {
        self.engine.cluster()
    }

    /// Model dimension `d`.
    pub fn dim(&self) -> usize {
        self.engine.dim()
    }

    /// The simulated network model.
    pub fn network(&self) -> NetworkModel {
        self.engine
            .strategy()
            .network()
            .expect("threaded trainer always carries a network model")
    }

    /// The shared round engine backing this trainer.
    pub fn engine_mut(&mut self) -> &mut RoundEngine {
        &mut self.engine
    }
}
