//! The simulated network charged to round metrics by the threaded engine.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One-way message latency model for the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed latency.
    Constant {
        /// One-way latency in nanoseconds.
        nanos: u64,
    },
    /// Latency drawn uniformly from `[min_nanos, max_nanos]` per message.
    Uniform {
        /// Minimum one-way latency in nanoseconds.
        min_nanos: u64,
        /// Maximum one-way latency in nanoseconds.
        max_nanos: u64,
    },
}

impl LatencyModel {
    /// Draws one one-way latency.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        match *self {
            Self::Constant { nanos } => nanos,
            Self::Uniform {
                min_nanos,
                max_nanos,
            } => {
                if min_nanos >= max_nanos {
                    min_nanos
                } else {
                    rng.gen_range(min_nanos..=max_nanos)
                }
            }
        }
    }
}

impl std::fmt::Display for LatencyModel {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::Constant { nanos } => write!(out, "constant({nanos}ns)"),
            Self::Uniform {
                min_nanos,
                max_nanos,
            } => write!(out, "uniform({min_nanos}..{max_nanos}ns)"),
        }
    }
}

/// Simulated network: per-message latency plus byte-proportional transfer
/// time. One round charges, per worker, a parameter broadcast down and a
/// gradient push up (both `8·d` bytes), and the synchronous barrier waits
/// for the slowest worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message one-way latency.
    pub latency: LatencyModel,
    /// Transfer cost per payload byte, in nanoseconds.
    pub nanos_per_byte: f64,
}

impl std::fmt::Display for NetworkModel {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            out,
            "network(latency={}, {}ns/byte)",
            self.latency, self.nanos_per_byte
        )
    }
}

impl NetworkModel {
    /// Simulated nanoseconds the synchronous barrier spends on the network
    /// for one round: the slowest worker's round trip.
    pub(crate) fn round_nanos(&self, workers: usize, dim: usize, rng: &mut ChaCha8Rng) -> u128 {
        let payload = (dim as f64 * 8.0 * self.nanos_per_byte).max(0.0) as u128;
        let mut slowest: u128 = 0;
        for _ in 0..workers {
            let down = self.latency.sample(rng) as u128;
            let up = self.latency.sample(rng) as u128;
            slowest = slowest.max(down + up + 2 * payload);
        }
        slowest
    }
}
