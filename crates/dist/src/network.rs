//! The simulated network charged to round metrics by the threaded and
//! async-quorum engines.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::TrainError;

/// Canonical lowercase names of every [`LatencyModel`] variant (shown by
/// `krum list`).
pub const LATENCY_MODEL_NAMES: &[&str] = &["constant", "uniform", "pareto"];

/// One-way message latency model for the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed latency.
    Constant {
        /// One-way latency in nanoseconds.
        nanos: u64,
    },
    /// Latency drawn uniformly from `[min_nanos, max_nanos]` per message.
    Uniform {
        /// Minimum one-way latency in nanoseconds.
        min_nanos: u64,
        /// Maximum one-way latency in nanoseconds.
        max_nanos: u64,
    },
    /// Heavy-tailed (Pareto) latency: most messages arrive near `min_nanos`,
    /// but the tail produces stragglers orders of magnitude slower — the
    /// regime where a synchronous barrier stalls on the slowest worker and a
    /// partial quorum keeps making progress. Smaller `alpha` means a heavier
    /// tail (`alpha ≤ 1` has no finite mean).
    Pareto {
        /// Scale (minimum) one-way latency in nanoseconds.
        min_nanos: u64,
        /// Tail index `α > 0` of the Pareto distribution.
        alpha: f64,
    },
}

impl LatencyModel {
    /// Draws one one-way latency.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> u64 {
        match *self {
            Self::Constant { nanos } => nanos,
            Self::Uniform {
                min_nanos,
                max_nanos,
            } => {
                if min_nanos >= max_nanos {
                    min_nanos
                } else {
                    rng.gen_range(min_nanos..=max_nanos)
                }
            }
            Self::Pareto { min_nanos, alpha } => {
                // Inverse-CDF sampling: min / U^(1/α) with U uniform in (0, 1].
                let u: f64 = 1.0 - rng.gen::<f64>();
                let draw = min_nanos as f64 / u.powf(1.0 / alpha.max(f64::MIN_POSITIVE));
                if draw.is_finite() {
                    draw.min(u64::MAX as f64) as u64
                } else {
                    u64::MAX
                }
            }
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] for a non-positive or
    /// non-finite Pareto tail index.
    pub fn validate(&self) -> Result<(), TrainError> {
        match *self {
            Self::Constant { .. } | Self::Uniform { .. } => Ok(()),
            Self::Pareto { alpha, .. } => {
                if alpha > 0.0 && alpha.is_finite() {
                    Ok(())
                } else {
                    Err(TrainError::config(
                        "pareto latency needs a positive, finite alpha",
                    ))
                }
            }
        }
    }
}

impl std::fmt::Display for LatencyModel {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::Constant { nanos } => write!(out, "constant({nanos}ns)"),
            Self::Uniform {
                min_nanos,
                max_nanos,
            } => write!(out, "uniform({min_nanos}..{max_nanos}ns)"),
            Self::Pareto { min_nanos, alpha } => {
                write!(out, "pareto(min={min_nanos}ns, alpha={alpha})")
            }
        }
    }
}

/// Simulated network: per-message latency plus byte-proportional transfer
/// time. One round charges, per worker, a parameter broadcast down and a
/// gradient push up (both `8·d` bytes); the synchronous barrier waits for
/// the slowest worker, while the async-quorum engine waits only for the
/// quorum-closing arrival.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Per-message one-way latency.
    pub latency: LatencyModel,
    /// Transfer cost per payload byte, in nanoseconds.
    pub nanos_per_byte: f64,
}

impl std::fmt::Display for NetworkModel {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            out,
            "network(latency={}, {}ns/byte)",
            self.latency, self.nanos_per_byte
        )
    }
}

impl NetworkModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] for a negative or non-finite
    /// byte cost, or an invalid latency model.
    pub fn validate(&self) -> Result<(), TrainError> {
        if !(self.nanos_per_byte.is_finite() && self.nanos_per_byte >= 0.0) {
            return Err(TrainError::config(
                "network nanos_per_byte must be finite and >= 0",
            ));
        }
        self.latency.validate()
    }

    /// Simulated nanoseconds until **one** worker's proposal reaches the
    /// server: broadcast down, compute (free), gradient push up, with the
    /// `8·d`-byte payload charged in both directions.
    pub(crate) fn worker_round_trip_nanos(&self, dim: usize, rng: &mut ChaCha8Rng) -> u128 {
        let payload = (dim as f64 * 8.0 * self.nanos_per_byte).max(0.0) as u128;
        let down = self.latency.sample(rng) as u128;
        let up = self.latency.sample(rng) as u128;
        down + up + 2 * payload
    }

    /// Simulated nanoseconds the synchronous barrier spends on the network
    /// for one round: the slowest worker's round trip.
    pub(crate) fn round_nanos(&self, workers: usize, dim: usize, rng: &mut ChaCha8Rng) -> u128 {
        let mut slowest: u128 = 0;
        for _ in 0..workers {
            slowest = slowest.max(self.worker_round_trip_nanos(dim, rng));
        }
        slowest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pareto_latency_is_heavy_tailed_and_bounded_below() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let pareto = LatencyModel::Pareto {
            min_nanos: 1_000,
            alpha: 1.1,
        };
        let draws: Vec<u64> = (0..4_000).map(|_| pareto.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&d| d >= 1_000));
        // The tail must produce genuine stragglers (an order of magnitude
        // above the scale) while the bulk stays near it.
        let slow = draws.iter().filter(|&&d| d > 10_000).count();
        let fast = draws.iter().filter(|&&d| d < 2_000).count();
        assert!(slow > 10, "expected a heavy tail, got {slow} slow draws");
        assert!(fast > draws.len() / 2, "bulk should sit near the scale");
    }

    #[test]
    fn pareto_validation_rejects_bad_alpha() {
        assert!(LatencyModel::Pareto {
            min_nanos: 10,
            alpha: 0.0
        }
        .validate()
        .is_err());
        assert!(LatencyModel::Pareto {
            min_nanos: 10,
            alpha: f64::NAN
        }
        .validate()
        .is_err());
        assert!(LatencyModel::Pareto {
            min_nanos: 10,
            alpha: 1.5
        }
        .validate()
        .is_ok());
        assert!(LatencyModel::Constant { nanos: 5 }.validate().is_ok());
        let network = NetworkModel {
            latency: LatencyModel::Constant { nanos: 5 },
            nanos_per_byte: f64::INFINITY,
        };
        assert!(network.validate().is_err());
    }

    #[test]
    fn latency_models_display_readably() {
        assert_eq!(
            LatencyModel::Pareto {
                min_nanos: 100,
                alpha: 1.5
            }
            .to_string(),
            "pareto(min=100ns, alpha=1.5)"
        );
    }
}
