//! Element-wise activation functions for the MLP.

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no non-linearity).
    Identity,
    /// Rectified linear unit `max(0, z)`.
    #[default]
    Relu,
    /// Logistic sigmoid `1 / (1 + e^{-z})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar pre-activation.
    pub fn apply(&self, z: f64) -> f64 {
        match self {
            Self::Identity => z,
            Self::Relu => z.max(0.0),
            Self::Sigmoid => 1.0 / (1.0 + (-z).exp()),
            Self::Tanh => z.tanh(),
        }
    }

    /// Derivative of the activation, expressed as a function of the
    /// pre-activation `z`.
    pub fn derivative(&self, z: f64) -> f64 {
        match self {
            Self::Identity => 1.0,
            Self::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Sigmoid => {
                let s = self.apply(z);
                s * (1.0 - s)
            }
            Self::Tanh => 1.0 - z.tanh().powi(2),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Identity => "identity",
            Self::Relu => "relu",
            Self::Sigmoid => "sigmoid",
            Self::Tanh => "tanh",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 4] = [
        Activation::Identity,
        Activation::Relu,
        Activation::Sigmoid,
        Activation::Tanh,
    ];

    #[test]
    fn apply_known_values() {
        assert_eq!(Activation::Identity.apply(-2.5), -2.5);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
    }

    #[test]
    fn derivative_matches_finite_differences() {
        let eps = 1e-6;
        for act in ALL {
            for &z in &[-1.3, -0.2, 0.4, 2.1] {
                let numeric = (act.apply(z + eps) - act.apply(z - eps)) / (2.0 * eps);
                let analytic = act.derivative(z);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{}: derivative mismatch at {z}: {numeric} vs {analytic}",
                    act.name()
                );
            }
        }
    }

    #[test]
    fn relu_derivative_at_kink_is_zero() {
        assert_eq!(Activation::Relu.derivative(0.0), 0.0);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn default_is_relu() {
        assert_eq!(Activation::default(), Activation::Relu);
    }
}
